"""Unit and property tests for nibble / hex-prefix encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.nibbles import (
    bytes_to_nibbles,
    common_prefix_length,
    hex_prefix_decode,
    hex_prefix_encode,
    nibbles_to_bytes,
)


class TestNibbleConversion:
    def test_known_value(self):
        assert bytes_to_nibbles(b"\x38") == [3, 8]
        assert bytes_to_nibbles(b"\xab\xcd") == [0xA, 0xB, 0xC, 0xD]

    def test_empty(self):
        assert bytes_to_nibbles(b"") == []
        assert nibbles_to_bytes([]) == b""

    def test_round_trip(self):
        for data in (b"", b"\x00", b"hello world", bytes(range(256))):
            assert nibbles_to_bytes(bytes_to_nibbles(data)) == data

    def test_odd_length_rejected(self):
        with pytest.raises(ValueError):
            nibbles_to_bytes([1, 2, 3])

    def test_out_of_range_nibble_rejected(self):
        with pytest.raises(ValueError):
            nibbles_to_bytes([1, 16])

    @given(st.binary(max_size=64))
    @settings(max_examples=100, deadline=None)
    def test_property_round_trip(self, data):
        nibbles = bytes_to_nibbles(data)
        assert len(nibbles) == 2 * len(data)
        assert all(0 <= n <= 15 for n in nibbles)
        assert nibbles_to_bytes(nibbles) == data


class TestCommonPrefix:
    def test_basic(self):
        assert common_prefix_length([1, 2, 3], [1, 2, 4]) == 2
        assert common_prefix_length([1, 2], [1, 2, 3]) == 2
        assert common_prefix_length([], [1]) == 0
        assert common_prefix_length([5], [6]) == 0


class TestHexPrefix:
    def test_even_extension(self):
        encoded = hex_prefix_encode([1, 2, 3, 4], is_leaf=False)
        assert hex_prefix_decode(encoded) == ([1, 2, 3, 4], False)

    def test_odd_leaf(self):
        encoded = hex_prefix_encode([0xF, 0x1, 0xC], is_leaf=True)
        assert hex_prefix_decode(encoded) == ([0xF, 0x1, 0xC], True)

    def test_empty_paths(self):
        assert hex_prefix_decode(hex_prefix_encode([], True)) == ([], True)
        assert hex_prefix_decode(hex_prefix_encode([], False)) == ([], False)

    def test_leaf_and_extension_encodings_differ(self):
        path = [1, 2, 3]
        assert hex_prefix_encode(path, True) != hex_prefix_encode(path, False)

    def test_rejects_invalid_nibbles(self):
        with pytest.raises(ValueError):
            hex_prefix_encode([16], True)

    def test_rejects_empty_encoded_input(self):
        with pytest.raises(ValueError):
            hex_prefix_decode(b"")

    def test_rejects_bad_padding(self):
        # Even-length encoding must have a zero padding nibble.
        corrupted = bytes([0x05]) + b"\x12"
        with pytest.raises(ValueError):
            hex_prefix_decode(corrupted)

    @given(
        st.lists(st.integers(min_value=0, max_value=15), max_size=40),
        st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_round_trip(self, nibbles, is_leaf):
        assert hex_prefix_decode(hex_prefix_encode(nibbles, is_leaf)) == (nibbles, is_leaf)
