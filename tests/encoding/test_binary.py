"""Unit and property tests for the binary serialization helpers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.binary import (
    decode_bytes,
    decode_bytes_list,
    decode_kv_pairs,
    decode_uvarint,
    encode_bytes,
    encode_bytes_list,
    encode_kv_pairs,
    encode_uvarint,
)


class TestUvarint:
    def test_known_small_values(self):
        assert encode_uvarint(0) == b"\x00"
        assert encode_uvarint(1) == b"\x01"
        assert encode_uvarint(127) == b"\x7f"
        assert encode_uvarint(128) == b"\x80\x01"
        assert encode_uvarint(300) == b"\xac\x02"

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            encode_uvarint(-1)

    def test_truncated_input_rejected(self):
        with pytest.raises(ValueError):
            decode_uvarint(b"\x80")

    def test_decode_with_offset(self):
        data = b"junk" + encode_uvarint(300)
        value, offset = decode_uvarint(data, 4)
        assert value == 300
        assert offset == len(data)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=200, deadline=None)
    def test_property_round_trip(self, value):
        encoded = encode_uvarint(value)
        decoded, offset = decode_uvarint(encoded)
        assert decoded == value
        assert offset == len(encoded)


class TestLengthPrefixedBytes:
    def test_round_trip(self):
        encoded = encode_bytes(b"hello")
        assert decode_bytes(encoded) == (b"hello", len(encoded))

    def test_empty(self):
        assert decode_bytes(encode_bytes(b"")) == (b"", 1)

    def test_truncated_payload_rejected(self):
        with pytest.raises(ValueError):
            decode_bytes(encode_uvarint(10) + b"abc")

    def test_concatenated_values_decode_sequentially(self):
        data = encode_bytes(b"one") + encode_bytes(b"two")
        first, offset = decode_bytes(data)
        second, end = decode_bytes(data, offset)
        assert (first, second) == (b"one", b"two")
        assert end == len(data)

    @given(st.binary(max_size=500))
    @settings(max_examples=100, deadline=None)
    def test_property_round_trip(self, value):
        assert decode_bytes(encode_bytes(value))[0] == value


class TestBytesList:
    def test_round_trip(self):
        values = [b"", b"a", b"bb", b"c" * 100]
        encoded = encode_bytes_list(values)
        decoded, offset = decode_bytes_list(encoded)
        assert decoded == values
        assert offset == len(encoded)

    @given(st.lists(st.binary(max_size=40), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_property_round_trip(self, values):
        assert decode_bytes_list(encode_bytes_list(values))[0] == values


class TestKVPairs:
    def test_round_trip(self):
        pairs = [(b"k1", b"v1"), (b"", b""), (b"key", b"x" * 50)]
        encoded = encode_kv_pairs(pairs)
        decoded, offset = decode_kv_pairs(encoded)
        assert decoded == pairs
        assert offset == len(encoded)

    def test_canonical_encoding_is_injective_on_pairs(self):
        a = encode_kv_pairs([(b"ab", b"c")])
        b = encode_kv_pairs([(b"a", b"bc")])
        assert a != b

    @given(st.lists(st.tuples(st.binary(max_size=20), st.binary(max_size=60)), max_size=30))
    @settings(max_examples=100, deadline=None)
    def test_property_round_trip(self, pairs):
        assert decode_kv_pairs(encode_kv_pairs(pairs))[0] == pairs
