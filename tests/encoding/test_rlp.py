"""Unit and property tests for RLP encoding/decoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.encoding.rlp import RLPDecodingError, rlp_decode, rlp_encode


class TestRLPKnownVectors:
    """Vectors from the Ethereum yellow paper / wiki examples."""

    def test_single_byte_below_0x80(self):
        assert rlp_encode(b"\x00") == b"\x00"
        assert rlp_encode(b"\x7f") == b"\x7f"

    def test_short_string(self):
        assert rlp_encode(b"dog") == b"\x83dog"

    def test_empty_string(self):
        assert rlp_encode(b"") == b"\x80"

    def test_empty_list(self):
        assert rlp_encode([]) == b"\xc0"

    def test_list_of_strings(self):
        assert rlp_encode([b"cat", b"dog"]) == b"\xc8\x83cat\x83dog"

    def test_integer_scalars(self):
        assert rlp_encode(0) == b"\x80"
        assert rlp_encode(15) == b"\x0f"
        assert rlp_encode(1024) == b"\x82\x04\x00"

    def test_long_string_uses_long_form(self):
        data = b"a" * 56
        encoded = rlp_encode(data)
        assert encoded[0] == 0xB8
        assert encoded[1] == 56
        assert encoded[2:] == data

    def test_nested_list(self):
        # The "set theoretical representation of three" example.
        encoded = rlp_encode([[], [[]], [[], [[]]]])
        assert encoded == b"\xc7\xc0\xc1\xc0\xc3\xc0\xc1\xc0"

    def test_str_encoded_as_utf8(self):
        assert rlp_encode("dog") == rlp_encode(b"dog")


class TestRLPErrors:
    def test_negative_integer_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(-1)

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(True)

    def test_unsupported_type_rejected(self):
        with pytest.raises(TypeError):
            rlp_encode(3.14)

    def test_decode_empty_input(self):
        with pytest.raises(RLPDecodingError):
            rlp_decode(b"")

    def test_decode_truncated_string(self):
        with pytest.raises(RLPDecodingError):
            rlp_decode(b"\x85abc")

    def test_decode_truncated_list(self):
        with pytest.raises(RLPDecodingError):
            rlp_decode(b"\xc8\x83cat")

    def test_decode_trailing_garbage(self):
        with pytest.raises(RLPDecodingError):
            rlp_decode(b"\x83dog!")

    def test_decode_non_canonical_single_byte(self):
        # 0x81 0x05 encodes byte 5 redundantly; canonical form is plain 0x05.
        with pytest.raises(RLPDecodingError):
            rlp_decode(b"\x81\x05")

    def test_decode_non_canonical_long_form(self):
        with pytest.raises(RLPDecodingError):
            rlp_decode(b"\xb8\x03abc")


# Strategy for nested RLP structures of bytes.
rlp_structure = st.recursive(
    st.binary(max_size=80),
    lambda children: st.lists(children, max_size=6),
    max_leaves=25,
)


class TestRLPRoundTrip:
    def test_transaction_like_structure(self):
        transaction = [1_000_000, 20 * 10**9, 21_000, b"\xaa" * 20, 10**18, b"calldata" * 30, 27,
                       2**255 - 19, 2**254 + 7]
        encoded = rlp_encode(transaction)
        decoded = rlp_decode(encoded)
        assert isinstance(decoded, list)
        assert decoded[3] == b"\xaa" * 20
        assert decoded[5] == b"calldata" * 30
        # Scalars decode to their minimal big-endian byte strings.
        assert int.from_bytes(decoded[0], "big") == 1_000_000

    @given(rlp_structure)
    @settings(max_examples=150, deadline=None)
    def test_property_round_trip(self, structure):
        assert rlp_decode(rlp_encode(structure)) == structure

    @given(st.binary(min_size=0, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_property_bytes_round_trip(self, data):
        assert rlp_decode(rlp_encode(data)) == data

    @given(st.integers(min_value=0, max_value=2**256))
    @settings(max_examples=100, deadline=None)
    def test_property_integers_decode_to_minimal_bytes(self, value):
        decoded = rlp_decode(rlp_encode(value))
        assert int.from_bytes(decoded, "big") == value
        if value:
            assert decoded[0] != 0  # minimal encoding: no leading zero bytes
