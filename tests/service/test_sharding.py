"""Routing must be stable, uniform and total."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.service.sharding import ShardRouter, route_key


def test_route_is_deterministic():
    router = ShardRouter(8)
    for key in [b"", b"a", b"user:123", b"\x00\xff" * 20]:
        assert router.shard_of(key) == router.shard_of(key)
        assert router.shard_of(key) == route_key(key, 8)


def test_route_within_bounds():
    for num_shards in [1, 2, 3, 7, 16]:
        router = ShardRouter(num_shards)
        for i in range(500):
            assert 0 <= router.shard_of(f"key-{i}".encode()) < num_shards


def test_single_shard_takes_everything():
    router = ShardRouter(1)
    assert all(router.shard_of(f"k{i}".encode()) == 0 for i in range(100))


def test_distribution_is_roughly_uniform():
    # Sequential keys (the adversarial case for range partitioning) must
    # still spread evenly under hash routing.
    num_shards = 4
    router = ShardRouter(num_shards)
    buckets = router.partition(f"user:{i:06d}".encode() for i in range(8_000))
    expected = 8_000 / num_shards
    for bucket in buckets:
        assert 0.8 * expected < len(bucket) < 1.2 * expected


def test_partition_preserves_membership():
    router = ShardRouter(3)
    keys = [f"k{i}".encode() for i in range(100)]
    buckets = router.partition(keys)
    assert sorted(b for bucket in buckets for b in bucket) == sorted(keys)
    for shard_id, bucket in enumerate(buckets):
        for key in bucket:
            assert router.shard_of(key) == shard_id


def test_invalid_shard_count_rejected():
    with pytest.raises(InvalidParameterError):
        ShardRouter(0)
    with pytest.raises(InvalidParameterError):
        ShardRouter(-2)
