"""Differential proof that the process backend equals the thread backend.

``VersionedKVService(backend="process")`` moves every shard into its own
forked worker process; nothing about the *content* of the service may
change.  These tests drive identical operation streams — randomized
(hypothesis) and seeded YCSB — through a thread-backed and a
process-backed service built from the same configuration and assert the
observable state is byte-identical across all three SIRI index families:

* per-shard commit roots (the Merkle commitment of every version),
* commit digests (the cross-shard version identity),
* full scans of every committed version,
* structural diffs between consecutive versions,
* Merkle proofs that verify against the shared roots.

Because the commit digest is a hash over the shard root digests, root
equality here is equality of the entire Merkle trees — one differing
node anywhere in a worker's copy-on-write path would surface as a
digest mismatch.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.service.service import VersionedKVService
from repro.workloads.ycsb import YCSBConfig, YCSBServiceDriver, YCSBWorkload
from tests.conftest import SIRI_INDEXES, build_index


def build_service(index_class, backend, num_shards=3, batch_size=4, **kwargs):
    """A small service over ``index_class`` shards on the given backend."""
    service = VersionedKVService(
        index_factory=lambda store: build_index(index_class, store),
        num_shards=num_shards,
        batch_size=batch_size,
        backend=backend,
        **kwargs,
    )
    service.open()
    return service


def service_pair(index_class, **kwargs):
    """A (thread, process) service pair with identical configuration."""
    return (build_service(index_class, "thread", **kwargs),
            build_service(index_class, "process", **kwargs))


def apply_ops(service, ops):
    """Replay a ("put"|"remove"|"commit", ...) stream against a service."""
    for op in ops:
        if op[0] == "put":
            service.put(op[1], op[2])
        elif op[0] == "remove":
            service.remove(op[1])
        else:
            service.commit("checkpoint")
    service.commit("final")


def assert_equivalent(thread_svc, process_svc):
    """Every observable version of the two services must be byte-identical."""
    t_commits, p_commits = thread_svc.commits, process_svc.commits
    assert len(t_commits) == len(p_commits)
    for t_commit, p_commit in zip(t_commits, p_commits):
        assert t_commit.roots == p_commit.roots
        assert t_commit.digest == p_commit.digest
        t_snap = thread_svc.snapshot(t_commit)
        p_snap = process_svc.snapshot(p_commit)
        assert t_snap.to_dict() == p_snap.to_dict()
    for earlier, later in zip(range(len(t_commits) - 1), range(1, len(t_commits))):
        t_diff = thread_svc.diff(earlier, later)
        p_diff = process_svc.diff(earlier, later)
        assert ([(e.key, e.left, e.right) for e in t_diff.entries]
                == [(e.key, e.left, e.right) for e in p_diff.entries])


# Small keyspace so streams collide: overwrites, removes of live keys,
# and removes of absent keys all occur.
keys = st.binary(min_size=1, max_size=4)
values = st.binary(min_size=0, max_size=16)
ops_strategy = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, values),
        st.tuples(st.just("remove"), keys),
        st.tuples(st.just("commit")),
    ),
    min_size=1,
    max_size=40,
)


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestRandomizedEquivalence:
    @given(ops=ops_strategy)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_identical_streams_yield_identical_state(self, index_class, ops):
        thread_svc, process_svc = service_pair(index_class)
        try:
            apply_ops(thread_svc, ops)
            apply_ops(process_svc, ops)
            assert_equivalent(thread_svc, process_svc)
        finally:
            thread_svc.close()
            process_svc.close()


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestYCSBEquivalence:
    def test_seeded_ycsb_stream_matches(self, index_class):
        """A seeded YCSB load + mixed run produces identical histories."""
        workload = YCSBWorkload(YCSBConfig(
            record_count=120, operation_count=200, write_ratio=0.5,
            theta=0.9, batch_size=32, seed=7))
        driver = YCSBServiceDriver(workload)
        thread_svc, process_svc = service_pair(index_class, batch_size=16)
        try:
            for service in (thread_svc, process_svc):
                driver.load(service)
                driver.run(service, commit_every=64)
            assert_equivalent(thread_svc, process_svc)
        finally:
            thread_svc.close()
            process_svc.close()

    def test_proofs_verify_against_shared_roots(self, index_class):
        """Process-side proofs verify against roots the thread side computed."""
        workload = YCSBWorkload(YCSBConfig(record_count=60, batch_size=30, seed=3))
        driver = YCSBServiceDriver(workload)
        thread_svc, process_svc = service_pair(index_class, batch_size=16)
        try:
            driver.load(thread_svc)
            driver.load(process_svc)
            t_snap = thread_svc.snapshot(0)
            p_snap = process_svc.snapshot(0)
            for shard_id, p_shard in enumerate(p_snap.shards):
                t_shard = t_snap.shards[shard_id]
                assert p_shard.root_digest == t_shard.root_digest
                for key in list(p_shard.keys())[:3]:
                    proof = p_shard.prove(key)
                    # The roots are interchangeable: they are equal.
                    assert proof.verify(t_shard.root_digest)
                    assert proof.value == t_shard.get(key)
        finally:
            thread_svc.close()
            process_svc.close()


class TestLifecycleEquivalence:
    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_close_reopen_preserves_state(self, index_class):
        """In-memory process services survive close()/reopen() like threads."""
        thread_svc, process_svc = service_pair(index_class)
        try:
            for service in (thread_svc, process_svc):
                for i in range(30):
                    service.put(b"k%d" % i, b"v%d" % i)
                service.commit("before close")
                service.close()
                service.reopen()
            assert_equivalent(thread_svc, process_svc)
            assert process_svc.get(b"k7") == b"v7"
        finally:
            thread_svc.close()
            process_svc.close()

    def test_invalid_backend_rejected(self):
        from repro.core.errors import InvalidParameterError
        from repro.indexes.pos_tree import POSTree
        with pytest.raises(InvalidParameterError):
            VersionedKVService(POSTree, num_shards=2, backend="greenlet")


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestSyncEquivalence:
    """Anti-entropy sync is backend-blind: it converges any service pair.

    The replication entry points (``shard_missing_digests`` /
    ``shard_fetch_nodes`` / ``shard_import_nodes`` / ``publish_roots``)
    go through the same shard surface the rest of the service uses, so a
    sync session between a thread-backed and a process-backed replica —
    or between a durable and an in-memory one — must land byte-identical
    branch heads, exactly as if both sides shared a backend.
    """

    def _seed(self, service):
        for i in range(80):
            service.put(b"sync%03d" % i, b"payload-%03d" % i)
        service.commit("seed")

    def _assert_synced(self, left, right):
        l_head, r_head = left.branch_head("main"), right.branch_head("main")
        assert l_head.digest == r_head.digest
        assert l_head.roots == r_head.roots
        assert (left.snapshot(l_head).to_dict()
                == right.snapshot(r_head).to_dict())

    def test_thread_and_process_replicas_converge(self, index_class):
        from repro.sync import sync_service

        thread_svc, process_svc = service_pair(index_class)
        try:
            self._seed(thread_svc)
            report = sync_service(process_svc, thread_svc)
            assert [r.action for r in report.branches] == ["created_local"]
            self._assert_synced(thread_svc, process_svc)

            # Diverge both sides, heal with a symmetric resolver: the
            # merged head must be identical across the backend boundary.
            thread_svc.put(b"sync000", b"thread-wins")
            thread_svc.commit("thread side")
            process_svc.put(b"sync000", b"process-wins")
            process_svc.put(b"extra", b"process-only")
            process_svc.commit("process side")
            resolver = lambda c: max(v for v in (c.ours, c.theirs)
                                     if v is not None)
            merged = sync_service(process_svc, thread_svc, resolver=resolver)
            assert [r.action for r in merged.branches] == ["merged"]
            self._assert_synced(thread_svc, process_svc)
            snap = process_svc.snapshot(process_svc.branch_head("main"))
            assert snap.get(b"sync000") == b"thread-wins"
            assert snap.get(b"extra") == b"process-only"
        finally:
            thread_svc.close()
            process_svc.close()

    def test_durable_and_memory_replicas_converge(self, index_class, tmp_path):
        from repro.sync import sync_service

        durable = VersionedKVService(
            index_factory=lambda store: build_index(index_class, store),
            num_shards=3, batch_size=4, directory=str(tmp_path / "replica"))
        durable.open()
        memory = build_service(index_class, "thread")
        try:
            self._seed(memory)
            first = sync_service(durable, memory)
            assert first.nodes_pulled > 0
            self._assert_synced(memory, durable)

            # The pulled state is durable: a reopen sees it and the next
            # session finds nothing to transfer.
            durable.close()
            durable.reopen()
            self._assert_synced(memory, durable)
            second = sync_service(durable, memory)
            assert second.total_nodes == 0
        finally:
            memory.close()
            durable.close()
