"""Behaviour of the sharded versioned-KV service.

The service is parameterized over every index candidate (same discipline
as the rest of the suite): sharding, batching, caching and versioning are
index-agnostic, so each structure must behave identically behind it.
"""

import functools

import pytest

from tests.conftest import build_index
from repro.core.errors import InvalidParameterError, KeyNotFoundError
from repro.service import VersionedKVService
from repro.storage.memory import InMemoryNodeStore


@pytest.fixture
def service(index_class):
    """A 4-shard service over the parameterized index class."""
    factory = functools.partial(build_index, index_class)
    return VersionedKVService(factory, num_shards=4, batch_size=8, cache_bytes=1 << 20)


def fill(service, count, prefix="key"):
    for i in range(count):
        service.put(f"{prefix}:{i:05d}", f"value-{i}")


# -- basic reads and writes -------------------------------------------------

def test_put_get_roundtrip(service):
    fill(service, 100)
    service.flush()
    for i in range(100):
        assert service.get(f"key:{i:05d}") == f"value-{i}".encode()
    assert service.get("missing") is None
    assert service.get("missing", default=b"fallback") == b"fallback"


def test_read_your_writes_before_flush(service):
    # batch_size=8 > 1 pending op, so this put is still buffered.
    service.put("pending", "not yet flushed")
    assert service.get("pending") == b"not yet flushed"
    service.remove("pending")
    assert service.get("pending") is None
    assert "pending" not in service


def test_getitem_and_contains(service):
    service.put("k", "v")
    assert service["k"] == b"v"
    assert "k" in service
    with pytest.raises(KeyNotFoundError):
        service["absent"]


def test_remove_is_idempotent(service):
    fill(service, 10)
    service.flush()
    service.remove("key:00003")
    service.remove("key:00003")
    service.remove("never-existed")
    service.flush()
    assert service.get("key:00003") is None
    assert service.record_count() == 9


def test_records_partitioned_across_all_shards(service):
    fill(service, 400)
    service.flush()
    metrics = service.metrics(include_records=True)
    counts = [shard.records for shard in metrics.shards]
    assert sum(counts) == 400
    assert all(count > 0 for count in counts)


# -- versioning -------------------------------------------------------------

def test_commit_and_multi_version_reads(service):
    fill(service, 50)
    v0 = service.commit("load")
    service.put("key:00007", "rewritten")
    service.remove("key:00009")
    v1 = service.commit("edit")

    # Latest state.
    assert service.get("key:00007") == b"rewritten"
    assert service.get("key:00009") is None
    # Historical state, by version number and by commit object.
    assert service.get("key:00007", version=v0.version) == b"value-7"
    assert service.get("key:00009", version=v0) == b"value-9"
    assert service.get("key:00007", version=v1) == b"rewritten"
    assert v0.version == 0 and v1.version == 1


def test_unknown_version_rejected(service):
    service.commit("only commit")
    with pytest.raises(KeyNotFoundError):
        service.get("k", version=99)
    # Negative numbers must not alias the newest commits via list indexing.
    with pytest.raises(KeyNotFoundError):
        service.get("k", version=-1)
    with pytest.raises(KeyNotFoundError):
        service.snapshot(version="not-a-version")


def test_commit_digest_is_content_addressed(index_class):
    # Two services built with different operation orders but identical
    # content commit identical digests (structural invariance carries
    # through the service layer) — for the structurally invariant indexes.
    def build(order):
        factory = functools.partial(build_index, index_class)
        svc = VersionedKVService(factory, num_shards=4, batch_size=4)
        for i in order:
            svc.put(f"key:{i:04d}", f"value-{i}")
        return svc.commit("done")

    forward = build(range(30))
    backward = build(reversed(range(30)))
    if index_class.name == "MVMB+-Tree":
        pytest.skip("the MVMB+-Tree baseline is not structurally invariant")
    assert forward.digest == backward.digest
    assert forward.roots == backward.roots


def test_shard_histories_grow_per_flush(service):
    fill(service, 64)
    service.flush()
    histories = service.shard_histories()
    assert len(histories) == service.num_shards
    for history in histories:
        assert history[0] is None              # every shard starts empty
        assert len(history) >= 2               # at least one flush happened


# -- snapshots and diff ------------------------------------------------------

def test_snapshot_merges_shards_in_key_order(service):
    fill(service, 200)
    snapshot = service.snapshot()
    items = list(snapshot.items())
    assert len(items) == 200
    assert items == sorted(items)
    assert len(snapshot) == 200
    assert snapshot.get("key:00123") == b"value-123"
    assert snapshot["key:00123"] == b"value-123"
    assert "key:00123" in snapshot
    with pytest.raises(KeyNotFoundError):
        snapshot["absent"]


def test_snapshot_of_committed_version_is_stable(service):
    fill(service, 30)
    v0 = service.commit("load")
    service.put("key:00001", "changed")
    service.flush()
    old = service.snapshot(v0)
    assert old.get("key:00001") == b"value-1"
    assert old.commit.version == 0
    assert service.snapshot().get("key:00001") == b"changed"


def test_cross_shard_diff(service):
    fill(service, 100)
    v0 = service.commit("base")
    service.put("key:00010", "changed")        # changed
    service.put("new-key", "added")            # added
    service.remove("key:00020")                # removed
    v1 = service.commit("edits")

    result = service.diff(v0, v1)
    kinds = {entry.key: entry.kind for entry in result}
    assert kinds == {
        b"key:00010": "changed",
        b"new-key": "added",
        b"key:00020": "removed",
    }
    # Entries come out globally sorted even though they span shards.
    keys = [entry.key for entry in result]
    assert keys == sorted(keys)
    # diff against the current head when right is omitted.
    assert len(service.diff(v0)) == 3
    # Identical versions diff empty without comparisons.
    assert len(service.diff(v1, v1)) == 0


def test_diff_requires_matching_shard_counts(index_class):
    factory = functools.partial(build_index, index_class)
    two = VersionedKVService(factory, num_shards=2, batch_size=4)
    four = VersionedKVService(factory, num_shards=4, batch_size=4)
    with pytest.raises(InvalidParameterError):
        two.snapshot().diff(four.snapshot())


# -- batching and caching ----------------------------------------------------

def test_auto_flush_at_batch_size(service):
    # batch_size=8 and 4 shards: 64 puts must have triggered flushes.
    fill(service, 64)
    metrics = service.metrics()
    assert metrics.flushes > 0
    assert service.batcher.total_pending() < 8 * service.num_shards


def test_hot_key_writes_coalesce(service):
    for i in range(7):                         # below the threshold of 8
        service.put("hot", f"value-{i}")
    assert service.batcher.pending_count(service.shard_of("hot")) == 1
    service.flush()
    assert service.get("hot") == b"value-6"
    assert service.metrics().coalesced_ops == 6


def test_unbatched_writes_cost_more_node_writes(index_class):
    def nodes_written(batch_size):
        factory = functools.partial(build_index, index_class)
        svc = VersionedKVService(factory, num_shards=2,
                                 batch_size=batch_size, cache_bytes=0)
        for i in range(200):
            svc.put(f"key:{i:05d}", f"value-{i}")
        svc.flush()
        return svc.metrics().nodes_written

    # Batching never costs extra node writes; for the structures whose
    # write path is genuinely batch-amortized (bottom-up rebuilds: MBT and
    # POS-Tree — see the paper's Table 2 discussion) it must save a lot.
    assert nodes_written(100) <= nodes_written(1)
    if index_class.name in ("MBT", "POS-Tree"):
        assert nodes_written(100) < nodes_written(1) / 5


def test_cache_metrics_are_reported(service):
    fill(service, 100)
    service.flush()
    for i in range(100):
        service.get(f"key:{i:05d}")
    metrics = service.metrics()
    assert metrics.cache.requests > 0
    assert 0.0 <= metrics.cache.hit_ratio <= 1.0
    assert metrics.gets == 100
    per_shard = [shard.cache.requests for shard in metrics.shards]
    assert sum(per_shard) == metrics.cache.requests


def test_cache_can_be_disabled(index_class):
    factory = functools.partial(build_index, index_class)
    svc = VersionedKVService(factory, num_shards=2, batch_size=4, cache_bytes=0)
    svc.put("a", "1")
    svc.flush()
    assert svc.get("a") == b"1"
    assert svc.metrics().cache.requests == 0


def test_reset_counters(service):
    fill(service, 50)
    service.flush()
    service.get("key:00001")
    service.reset_counters()
    metrics = service.metrics()
    assert metrics.gets == metrics.puts == 0
    assert metrics.nodes_written == 0
    assert metrics.cache.requests == 0
    assert metrics.flushes == 0
    # State survives the counter reset.
    assert service.get("key:00001") == b"value-1"


# -- construction ------------------------------------------------------------

def test_invalid_construction_rejected(index_class):
    factory = functools.partial(build_index, index_class)
    with pytest.raises(InvalidParameterError):
        VersionedKVService(factory, num_shards=0)
    with pytest.raises(InvalidParameterError):
        VersionedKVService(factory, batch_size=0)
    with pytest.raises(InvalidParameterError):
        VersionedKVService(factory, cache_bytes=-1)


def test_custom_store_factory(index_class):
    stores = []

    def store_factory():
        store = InMemoryNodeStore()
        stores.append(store)
        return store

    factory = functools.partial(build_index, index_class)
    svc = VersionedKVService(factory, num_shards=3, store_factory=store_factory,
                             batch_size=4)
    assert len(stores) == 3                    # one backing store per shard
    fill(svc, 30)
    svc.flush()
    assert sum(len(store) for store in stores) > 0
    assert svc.storage_bytes() == sum(store.total_bytes() for store in stores)
