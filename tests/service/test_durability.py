"""Durability, crash-recovery and GC tests for the service lifecycle.

The kill-point tests simulate crashes the way the storage engine will
meet them in production: by abandoning a service instance without
``close()`` and/or physically truncating a shard's active segment file
mid-record or mid-batch, then asserting that a fresh instance over the
same directory recovers *exactly* the last committed cross-shard roots.
"""

import glob
import os

import pytest

from repro.core.errors import NodeNotFoundError, ServiceClosedError
from repro.indexes import POSTree
from repro.service import VersionedKVService
from repro.storage.segment import encode_data_record
from repro.hashing.digest import hash_bytes
from repro.workloads.ycsb import YCSBServiceDriver, YCSBWorkload


def make_service(directory, **kwargs):
    kwargs.setdefault("num_shards", 4)
    kwargs.setdefault("batch_size", 32)
    return VersionedKVService(POSTree, directory=str(directory), **kwargs)


def shard_segments(directory):
    """Every shard's segment files, newest last per shard."""
    return sorted(glob.glob(os.path.join(str(directory), "shard-*", "seg-*.seg")))


class TestLifecycle:
    def test_commit_close_reopen_round_trip(self, tmp_path):
        service = make_service(tmp_path)
        for i in range(200):
            service.put(f"key-{i:04d}", f"val-{i}-r0")
        v0 = service.commit("load").version
        for i in range(0, 200, 3):
            service.put(f"key-{i:04d}", f"val-{i}-r1")
        v1 = service.commit("update").version
        service.close()
        assert not service.is_open

        recovered = make_service(tmp_path)
        assert len(recovered.commits) == 2
        assert recovered.get("key-0003", version=v1) == b"val-3-r1"
        assert recovered.get("key-0003", version=v0) == b"val-3-r0"
        assert recovered.record_count() == 200

    def test_close_commits_buffered_tail(self, tmp_path):
        service = make_service(tmp_path)
        service.put("committed", "yes")
        service.commit("c0")
        service.put("buffered", "still pending")  # below batch threshold
        service.close()
        recovered = make_service(tmp_path)
        # Clean close is lossless: the tail was committed implicitly.
        assert recovered.get("buffered") == b"still pending"
        assert recovered.commits[-1].message == "close()"

    def test_reopen_is_lossless(self, tmp_path):
        service = make_service(tmp_path)
        service.put("a", "1")
        service.commit("c")
        service.put("b", "2")
        service.reopen()
        assert service.get("a") == b"1"
        assert service.get("b") == b"2"

    def test_closed_service_raises_everywhere(self, tmp_path):
        service = make_service(tmp_path)
        service.put("k", "v")
        service.close()
        for call in (
            lambda: service.get("k"),
            lambda: service.put("k", "v2"),
            lambda: service.remove("k"),
            lambda: service.flush(),
            lambda: service.commit("x"),
            lambda: service.snapshot(),
            lambda: service.record_count(),
            lambda: service.collect_garbage(),
        ):
            with pytest.raises(ServiceClosedError):
                call()
        service.reopen()
        assert service.get("k") == b"v"

    def test_in_memory_lifecycle(self):
        service = VersionedKVService(POSTree, num_shards=2)
        service.put("a", "1")
        service.commit("c0")
        service.reopen()  # default memory backings are parked and reused
        assert service.get("a") == b"1"

    def test_directory_and_store_factory_are_exclusive(self, tmp_path):
        from repro.storage.memory import InMemoryNodeStore
        from repro.core.errors import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            VersionedKVService(POSTree, directory=str(tmp_path),
                               store_factory=InMemoryNodeStore)
        with pytest.raises(InvalidParameterError):
            VersionedKVService(POSTree, retain_versions=0)


class TestCrashRecovery:
    def test_crash_loses_uncommitted_tail_only(self, tmp_path):
        service = make_service(tmp_path)
        for i in range(100):
            service.put(f"key-{i:04d}", f"val-{i}")
        commit = service.commit("durable")
        for i in range(50):
            service.put(f"lost-{i:04d}", "never committed")
        service.flush()  # store-durable, but no manifest entry
        # Crash: abandon the instance without close().
        recovered = make_service(tmp_path)
        assert recovered.commits[-1].roots == commit.roots
        assert recovered.get("key-0042") == b"val-42"
        assert recovered.get("lost-0000") is None

    def test_kill_point_mid_record(self, tmp_path):
        """Truncating the active segment inside a record recovers the last
        committed roots exactly."""
        service = make_service(tmp_path, num_shards=2)
        for i in range(80):
            service.put(f"key-{i:04d}", f"val-{i}" * 8)
        commit = service.commit("checkpoint")
        expected = {k: v for k, v in service.snapshot(commit.version).items()}
        for i in range(40):
            service.put(f"doomed-{i:04d}", "x" * 64)
        service.flush()
        # Kill point: cut into the middle of the last appended record on
        # every shard that grew past the checkpoint.
        for path in shard_segments(tmp_path):
            size = os.path.getsize(path)
            with open(path, "r+b") as handle:
                handle.truncate(size - 7)
        recovered = make_service(tmp_path, num_shards=2)
        assert recovered.commits[-1].roots == commit.roots
        assert dict(recovered.snapshot(commit.version).items()) == expected
        assert recovered.get("doomed-0000") is None

    def test_kill_point_mid_batch(self, tmp_path):
        """A flush that persisted some complete records but no commit
        marker is invisible after reopen (no partial batches)."""
        service = make_service(tmp_path, num_shards=2)
        for i in range(60):
            service.put(f"base-{i:04d}", f"val-{i}")
        commit = service.commit("base")
        # Hand-append a half-batch directly to one shard's active segment:
        # two complete records, crash before the COMMIT marker.
        path = shard_segments(tmp_path)[0]
        with open(path, "ab") as handle:
            handle.write(encode_data_record(hash_bytes(b"uncommitted-1"), b"u1" * 30))
            handle.write(encode_data_record(hash_bytes(b"uncommitted-2"), b"u2" * 30))
        recovered = make_service(tmp_path, num_shards=2)
        assert recovered.commits[-1].roots == commit.roots
        shard_store = recovered._shards[0].backing
        assert shard_store.recovery.uncommitted_records_dropped == 2
        assert not shard_store.contains(hash_bytes(b"uncommitted-1"))
        assert recovered.get("base-0007") == b"val-7"

    def test_torn_manifest_line_is_dropped_and_truncated(self, tmp_path):
        service = make_service(tmp_path)
        service.put("k", "v")
        commit = service.commit("good")
        service.close()
        manifest = os.path.join(str(tmp_path), VersionedKVService.MANIFEST_NAME)
        size_before = os.path.getsize(manifest)
        with open(manifest, "a", encoding="utf-8") as handle:
            handle.write('{"version": 1, "roots": [')  # torn mid-append
        recovered = make_service(tmp_path)
        assert [c.version for c in recovered.commits] == [commit.version]
        assert recovered.commits[-1].roots == commit.roots
        assert recovered.get("k") == b"v"
        # The torn tail must be physically gone, or the next append would
        # concatenate onto it and corrupt the journal.
        assert os.path.getsize(manifest) == size_before

        # Commits issued after the repair journal cleanly...
        recovered.put("k2", "v2")
        next_commit = recovered.commit("after repair")
        recovered.close()
        # ...and every later open replays the full history.
        final = make_service(tmp_path)
        assert [c.version for c in final.commits] == [0, 1]
        assert final.get("k2", version=next_commit.version) == b"v2"

    def test_manifest_corruption_before_tail_raises(self, tmp_path):
        from repro.core.errors import CorruptNodeError

        service = make_service(tmp_path)
        service.put("a", "1")
        service.commit("c0")
        service.put("a", "2")
        service.commit("c1")
        service.close()
        manifest = os.path.join(str(tmp_path), VersionedKVService.MANIFEST_NAME)
        with open(manifest, "r+b") as handle:
            handle.seek(5)
            handle.write(b"\xff\xfe")  # bitrot inside the first (sealed) entry
        with pytest.raises(CorruptNodeError):
            make_service(tmp_path)


class TestRetentionAndGC:
    def test_gc_reclaims_churn_and_keeps_retained_versions(self, tmp_path):
        service = make_service(tmp_path, num_shards=2, retain_versions=4,
                               cache_bytes=0, segment_capacity_bytes=64 * 1024)
        for i in range(150):
            service.put(f"key-{i:04d}", f"val-{i}-r0" * 4)
        service.commit("load")
        for version in range(12):
            for i in range(0, 150, 2):
                service.put(f"key-{i:04d}", f"val-{i}-r{version + 1}" * 4)
            service.commit(f"churn {version}")
        retained = service.retained_commits()
        assert len(retained) == 4
        report = service.collect_garbage()
        assert report.runs == 2  # one compaction per shard
        assert report.bytes_reclaimed > 0
        assert report.reclaimed_fraction >= 0.5
        # Every retained version remains byte-identical readable.
        for commit in retained:
            assert service.get("key-0002", version=commit.version) is not None
        # A version older than the window now dangles.
        with pytest.raises(NodeNotFoundError):
            dict(service.snapshot(0).items())
        # Cumulative counters surface through metrics().
        assert service.metrics().gc.runs == 2
        # And the collected state survives reopen.
        service.reopen()
        assert service.get("key-0002", version=retained[-1].version) is not None

    def test_gc_without_retention_keeps_everything(self, tmp_path):
        service = make_service(tmp_path, num_shards=2)
        service.put("a", "1")
        v0 = service.commit("c0").version
        service.put("a", "2")
        service.commit("c1")
        service.collect_garbage()
        assert service.get("a", version=v0) == b"1"
        assert service.get("a") == b"2"

    def test_gc_on_memory_service_uses_delete_path(self):
        service = VersionedKVService(POSTree, num_shards=2, retain_versions=1,
                                     cache_bytes=0)
        for i in range(100):
            service.put(f"k{i:03d}", "v0" * 10)
        service.commit("c0")
        for version in range(5):
            for i in range(100):
                service.put(f"k{i:03d}", f"v{version + 1}" * 10)
            service.commit(f"c{version + 1}")
        report = service.collect_garbage()
        assert report.swept_nodes > 0
        assert service.get("k007") == b"v5" * 10


class TestGCConcurrency:
    def test_versioned_reads_survive_concurrent_gc(self, tmp_path):
        """Reads of retained versions take no locks; a racing
        collect_garbage (segment compaction) must never crash them."""
        import threading

        service = make_service(tmp_path, num_shards=2, retain_versions=3,
                               cache_bytes=0, segment_capacity_bytes=32 * 1024)
        for i in range(200):
            service.put(f"key-{i:04d}", f"val-{i}" * 6)
        service.commit("base")
        for version in range(6):
            for i in range(0, 200, 2):
                service.put(f"key-{i:04d}", f"val-{i}-r{version}" * 6)
            service.commit(f"churn {version}")
        retained = service.retained_commits()
        stop = threading.Event()
        failures = []

        def reader():
            i = 0
            while not stop.is_set():
                commit = retained[i % len(retained)]
                try:
                    assert service.get(f"key-{(i * 2) % 200:04d}",
                                       version=commit.version) is not None
                except Exception as exc:  # pragma: no cover - the bug path
                    failures.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(3):
                service.collect_garbage()
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures[0]
        service.close()


class TestBranchDurability:
    """Branch-qualified commits: every branch head survives crashes —
    including a crash injected *during* a merge commit's journal append."""

    @staticmethod
    def make_repo(directory, **kwargs):
        from repro.api import Repository

        kwargs.setdefault("num_shards", 4)
        kwargs.setdefault("batch_size", 32)
        return Repository.open(str(directory), **kwargs)

    def test_every_branch_head_recovers_after_crash(self, tmp_path):
        repo = self.make_repo(tmp_path)
        main = repo.default_branch
        main.put_many({f"k{i:03d}".encode(): f"v{i}".encode() for i in range(100)})
        main.commit("base")
        heads = {}
        for name in ("alpha", "beta", "gamma"):
            branch = main.fork(name)
            branch.put(f"only-{name}".encode(), name.encode())
            heads[name] = branch.commit(f"{name} edit")
        heads["main"] = main.head
        # Crash: abandon without close().
        recovered = self.make_repo(tmp_path)
        assert recovered.branches() == ["alpha", "beta", "gamma", "main"]
        for name, head in heads.items():
            assert recovered.service.branch_head(name).roots == head.roots
        assert recovered.branch("beta").get(b"only-beta") == b"beta"
        assert recovered.branch("beta").get(b"k007") == b"v7"
        # The DAG survived too: merge bases are recomputed identically.
        assert (recovered.merge_base("alpha", "beta").roots
                == heads["main"].roots)

    def test_crash_during_merge_commit_journal_append(self, tmp_path):
        """Kill point inside the durable merge commit: the merge's journal
        line is torn mid-append.  Recovery must land every branch head on
        its last *committed* roots — the merge simply never happened."""
        repo = self.make_repo(tmp_path, num_shards=2)
        main = repo.default_branch
        main.put_many({f"k{i:03d}".encode(): f"v{i}".encode() for i in range(80)})
        main.commit("base")
        fork = main.fork("fork")
        fork.put_many({f"k{i:03d}".encode(): b"forked" for i in range(0, 20)})
        fork.commit("fork edits")
        main.put_many({f"k{i:03d}".encode(): b"mained" for i in range(40, 60)})
        main.commit("main edits")
        pre_merge = {name: repo.service.branch_head(name).roots
                     for name in ("main", "fork")}
        manifest = os.path.join(str(tmp_path), "MANIFEST.jsonl")
        size_before_merge = os.path.getsize(manifest)

        outcome = repo.merge("main", "fork")
        assert outcome.commit is not None
        size_after_merge = os.path.getsize(manifest)
        # Kill point: the crash hits while the merge commit's line is in
        # flight — only a prefix of the append reached the disk.
        torn_size = size_before_merge + (size_after_merge - size_before_merge) // 2
        with open(manifest, "r+b") as handle:
            handle.truncate(torn_size)

        recovered = self.make_repo(tmp_path, num_shards=2)
        for name, roots in pre_merge.items():
            assert recovered.service.branch_head(name).roots == roots
        assert recovered.branch("main").get(b"k045") == b"mained"
        assert recovered.branch("main").get(b"k005") == b"v5"
        assert recovered.branch("fork").get(b"k005") == b"forked"
        # The repaired journal accepts the merge cleanly on retry.
        retry = recovered.merge("main", "fork")
        assert retry.commit is not None
        assert retry.commit.roots == outcome.commit.roots
        recovered.close()
        final = self.make_repo(tmp_path, num_shards=2)
        assert final.service.branch_head("main").roots == outcome.commit.roots

    def test_crash_before_merge_manifest_append_loses_only_the_merge(self, tmp_path):
        """Kill point between the merge's node flush and its journal
        append (simulated by making the append raise): the merge fails,
        and a fresh process sees every branch head unchanged."""
        repo = self.make_repo(tmp_path, num_shards=2)
        main = repo.default_branch
        main.put_many({b"a": b"1", b"b": b"2"})
        main.commit("base")
        fork = main.fork("fork")
        fork.put(b"a", b"forked")
        fork.commit("fork edit")
        pre_merge = {name: repo.service.branch_head(name).roots
                     for name in ("main", "fork")}

        service = repo.service
        original_append = service._append_manifest

        def dying_append(commit):
            raise OSError("simulated power loss at the journal append")

        service._append_manifest = dying_append
        with pytest.raises(OSError):
            repo.merge("main", "fork")
        service._append_manifest = original_append
        # Crash: abandon the wounded instance entirely.
        recovered = self.make_repo(tmp_path, num_shards=2)
        for name, roots in pre_merge.items():
            assert recovered.service.branch_head(name).roots == roots
        assert recovered.merge("main", "fork").commit is not None
        assert recovered.branch("main").get(b"a") == b"forked"


class TestYCSBOverDurableStore:
    def test_ycsb_a_survives_crash_and_reopen(self, tmp_path):
        """The acceptance drill: a YCSB-A run with periodic commits over
        SegmentNodeStore shards; crash; every committed version stays
        readable."""
        workload = YCSBWorkload(record_count=300, operation_count=600,
                                write_ratio=0.5, theta=0.9, batch_size=100, seed=7)
        driver = YCSBServiceDriver(workload)
        service = make_service(tmp_path, num_shards=2, batch_size=100)
        driver.load(service)
        counters = driver.run(service, commit_every=150)
        # 600 ops / 150 = 4 boundary checkpoints; the final checkpoint is
        # skipped because the last boundary already committed everything.
        assert counters.extra["commits"] == 4
        commits = service.commits
        expected = {
            commit.version: dict(service.snapshot(commit.version).items())
            for commit in commits
        }
        # Crash (no close), then recover.
        recovered = make_service(tmp_path, num_shards=2, batch_size=100)
        assert len(recovered.commits) == len(commits)
        for version, content in expected.items():
            assert dict(recovered.snapshot(version).items()) == content
