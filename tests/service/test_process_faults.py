"""Crash-fault suite for the process shard backend.

A shard worker is a separate OS process, so it can die at any point —
SIGKILLed mid-batch, at the two-phase prepare barrier, or the parent
itself can fail between prepare and the journal append.  The commit
protocol's contract under every one of these faults is the same:

* the failing operation raises :class:`ShardExecutionError` (never a
  bare pipe error, never a hang),
* the fsynced ``MANIFEST.jsonl`` journal is **never** extended with a
  partial cut — a commit either names all shard roots or does not exist,
* ``reopen()`` recovers exactly the last journalled state, and
* a service with a dead worker still closes without hanging.

Kill-points are armed with ``handle.set_fault("flush"|"prepare")``
(the worker SIGKILLs *itself* at the named point, so the timing is
exact); external crashes are simulated with ``os.kill(pid, SIGKILL)``.
"""

import os
import signal
import time

import pytest

from repro.core.errors import ShardExecutionError
from repro.indexes.pos_tree import POSTree
from repro.service.process import FAULT_POINTS
from repro.service.service import VersionedKVService


def make_service(directory, num_shards=2, batch_size=64):
    service = VersionedKVService(
        index_factory=POSTree, num_shards=num_shards, batch_size=batch_size,
        directory=str(directory), backend="process")
    service.open()
    return service


def manifest_bytes(directory):
    with open(os.path.join(str(directory), "MANIFEST.jsonl"), "rb") as fh:
        return fh.read()


def committed_baseline(service, records=20):
    """Write and commit a baseline; return the commit."""
    for i in range(records):
        service.put(b"k%d" % i, b"v%d" % i)
    return service.commit("baseline")


def assert_recovers_baseline(directory, baseline):
    """A fresh service over ``directory`` sees exactly the baseline commit."""
    recovered = make_service(directory)
    try:
        assert len(recovered.commits) == len(baseline.commits_expected)
        for commit, expected in zip(recovered.commits, baseline.commits_expected):
            assert commit.roots == expected.roots
            assert commit.digest == expected.digest
        assert recovered.get(b"k1") == b"v1"
        assert recovered.get(b"lost", default=None) is None
    finally:
        recovered.close()


class Baseline:
    def __init__(self, commits_expected):
        self.commits_expected = commits_expected


class TestWorkerKillPoints:
    @pytest.mark.parametrize("point", FAULT_POINTS)
    def test_kill_point_never_journals_partial_cut(self, tmp_path, point):
        service = make_service(tmp_path)
        try:
            commit = committed_baseline(service)
            before = manifest_bytes(tmp_path)
            service._shards[0].set_fault(point)
            for i in range(40):
                service.put(b"doomed%d" % i, b"x")
            with pytest.raises(ShardExecutionError) as err:
                service.commit("never journalled")
            assert err.value.shard_id == 0
            assert manifest_bytes(tmp_path) == before
            assert not service._shards[0].is_alive
        finally:
            service.close()
        assert_recovers_baseline(tmp_path, Baseline([commit]))

    def test_dead_worker_fails_fast_not_hangs(self, tmp_path):
        service = make_service(tmp_path)
        try:
            committed_baseline(service)
            service._shards[1].set_fault("flush")
            for i in range(40):
                service.put(b"d%d" % i, b"x")
            with pytest.raises(ShardExecutionError):
                service.flush()
            # Every later touch of the dead shard is an immediate,
            # descriptive error — not a blocked pipe read.
            start = time.monotonic()
            with pytest.raises(ShardExecutionError):
                service.commit("still dead")
            assert time.monotonic() - start < 5.0
        finally:
            service.close()  # must not hang on the dead worker

    def test_external_sigkill_mid_stream(self, tmp_path):
        """A worker killed from outside (OOM-killer style) is survivable."""
        service = make_service(tmp_path)
        try:
            commit = committed_baseline(service)
            before = manifest_bytes(tmp_path)
            os.kill(service._shards[0].pid, signal.SIGKILL)
            for i in range(40):
                service.put(b"d%d" % i, b"x")
            with pytest.raises(ShardExecutionError):
                service.commit("worker is gone")
            assert manifest_bytes(tmp_path) == before
        finally:
            service.close()
        assert_recovers_baseline(tmp_path, Baseline([commit]))


class TestJournalKillPoint:
    def test_crash_between_prepare_and_journal(self, tmp_path, monkeypatch):
        """Shards flushed, parent dies before the append: commit never existed.

        The journal append is the atomicity point of the two-phase cut;
        a crash after every worker prepared but before the single
        ``_append_manifest`` write must leave the previous commit as the
        recovered state.
        """
        service = make_service(tmp_path)
        try:
            commit = committed_baseline(service)
            before = manifest_bytes(tmp_path)
            for i in range(40):
                service.put(b"d%d" % i, b"x")

            def crash(commit):
                raise OSError("simulated crash before the journal append")

            monkeypatch.setattr(service, "_append_manifest", crash)
            with pytest.raises(OSError):
                service.commit("prepared but never journalled")
            assert manifest_bytes(tmp_path) == before
            # A graceful close() would journal the prepared working heads
            # as its final commit — a genuine parent crash does not get
            # that chance.  Simulate it: the workers die with the parent.
            for shard in service._shards:
                os.kill(shard.pid, signal.SIGKILL)
        finally:
            monkeypatch.undo()
            service.close()
        assert manifest_bytes(tmp_path) == before
        assert_recovers_baseline(tmp_path, Baseline([commit]))

    def test_recovered_service_keeps_committing(self, tmp_path):
        """Recovery is full service: the reopened store accepts new commits."""
        service = make_service(tmp_path)
        commit = committed_baseline(service)
        service._shards[0].set_fault("flush")
        for i in range(40):
            service.put(b"d%d" % i, b"x")
        with pytest.raises(ShardExecutionError):
            service.commit("dies")
        service.close()

        recovered = make_service(tmp_path)
        try:
            assert recovered.commits[0].roots == commit.roots
            recovered.put(b"after", b"recovery")
            second = recovered.commit("post-recovery")
            assert second.version == 1
            assert recovered.get(b"after") == b"recovery"
        finally:
            recovered.close()

    def test_set_fault_rejects_unknown_point(self, tmp_path):
        from repro.core.errors import InvalidParameterError
        service = make_service(tmp_path, num_shards=1)
        try:
            # Engine exceptions cross the pipe with their original type.
            with pytest.raises(InvalidParameterError):
                service._shards[0].set_fault("before-breakfast")
            # The validation error kills nothing: the worker still serves.
            assert service._shards[0].is_alive
        finally:
            service.close()

    def test_thread_backend_has_no_kill_points(self):
        service = VersionedKVService(POSTree, num_shards=1, backend="thread")
        try:
            with pytest.raises(NotImplementedError):
                service._shards[0].set_fault("flush")
        finally:
            service.close()
