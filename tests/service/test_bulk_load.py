"""Tests for the shard-parallel bulk-ingest path (ISSUE 5).

``VersionedKVService.load`` / ``ServiceExecutor.load`` must be
observationally identical to the per-key put path — same commit digests,
same read-your-writes interaction with the buffer — while touching each
shard exactly once per call.  ``put_many`` (bug-fixed in the same PR)
must group per shard, count once, and flush each shard at most once per
call.
"""

import threading

import pytest

from repro.indexes import MerklePatriciaTrie, POSTree
from repro.service import ServiceExecutor, VersionedKVService

ITEMS = {b"key%05d" % i: b"value%05d" % i for i in range(2000)}


def make_service(index_factory=POSTree, **kwargs):
    kwargs.setdefault("num_shards", 4)
    return VersionedKVService(index_factory, **kwargs)


class TestServiceLoad:
    def test_load_matches_put_path_commit_digest(self):
        by_puts = make_service()
        for key, value in ITEMS.items():
            by_puts.put(key, value)
        by_puts.flush()
        expected = by_puts.commit("loaded")

        by_load = make_service()
        routed = by_load.load(ITEMS)
        actual = by_load.commit("loaded")
        assert routed == len(ITEMS)
        assert actual.digest == expected.digest
        assert actual.roots == expected.roots

    @pytest.mark.parametrize("index_factory", [POSTree, MerklePatriciaTrie],
                             ids=["POS-Tree", "MPT"])
    def test_load_serves_reads(self, index_factory):
        service = make_service(index_factory)
        service.load(ITEMS)
        assert service.get(b"key00042") == b"value00042"
        assert service.record_count() == len(ITEMS)

    def test_load_accepts_pair_iterables_with_duplicates(self):
        service = make_service()
        routed = service.load([(b"dup", b"first"), (b"x", b"1"), (b"dup", b"last")])
        assert service.get(b"dup") == b"last"
        assert service.record_count() == 2
        # duplicates coalesce before routing: the return value and the put
        # counter report routed records, not raw input pairs
        assert routed == 2
        assert service.metrics().puts == 2

    def test_load_and_put_many_accept_non_dict_mappings(self):
        from types import MappingProxyType
        view = MappingProxyType({b"ab": b"1", b"cd": b"2"})
        service = make_service()
        assert service.load(view) == 2
        assert service.get(b"ab") == b"1"
        other = make_service()
        other.put_many(view)
        assert other.get(b"cd") == b"2"

    def test_load_takes_one_lock_round_trip_per_shard(self):
        service = make_service()
        before = service.metrics().contention.acquisitions
        service.load(ITEMS)
        after = service.metrics()
        # One shard-lock acquisition per non-empty shard, not per key.
        assert after.contention.acquisitions - before <= service.num_shards
        assert all(shard.flushes <= 1 for shard in after.shards)

    def test_load_folds_in_pending_buffered_operations(self):
        service = make_service()
        service.put(b"key00001", b"stale-buffered")   # load overwrites it
        service.remove(b"key00002")                   # load rewrites it
        service.put(b"survivor", b"kept")             # untouched by the load
        service.remove(b"key-removed")                # stays a remove
        service.load(ITEMS)
        assert service.get(b"key00001") == b"value00001"
        assert service.get(b"key00002") == b"value00002"
        assert service.get(b"survivor") == b"kept"
        assert service.get(b"key-removed") is None
        assert service.batcher.total_pending() == 0

    def test_load_onto_existing_data_is_an_incremental_batch(self):
        service = make_service()
        service.load({b"old": b"1", b"key00000": b"old-value"})
        first = service.commit("first load")
        service.load(ITEMS)
        second = service.commit("second load")
        assert service.get(b"old") == b"1"
        assert service.get(b"key00000") == b"value00000"
        assert second.version > first.version
        assert service.record_count() == len(ITEMS) + 1

    def test_empty_load_is_a_no_op(self):
        service = make_service()
        assert service.load({}) == 0
        assert service.metrics().flushes == 0

    def test_load_requires_open_service(self):
        service = make_service()
        service.close()
        from repro.core.errors import ServiceClosedError
        with pytest.raises(ServiceClosedError):
            service.load(ITEMS)


class TestExecutorLoad:
    def test_executor_load_matches_sequential_load(self):
        sequential = make_service()
        sequential.load(ITEMS)
        expected = sequential.commit("loaded")

        service = make_service()
        with ServiceExecutor(service) as executor:
            routed = executor.load(ITEMS)
        actual = service.commit("loaded")
        assert routed == len(ITEMS)
        assert actual.digest == expected.digest

    def test_executor_load_concurrent_with_readers(self):
        service = make_service()
        service.load({b"existing%d" % i: b"v" for i in range(100)})
        errors = []

        def reader():
            try:
                for _ in range(300):
                    service.get(b"existing50")
                    service.get(b"key00123")
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=reader) for _ in range(3)]
        for thread in threads:
            thread.start()
        with ServiceExecutor(service) as executor:
            executor.load(ITEMS)
        for thread in threads:
            thread.join()
        assert not errors
        assert service.get(b"key00123") == b"value00123"
        assert service.get(b"existing50") == b"v"


class TestPutManyGrouping:
    def test_put_many_groups_per_shard_and_flushes_once(self):
        # Threshold smaller than the batch: the seed implementation would
        # flush mid-iteration, possibly several times per shard.
        service = make_service(batch_size=100)
        service.put_many(ITEMS)
        metrics = service.metrics()
        assert metrics.puts == len(ITEMS)
        # At most one flush per shard for the whole call.
        assert all(shard.flushes <= 1 for shard in metrics.shards)
        service.flush()
        assert service.record_count() == len(ITEMS)

    def test_put_many_matches_sequential_puts(self):
        a = make_service()
        a.put_many(ITEMS)
        expected = a.commit("x")
        b = make_service()
        for key, value in ITEMS.items():
            b.put(key, value)
        assert b.commit("x").digest == expected.digest

    def test_put_many_preserves_order_within_a_shard(self):
        service = make_service()
        service.put_many([(b"k", b"first"), (b"k", b"second"), (b"k", b"last")])
        assert service.get(b"k") == b"last"
        assert service.metrics().coalesced_ops >= 2

    def test_put_many_counts_once_under_the_counter_lock(self):
        service = make_service()
        service.put_many(list(ITEMS.items())[:10])
        assert service.metrics().puts == 10

    def test_empty_put_many(self):
        service = make_service()
        service.put_many({})
        service.put_many([])
        assert service.metrics().puts == 0


class TestDurableLoad:
    def test_loaded_commit_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "svc")
        service = VersionedKVService(POSTree, num_shards=2, directory=directory)
        service.load(ITEMS)
        committed = service.commit("bulk load")
        service.close()

        recovered = VersionedKVService(POSTree, num_shards=2, directory=directory)
        assert recovered.commits[-1].digest == committed.digest
        assert recovered.get(b"key01999") == b"value01999"
        recovered.close()
