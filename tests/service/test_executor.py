"""Multi-threaded stress tests for the concurrent service execution engine.

These tests exercise the concurrency contract documented in
``docs/ARCHITECTURE.md`` ("The concurrency model"): no lost updates under
concurrent writers, read-your-writes visibility while flushes race,
atomic cross-shard commit cuts, stable version history, and fail-fast
error propagation with shard context (never a partial result).

They are intentionally schedule-sensitive — the CI stress job replays
them many times (``scripts/run_stress.py``) so rare interleavings get a
chance to bite before merge.
"""

import functools
import threading

import pytest

from tests.conftest import SIRI_INDEXES, build_index
from repro.core.errors import ReproError
from repro.indexes import POSTree
from repro.service import ServiceExecutor, ShardExecutionError, VersionedKVService
from repro.service.sharding import route_key
from repro.storage.memory import InMemoryNodeStore

THREADS = 4


def make_service(batch_size=16, num_shards=4, index_class=POSTree, **kwargs):
    factory = functools.partial(build_index, index_class)
    return VersionedKVService(factory, num_shards=num_shards,
                              batch_size=batch_size, **kwargs)


def run_threads(targets):
    """Start one thread per target behind a barrier; join; re-raise failures."""
    barrier = threading.Barrier(len(targets))
    failures = []
    lock = threading.Lock()

    def wrap(fn):
        try:
            barrier.wait()
            fn()
        except BaseException as exc:  # surfaced after join
            with lock:
                failures.append(exc)

    threads = [threading.Thread(target=wrap, args=(fn,)) for fn in targets]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if failures:
        raise failures[0]


# -- no lost updates ---------------------------------------------------------

def test_concurrent_writers_disjoint_key_sets():
    """T writers on disjoint key ranges: every single write must survive."""
    service = make_service()
    keys_per_thread = 150

    def writer(thread_id):
        for i in range(keys_per_thread):
            service.put(f"t{thread_id}:k{i:04d}", f"value-{thread_id}-{i}")

    run_threads([functools.partial(writer, t) for t in range(THREADS)])
    service.flush()
    assert service.record_count() == THREADS * keys_per_thread
    for thread_id in range(THREADS):
        for i in range(0, keys_per_thread, 17):
            assert service.get(f"t{thread_id}:k{i:04d}") == f"value-{thread_id}-{i}".encode()
    metrics = service.metrics()
    assert metrics.puts == THREADS * keys_per_thread


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda cls: cls.name)
def test_concurrent_writers_overlapping_keys(index_class):
    """T writers updating the same keys: the winner is always a real write."""
    service = make_service(index_class=index_class)
    shared_keys = [f"hot:{i:03d}" for i in range(60)]

    def writer(thread_id):
        for key in shared_keys:
            service.put(key, f"{key}={thread_id}")

    run_threads([functools.partial(writer, t) for t in range(THREADS)])
    service.flush()
    assert service.record_count() == len(shared_keys)
    for key in shared_keys:
        value = service.get(key)
        assert value in {f"{key}={t}".encode() for t in range(THREADS)}, value


# -- reads racing flushes ----------------------------------------------------

def test_reads_during_flush_never_observe_gaps():
    """Readers racing a constantly-flushing writer see old or new — never absent.

    ``batch_size=4`` makes the writer flush every few puts, so readers
    hammer exactly the window where operations move from the write buffer
    into the shard head.  A key that exists must never read as missing,
    and its value must always be one the writer actually wrote.
    """
    service = make_service(batch_size=4)
    keys = [f"r:{i:02d}" for i in range(24)]
    rounds = 25
    for key in keys:
        service.put(key, f"{key}#0")
    service.flush()
    stop = threading.Event()

    def writer():
        for round_number in range(1, rounds + 1):
            for key in keys:
                service.put(key, f"{key}#{round_number}")
        stop.set()

    def reader():
        valid_suffixes = {f"#{r}".encode() for r in range(rounds + 1)}
        while not stop.is_set():
            for key in keys:
                value = service.get(key)
                assert value is not None, f"{key} transiently missing during flush"
                prefix, _, suffix = value.partition(b"#")
                assert prefix == key.encode() and b"#" + suffix in valid_suffixes, value

    run_threads([writer] + [reader] * (THREADS - 1))
    for key in keys:
        assert service.get(key) == f"{key}#{rounds}".encode()


# -- cross-shard commit linearization ----------------------------------------

def _keys_on_distinct_shards(num_shards=4):
    """Two keys that hash-route to different shards (found deterministically)."""
    first = "pair:a"
    for i in range(1000):
        candidate = f"pair:b{i}"
        if route_key(candidate.encode(), num_shards) != route_key(first.encode(), num_shards):
            return first, candidate
    raise AssertionError("could not find keys on distinct shards")


def test_cross_shard_commit_cuts_are_atomic():
    """A commit racing a writer never captures a half-applied multi-key update.

    The writer bumps ``key_a`` then ``key_b`` to the same sequence number;
    a concurrent committer snapshots repeatedly.  In every committed
    version, ``key_a`` may be at most one step ahead of ``key_b`` (the cut
    fell between the two puts) and never behind it — anything else means
    the cut saw shard B's future or lost shard A's past.
    """
    service = make_service(batch_size=4)
    key_a, key_b = _keys_on_distinct_shards()
    increments = 120
    commit_count = 30
    service.put(key_a, "0")
    service.put(key_b, "0")
    service.commit("seed")

    def writer():
        for i in range(1, increments + 1):
            service.put(key_a, str(i))
            service.put(key_b, str(i))

    def committer():
        for _ in range(commit_count):
            service.commit("cut")

    run_threads([writer, committer])
    commits = service.commits
    assert [commit.version for commit in commits] == list(range(len(commits)))
    for commit in commits:
        value_a = int(service.get(key_a, version=commit))
        value_b = int(service.get(key_b, version=commit))
        assert 0 <= value_a - value_b <= 1, (
            f"commit {commit.version} tore the update: {key_a}={value_a}, {key_b}={value_b}"
        )
    # Committed versions are immutable: re-reading yields identical values.
    for commit in commits[:: max(1, len(commits) // 5)]:
        assert service.get(key_a, version=commit) == service.get(key_a, version=commit)


def test_concurrent_commits_stay_dense_and_stable():
    """Commits from many threads interleaved with writers keep dense versions."""
    service = make_service(batch_size=8)

    def writer(thread_id):
        for i in range(80):
            service.put(f"w{thread_id}:{i:03d}", f"{thread_id}.{i}")

    def committer():
        for _ in range(10):
            service.commit("concurrent")

    run_threads([functools.partial(writer, t) for t in range(2)] + [committer] * 2)
    commits = service.commits
    assert [commit.version for commit in commits] == list(range(len(commits)))
    # Each commit's recorded roots resolve to a readable snapshot whose
    # content re-reads identically (copy-on-write keeps versions stable).
    for commit in commits:
        snapshot = service.snapshot(commit)
        assert snapshot.to_dict() == service.snapshot(commit.version).to_dict()


def test_version_history_is_stable_under_concurrency():
    """Shard histories stay append-only and consistent with flush counts."""
    service = make_service(batch_size=8)

    def writer(thread_id):
        for i in range(100):
            service.put(f"h{thread_id}:{i:03d}", str(i))

    run_threads([functools.partial(writer, t) for t in range(THREADS)])
    service.flush()
    histories = service.shard_histories()
    metrics = service.metrics()
    for shard_metrics, history in zip(metrics.shards, histories):
        # One entry per flush plus the initial empty root.
        assert len(history) == shard_metrics.flushes + 1
        assert history[0] is None
    # The recorded heads are exactly the last history entries.
    snapshot = service.snapshot()
    assert tuple(history[-1] for history in histories) == snapshot.roots


# -- executor fan-out semantics ----------------------------------------------

def test_executor_get_many_preserves_input_order_under_writes():
    service = make_service()
    items = {f"e:{i:04d}".encode(): f"v{i}".encode() for i in range(300)}
    with ServiceExecutor(service) as executor:
        executor.put_many(items)
        executor.commit("load")

        def writer():
            for i in range(200):
                service.put(f"e:{i:04d}", f"updated-{i}")

        results = {}

        def reader():
            keys = list(items)
            results["values"] = executor.get_many(keys)

        run_threads([writer, reader])
        values = results["values"]
        assert len(values) == len(items)
        for key, value in zip(items, values):
            index = int(key.decode().split(":")[1])
            assert value in (items[key], f"updated-{index}".encode())


def test_executor_scan_and_diff_match_sequential_service():
    service = make_service()
    with ServiceExecutor(service) as executor:
        executor.put_many({f"s:{i:03d}": f"v{i}" for i in range(120)})
        first = executor.commit("first")
        executor.put_many({f"s:{i:03d}": f"w{i}" for i in range(0, 120, 3)})
        executor.remove_many([f"s:{i:03d}" for i in range(1, 120, 40)])
        second = executor.commit("second")

        assert executor.scan(version=second) == list(service.items(second))
        parallel_diff = executor.diff(first, second)
        sequential_diff = service.diff(first, second)
        assert [(e.key, e.left, e.right) for e in parallel_diff] == \
               [(e.key, e.left, e.right) for e in sequential_diff]
        assert parallel_diff.comparisons == sequential_diff.comparisons


def test_executor_commit_equivalent_to_service_commit():
    service = make_service()
    with ServiceExecutor(service) as executor:
        executor.put_many({f"c:{i:03d}": str(i) for i in range(100)})
        commit = executor.commit("via executor")
    twin = make_service()
    for i in range(100):
        twin.put(f"c:{i:03d}", str(i))
    assert twin.commit("sequential").digest == commit.digest


# -- fail-fast error handling ------------------------------------------------

class _InjectableStore(InMemoryNodeStore):
    """A store whose reads/writes can be armed to fail on demand."""

    def __init__(self):
        super().__init__()
        self.fail_reads = False
        self.fail_writes = False

    def get_bytes(self, digest):
        if self.fail_reads:
            raise OSError("injected read failure")
        return super().get_bytes(digest)

    def put_bytes(self, digest, data):
        if self.fail_writes:
            raise OSError("injected write failure")
        return super().put_bytes(digest, data)


def make_injectable_service(batch_size=16):
    stores = []

    def store_factory():
        store = _InjectableStore()
        stores.append(store)
        return store

    factory = functools.partial(build_index, POSTree)
    service = VersionedKVService(factory, num_shards=4, batch_size=batch_size,
                                 store_factory=store_factory, cache_bytes=0)
    return service, stores


def test_failed_shard_read_raises_with_shard_context():
    """One failing shard must surface as ShardExecutionError, not partial data."""
    service, stores = make_injectable_service()
    keys = [f"f:{i:04d}" for i in range(200)]
    with ServiceExecutor(service) as executor:
        executor.put_many({key: f"v{i}" for i, key in enumerate(keys)})
        executor.commit("load")
        failing_shard = 2
        stores[failing_shard].fail_reads = True
        with pytest.raises(ShardExecutionError) as excinfo:
            executor.get_many(keys)
        assert excinfo.value.shard_id == failing_shard
        assert excinfo.value.operation == "get_many"
        assert isinstance(excinfo.value.__cause__, OSError)
        assert isinstance(excinfo.value, ReproError)
        # The failure is transient infrastructure, not state corruption:
        # disarm and the exact same request succeeds completely.
        stores[failing_shard].fail_reads = False
        values = executor.get_many(keys)
        assert values == [f"v{i}".encode() for i in range(len(keys))]


def test_failed_shard_flush_aborts_commit():
    service, stores = make_injectable_service(batch_size=1000)
    with ServiceExecutor(service) as executor:
        executor.put_many({f"g:{i:04d}": str(i) for i in range(200)})
        stores[1].fail_writes = True
        with pytest.raises(ShardExecutionError) as excinfo:
            executor.commit("doomed")
        assert excinfo.value.shard_id == 1
        assert excinfo.value.operation == "flush"
        # No commit record may exist for the failed attempt.
        assert service.commits == []


def test_single_shard_failure_keeps_shard_context():
    """The inline single-task fast path reports shard context identically."""
    service, stores = make_injectable_service()
    service.put("solo", "value")
    service.flush()
    shard_id = service.shard_of("solo")
    stores[shard_id].fail_reads = True
    with ServiceExecutor(service) as executor:
        with pytest.raises(ShardExecutionError) as excinfo:
            executor.get_many([b"solo"])
    assert excinfo.value.shard_id == shard_id


# ---------------------------------------------------------------------------
# Lifecycle: idempotent close, closed-executor guard, submit
# ---------------------------------------------------------------------------

def test_close_is_idempotent_across_owners():
    """The server's drain path and the creator may both close the executor."""
    service = make_service()
    executor = ServiceExecutor(service)
    assert not executor.is_closed
    executor.close()
    assert executor.is_closed
    executor.close()  # second close is a no-op, not an error
    executor.close()


def test_context_manager_then_explicit_close():
    service = make_service()
    with ServiceExecutor(service) as executor:
        executor.put_many({b"a": b"1"})
    executor.close()  # after __exit__ already closed it
    assert executor.is_closed


def test_closed_executor_rejects_single_shard_operations():
    """Regression: the inline single-task path used to outlive close().

    A single-shard get_many skips the pool entirely, so without an
    explicit guard it kept working after shutdown while multi-shard
    calls raised — a lifecycle hole the wire server's drain path would
    have hidden underneath.
    """
    service = make_service()
    service.put("solo", "v")
    service.flush()
    executor = ServiceExecutor(service)
    executor.close()
    with pytest.raises(RuntimeError):
        executor.get_many([b"solo"])  # one shard -> would have run inline
    with pytest.raises(RuntimeError):
        executor.put_many({b"a": b"1", b"b": b"2", b"c": b"3", b"d": b"4"})
    with pytest.raises(RuntimeError):
        executor.flush()


def test_submit_runs_on_pool_and_respects_close():
    service = make_service()
    executor = ServiceExecutor(service)
    future = executor.submit(lambda x: x * 2, 21)
    assert future.result(timeout=10) == 42
    executor.close()
    with pytest.raises(RuntimeError):
        executor.submit(lambda: None)


def test_close_fails_queued_fanouts_with_descriptive_error():
    """Regression: close() left queued futures unresolved when it raced a
    fan-out.

    With a one-worker pool, a multi-shard fan-out has tasks *queued*
    behind the running one.  ``close()`` used to shut the pool down
    without cancelling that queue: ``shutdown(wait=True)`` then ran the
    stragglers anyway — or, once pools started dropping cancelled work,
    the fan-out blocked on futures nothing would ever complete, and a
    future that *was* cancelled surfaced as a bare ``CancelledError``
    with no shard context.  Now the queued tasks are cancelled and the
    fan-out fails fast with a :class:`ShardExecutionError` naming the
    shard and the reason.
    """
    import time

    service = make_service(num_shards=4)
    executor = ServiceExecutor(service, max_workers=1)
    gate = threading.Event()
    entered = threading.Event()

    def blocker():
        entered.set()
        gate.wait(timeout=30)
        return "ran"

    outcome = {}

    def fan_out():
        try:
            outcome["result"] = executor._run_shard_tasks(
                "regression", [(0, blocker)] + [(i, lambda: "ran") for i in (1, 2, 3)])
        except BaseException as exc:  # captured for the main thread
            outcome["error"] = exc

    fan_thread = threading.Thread(target=fan_out)
    fan_thread.start()
    try:
        assert entered.wait(timeout=10), "first task never started"
        # Tasks 1-3 are now queued behind the blocker on the 1-worker pool.
        deadline = time.monotonic() + 10
        while executor._pool._work_queue.qsize() < 1:
            assert time.monotonic() < deadline, "tasks never queued"
            time.sleep(0.005)
        closer = threading.Thread(target=executor.close)
        closer.start()
        time.sleep(0.05)  # let close() cancel the queued futures
    finally:
        gate.set()
    fan_thread.join(timeout=30)
    closer.join(timeout=30)
    assert not fan_thread.is_alive(), "fan-out never resolved after close()"
    error = outcome.get("error")
    assert isinstance(error, ShardExecutionError), outcome
    assert "executor closed before the shard task could run" in str(error.__cause__)
    assert error.operation == "regression"
