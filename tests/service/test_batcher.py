"""Write-coalescing batcher semantics."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.service.batcher import ShardWriteBatcher


def test_buffer_until_threshold():
    batcher = ShardWriteBatcher(2, flush_threshold=3)
    assert batcher.buffer_put(0, b"a", b"1") is False
    assert batcher.buffer_put(0, b"b", b"2") is False
    assert batcher.buffer_put(0, b"c", b"3") is True      # threshold reached
    # Other shards are independent.
    assert batcher.buffer_put(1, b"d", b"4") is False
    assert batcher.pending_count(0) == 3
    assert batcher.pending_count(1) == 1
    assert batcher.total_pending() == 4


def test_put_coalesces_same_key():
    batcher = ShardWriteBatcher(1, flush_threshold=100)
    batcher.buffer_put(0, b"k", b"v1")
    batcher.buffer_put(0, b"k", b"v2")
    batcher.buffer_put(0, b"k", b"v3")
    assert batcher.pending_count(0) == 1                  # one distinct op
    assert batcher.buffered_ops == 3
    assert batcher.coalesced_ops == 2
    puts, removes = batcher.take(0)
    assert puts == {b"k": b"v3"}                          # last writer wins
    assert removes == set()


def test_remove_supersedes_put_and_vice_versa():
    batcher = ShardWriteBatcher(1, flush_threshold=100)
    batcher.buffer_put(0, b"k", b"v")
    batcher.buffer_remove(0, b"k")
    found, value = batcher.pending_value(0, b"k")
    assert (found, value) == (True, None)                 # pending delete
    batcher.buffer_put(0, b"k", b"v2")
    found, value = batcher.pending_value(0, b"k")
    assert (found, value) == (True, b"v2")
    puts, removes = batcher.take(0)
    assert puts == {b"k": b"v2"}
    assert removes == set()
    assert batcher.coalesced_ops == 2


def test_pending_value_miss():
    batcher = ShardWriteBatcher(1, flush_threshold=10)
    assert batcher.pending_value(0, b"nope") == (False, None)


def test_take_drains_only_one_shard():
    batcher = ShardWriteBatcher(2, flush_threshold=10)
    batcher.buffer_put(0, b"a", b"1")
    batcher.buffer_remove(1, b"b")
    puts, removes = batcher.take(0)
    assert puts == {b"a": b"1"} and removes == set()
    assert batcher.pending_count(0) == 0
    assert batcher.pending_count(1) == 1
    puts, removes = batcher.take(1)
    assert puts == {} and removes == {b"b"}


def test_clear():
    batcher = ShardWriteBatcher(2, flush_threshold=10)
    batcher.buffer_put(0, b"a", b"1")
    batcher.buffer_remove(1, b"b")
    batcher.clear()
    assert batcher.total_pending() == 0


def test_invalid_parameters_rejected():
    with pytest.raises(InvalidParameterError):
        ShardWriteBatcher(0)
    with pytest.raises(InvalidParameterError):
        ShardWriteBatcher(2, flush_threshold=0)
