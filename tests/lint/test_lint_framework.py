"""Framework mechanics: suppressions, baseline, registry, CLI plumbing."""

import json
import os

import pytest

from scripts.lint import Project, all_rules, main, run_rules
from scripts.lint.framework import Finding, load_baseline, save_baseline
from scripts.lint.rules.defaults import MutableDefaultRule

MODULE_DOC = '"""fixture."""\n'


def _project(sources):
    return Project.from_sources(sources)


def _run(sources, rules=None, baseline=()):
    return run_rules(_project(sources), rules=rules, baseline=baseline)


def _bad_default(path="src/repro/service/fixture.py"):
    return {path: MODULE_DOC + "def f(x=[]):\n    return x\n"}


class TestSuppressions:
    def test_same_line_suppression_with_reason_is_honored(self):
        sources = {
            "src/repro/service/fixture.py": MODULE_DOC +
            "def f(x=[]):  # repro-lint: disable=L7-mutable-default — fixture\n"
            "    return x\n"}
        result = _run(sources, rules=[MutableDefaultRule()])
        assert result.findings == []
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "L7-mutable-default"

    def test_comment_line_above_covers_next_line(self):
        sources = {
            "src/repro/service/fixture.py": MODULE_DOC +
            "# repro-lint: disable=L7-mutable-default — fixture reason\n"
            "def f(x=[]):\n"
            "    return x\n"}
        result = _run(sources, rules=[MutableDefaultRule()])
        assert result.findings == []
        assert len(result.suppressed) == 1

    def test_suppression_without_reason_is_itself_a_finding(self):
        sources = {
            "src/repro/service/fixture.py": MODULE_DOC +
            "def f(x=[]):  # repro-lint: disable=L7-mutable-default\n"
            "    return x\n"}
        result = _run(sources, rules=[MutableDefaultRule()])
        assert [f.rule for f in result.findings] == ["E1-suppression"]
        assert "no reason" in result.findings[0].message

    def test_suppression_for_other_rule_does_not_cover(self):
        sources = {
            "src/repro/service/fixture.py": MODULE_DOC +
            "def f(x=[]):  # repro-lint: disable=L5-exception-policy — nope\n"
            "    return x\n"}
        result = _run(sources, rules=[MutableDefaultRule()])
        rules = sorted(f.rule for f in result.findings)
        # The L7 finding survives and the unmatched suppression is flagged.
        assert rules == ["E1-suppression", "L7-mutable-default"]

    def test_unused_suppression_is_reported(self):
        sources = {
            "src/repro/service/fixture.py": MODULE_DOC +
            "def f(x=1):  # repro-lint: disable=L7-mutable-default — stale\n"
            "    return x\n"}
        result = _run(sources, rules=[MutableDefaultRule()])
        assert [f.rule for f in result.findings] == ["E1-suppression"]
        assert "matches no finding" in result.findings[0].message


class TestBaseline:
    def test_baselined_finding_passes_the_gate(self):
        sources = _bad_default()
        raw = _run(sources, rules=[MutableDefaultRule()])
        assert len(raw.findings) == 1
        baseline = [raw.findings[0].key()]
        result = _run(sources, rules=[MutableDefaultRule()], baseline=baseline)
        assert result.ok
        assert len(result.baselined) == 1

    def test_stale_baseline_entry_fails_the_gate(self):
        clean = {"src/repro/service/fixture.py": MODULE_DOC + "X = 1\n"}
        stale = [{"rule": "L7-mutable-default",
                  "path": "src/repro/service/fixture.py",
                  "line": 2, "message": "gone"}]
        result = _run(clean, rules=[MutableDefaultRule()], baseline=stale)
        assert not result.ok
        assert result.stale_baseline == stale

    def test_save_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "baseline.json")
        findings = [Finding(path="src/x.py", line=3,
                            rule="L7-mutable-default", message="m")]
        save_baseline(path, findings)
        assert load_baseline(path) == [findings[0].key()]

    def test_missing_baseline_is_empty(self, tmp_path):
        assert load_baseline(str(tmp_path / "nope.json")) == []


class TestRegistry:
    def test_all_documented_rules_are_registered(self):
        ids = {rule.rule_id for rule in all_rules()}
        expected = {
            "L1-layering", "L1-cycles", "L2-determinism",
            "L3-async-blocking", "L4-pickle-boundary",
            "L5-exception-policy", "L6-durability-order",
            "L7-mutable-default", "N1-test-basename", "N2-all-exports",
        }
        assert expected <= ids

    def test_every_rule_has_title_and_rationale(self):
        for rule in all_rules():
            assert rule.title, rule.rule_id
            assert rule.rationale.strip(), rule.rule_id


class TestParseErrors:
    def test_unparseable_file_is_a_finding(self):
        sources = {"src/repro/service/fixture.py": "def broken(:\n"}
        result = _run(sources, rules=[])
        assert [f.rule for f in result.findings] == ["E0-parse"]


class TestCli:
    def _write_tree(self, root, source):
        pkg = root / "src" / "repro" / "service"
        pkg.mkdir(parents=True)
        (pkg / "fixture.py").write_text(source)

    def test_cli_gate_update_baseline_and_pass(self, tmp_path, capsys):
        self._write_tree(tmp_path, MODULE_DOC + "def f(x=[]):\n    return x\n")
        baseline = str(tmp_path / "baseline.json")
        argv = ["--root", str(tmp_path), "--baseline", baseline]
        assert main(argv) == 1
        assert main(argv + ["--update-baseline"]) == 0
        assert main(argv) == 0
        entries = load_baseline(baseline)
        assert [e["rule"] for e in entries] == ["L7-mutable-default"]
        capsys.readouterr()

    def test_cli_json_output(self, tmp_path, capsys):
        self._write_tree(tmp_path, MODULE_DOC + "def f(x=[]):\n    return x\n")
        argv = ["--root", str(tmp_path),
                "--baseline", str(tmp_path / "b.json"), "--json"]
        assert main(argv) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["findings"][0]["rule"] == "L7-mutable-default"

    def test_cli_explain_and_list_rules(self, capsys):
        assert main(["--explain", "L2-determinism"]) == 0
        out = capsys.readouterr().out
        assert "byte-identical" in out
        assert "disable=L2-determinism" in out
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "L6-durability-order" in out

    def test_cli_explain_unknown_rule(self, capsys):
        assert main(["--explain", "L99-nope"]) == 2
        capsys.readouterr()
