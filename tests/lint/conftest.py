"""Make ``scripts.lint`` importable for the lint test suite.

The library tests run with ``PYTHONPATH=src``; the lint framework lives
under ``scripts/`` at the repository root, so the root goes on sys.path
here.
"""

import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
if REPO_ROOT not in sys.path:
    sys.path.insert(0, REPO_ROOT)
