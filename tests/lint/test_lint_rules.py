"""Per-rule fixtures: each rule has snippets that must and must not fire.

Includes the three deliberately seeded violations named by the issue's
acceptance criteria: an upward import (L1), set iteration feeding a
digest (L2), and a lock crossing the process pipe (L4).
"""

import pytest

from scripts.lint import Project, run_rules
from scripts.lint.rules.async_discipline import AsyncBlockingRule
from scripts.lint.rules.defaults import MutableDefaultRule
from scripts.lint.rules.determinism import DeterminismRule
from scripts.lint.rules.durability import DurabilityOrderRule
from scripts.lint.rules.exceptions import ExceptionPolicyRule
from scripts.lint.rules.layering import ImportCycleRule, ImportLayeringRule
from scripts.lint.rules.naming import AllConsistencyRule, UniqueTestBasenameRule
from scripts.lint.rules.pickle_boundary import PickleBoundaryRule

DOC = '"""fixture."""\n'


def _findings(sources, rule):
    result = run_rules(Project.from_sources(sources), rules=[rule])
    return result.findings


class TestL1Layering:
    def test_seeded_upward_import_is_caught(self):
        # The acceptance-criteria seed: a bottom-layer hashing module
        # eagerly importing the service layer above it.
        sources = {
            "src/repro/hashing/digest.py": DOC +
            "from repro.service.service import VersionedKVService\n",
            "src/repro/service/service.py": DOC + "VersionedKVService = 1\n",
        }
        findings = _findings(sources, ImportLayeringRule())
        assert [f.rule for f in findings] == ["L1-layering"]
        assert "upward import" in findings[0].message
        assert findings[0].path == "src/repro/hashing/digest.py"

    def test_downward_import_does_not_fire(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "from repro.hashing.digest import Digest\n",
            "src/repro/hashing/digest.py": DOC + "Digest = 1\n",
        }
        assert _findings(sources, ImportLayeringRule()) == []

    def test_lazy_upward_import_is_exempt(self):
        sources = {
            "src/repro/api/repository.py": DOC +
            "def sync(self):\n"
            "    from repro.sync.session import sync_service\n"
            "    return sync_service\n",
            "src/repro/sync/session.py": DOC + "sync_service = 1\n",
        }
        assert _findings(sources, ImportLayeringRule()) == []

    def test_type_checking_import_is_exempt(self):
        sources = {
            "src/repro/core/interfaces.py": DOC +
            "from typing import TYPE_CHECKING\n"
            "if TYPE_CHECKING:\n"
            "    from repro.storage.store import NodeStore\n",
            "src/repro/storage/store.py": DOC + "NodeStore = 1\n",
        }
        assert _findings(sources, ImportLayeringRule()) == []

    def test_eager_cycle_is_caught(self):
        sources = {
            "src/repro/api/repository.py": DOC +
            "from repro.api.branch import Branch\n",
            "src/repro/api/branch.py": DOC +
            "from repro.api.repository import Repository\n",
        }
        findings = _findings(sources, ImportCycleRule())
        assert findings
        assert all(f.rule == "L1-cycles" for f in findings)
        assert "cycle" in findings[0].message

    def test_acyclic_graph_does_not_fire(self):
        sources = {
            "src/repro/api/repository.py": DOC +
            "from repro.api.branch import Branch\n",
            "src/repro/api/branch.py": DOC + "Branch = 1\n",
        }
        assert _findings(sources, ImportCycleRule()) == []

    def test_from_package_import_submodule_binds_the_submodule(self):
        # `from repro.server import protocol` inside the package is an
        # edge to repro.server.protocol, not a package self-cycle.
        sources = {
            "src/repro/server/__init__.py": DOC +
            "from repro.server.client import RemoteRepository\n",
            "src/repro/server/client.py": DOC +
            "from repro.server import protocol\n"
            "RemoteRepository = 1\n",
            "src/repro/server/protocol.py": DOC + "Op = 1\n",
        }
        assert _findings(sources, ImportCycleRule()) == []


class TestL2Determinism:
    def test_seeded_set_iteration_into_digest_is_caught(self):
        # The acceptance-criteria seed: hashing node bytes assembled by
        # iterating a set.
        sources = {
            "src/repro/hashing/digest.py": DOC +
            "def digest_of(keys):\n"
            "    payload = b''\n"
            "    for key in set(keys):\n"
            "        payload += key\n"
            "    return payload\n"}
        findings = _findings(sources, DeterminismRule())
        assert [f.rule for f in findings] == ["L2-determinism"]
        assert "set" in findings[0].message

    def test_sorted_set_iteration_does_not_fire(self):
        sources = {
            "src/repro/hashing/digest.py": DOC +
            "def digest_of(keys):\n"
            "    payload = b''\n"
            "    for key in sorted(set(keys)):\n"
            "        payload += key\n"
            "    return payload\n"}
        assert _findings(sources, DeterminismRule()) == []

    def test_wall_clock_in_index_module_is_caught(self):
        sources = {
            "src/repro/indexes/mpt.py": DOC +
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"}
        findings = _findings(sources, DeterminismRule())
        assert [f.rule for f in findings] == ["L2-determinism"]

    def test_hash_inside_hash_dunder_is_exempt(self):
        sources = {
            "src/repro/hashing/digest.py": DOC +
            "class Digest:\n"
            "    def __hash__(self):\n"
            "        return hash(self._raw)\n"}
        assert _findings(sources, DeterminismRule()) == []

    def test_outside_scope_is_exempt(self):
        sources = {
            "src/repro/workloads/ycsb.py": DOC +
            "import time\n"
            "def stamp():\n"
            "    return time.time()\n"}
        assert _findings(sources, DeterminismRule()) == []

    def test_set_comprehension_feeding_join_is_caught(self):
        sources = {
            "src/repro/encoding/binary.py": DOC +
            "def pack(keys):\n"
            "    return b''.join({k for k in keys})\n"}
        findings = _findings(sources, DeterminismRule())
        assert findings and findings[0].rule == "L2-determinism"


class TestL3AsyncBlocking:
    def test_time_sleep_in_async_def_is_caught(self):
        sources = {
            "src/repro/server/server.py": DOC +
            "import time\n"
            "async def worker():\n"
            "    time.sleep(1)\n"}
        findings = _findings(sources, AsyncBlockingRule())
        assert [f.rule for f in findings] == ["L3-async-blocking"]
        assert "time.sleep" in findings[0].message

    def test_asyncio_sleep_does_not_fire(self):
        sources = {
            "src/repro/server/server.py": DOC +
            "import asyncio\n"
            "async def worker():\n"
            "    await asyncio.sleep(1)\n"}
        assert _findings(sources, AsyncBlockingRule()) == []

    def test_blocking_call_in_nested_sync_def_is_exempt(self):
        # The nested def runs on the dispatch pool via run_in_executor.
        sources = {
            "src/repro/server/server.py": DOC +
            "import time\n"
            "async def worker(loop):\n"
            "    def blocking():\n"
            "        time.sleep(1)\n"
            "    await loop.run_in_executor(None, blocking)\n"}
        assert _findings(sources, AsyncBlockingRule()) == []

    def test_future_result_in_async_def_is_caught(self):
        sources = {
            "src/repro/server/server.py": DOC +
            "async def worker(fut):\n"
            "    return fut.result()\n"}
        findings = _findings(sources, AsyncBlockingRule())
        assert [f.rule for f in findings] == ["L3-async-blocking"]

    def test_sync_def_is_exempt(self):
        sources = {
            "src/repro/server/server.py": DOC +
            "import time\n"
            "def blocking():\n"
            "    time.sleep(1)\n"}
        assert _findings(sources, AsyncBlockingRule()) == []


class TestL4PickleBoundary:
    def test_seeded_lock_crossing_the_pipe_is_caught(self):
        # The acceptance-criteria seed: a lock shipped through the
        # process-shard command pipe.
        sources = {
            "src/repro/service/process.py": DOC +
            "import threading\n"
            "def bad(conn):\n"
            "    conn.send(('apply_ops', (threading.Lock(),)))\n"}
        findings = _findings(sources, PickleBoundaryRule())
        assert [f.rule for f in findings] == ["L4-pickle-boundary"]
        assert "lock" in findings[0].message.lower()

    def test_lambda_crossing_the_pipe_is_caught(self):
        sources = {
            "src/repro/service/process.py": DOC +
            "def bad(conn):\n"
            "    conn.send(('apply_ops', (lambda k: k,)))\n"}
        findings = _findings(sources, PickleBoundaryRule())
        assert [f.rule for f in findings] == ["L4-pickle-boundary"]
        assert "lambda" in findings[0].message

    def test_closure_crossing_the_pipe_is_caught(self):
        sources = {
            "src/repro/service/process.py": DOC +
            "def bad(conn):\n"
            "    def extractor(value):\n"
            "        return [value]\n"
            "    conn.send(('register_index', (extractor,)))\n"}
        findings = _findings(sources, PickleBoundaryRule())
        assert [f.rule for f in findings] == ["L4-pickle-boundary"]
        assert "closure" in findings[0].message

    def test_plain_values_do_not_fire(self):
        sources = {
            "src/repro/service/process.py": DOC +
            "def ok(conn, method, args, result):\n"
            "    conn.send((method, args))\n"
            "    conn.send(('ok', result))\n"}
        assert _findings(sources, PickleBoundaryRule()) == []

    def test_other_files_are_out_of_scope(self):
        sources = {
            "src/repro/server/client.py": DOC +
            "def ok(sock):\n"
            "    sock.send(lambda: 1)\n"}
        assert _findings(sources, PickleBoundaryRule()) == []


class TestL5ExceptionPolicy:
    def test_bare_except_is_caught(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 2\n"}
        findings = _findings(sources, ExceptionPolicyRule())
        assert [f.rule for f in findings] == ["L5-exception-policy"]
        assert "bare" in findings[0].message

    def test_swallowing_broad_handler_is_caught(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception:\n"
            "        return 2\n"}
        findings = _findings(sources, ExceptionPolicyRule())
        assert [f.rule for f in findings] == ["L5-exception-policy"]

    def test_reraising_broad_handler_does_not_fire(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "from repro.core.errors import ShardExecutionError\n"
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except Exception as exc:\n"
            "        raise ShardExecutionError(0, 'f', exc) from exc\n"}
        assert _findings(sources, ExceptionPolicyRule()) == []

    def test_narrow_handler_does_not_fire(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "def f(d):\n"
            "    try:\n"
            "        return d['k']\n"
            "    except KeyError:\n"
            "        return None\n"}
        assert _findings(sources, ExceptionPolicyRule()) == []

    def test_tests_are_out_of_scope(self):
        sources = {
            "tests/service/test_fixture_scope.py": DOC +
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except:\n"
            "        return 2\n"}
        assert _findings(sources, ExceptionPolicyRule()) == []


class TestL6Durability:
    def test_rename_without_fsync_is_caught(self):
        sources = {
            "src/repro/storage/segment.py": DOC +
            "import os\n"
            "def publish(tmp, final):\n"
            "    os.replace(tmp, final)\n"}
        findings = _findings(sources, DurabilityOrderRule())
        assert [f.rule for f in findings] == ["L6-durability-order"]
        assert "os.replace" in findings[0].message

    def test_rename_after_fsync_does_not_fire(self):
        sources = {
            "src/repro/storage/segment.py": DOC +
            "import os\n"
            "def publish(handle, tmp, final):\n"
            "    handle.flush()\n"
            "    os.fsync(handle.fileno())\n"
            "    os.replace(tmp, final)\n"}
        assert _findings(sources, DurabilityOrderRule()) == []

    def test_journal_append_without_fsync_is_caught(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "def append(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"}
        findings = _findings(sources, DurabilityOrderRule())
        assert [f.rule for f in findings] == ["L6-durability-order"]

    def test_journal_append_with_flush_fsync_does_not_fire(self):
        sources = {
            "src/repro/service/service.py": DOC +
            "import os\n"
            "def append(path, line):\n"
            "    with open(path, 'a') as handle:\n"
            "        handle.write(line)\n"
            "        handle.flush()\n"
            "        os.fsync(handle.fileno())\n"}
        assert _findings(sources, DurabilityOrderRule()) == []

    def test_outside_scope_is_exempt(self):
        sources = {
            "src/repro/workloads/ycsb.py": DOC +
            "import os\n"
            "def publish(tmp, final):\n"
            "    os.replace(tmp, final)\n"}
        assert _findings(sources, DurabilityOrderRule()) == []


class TestL7MutableDefaults:
    @pytest.mark.parametrize("default", ["[]", "{}", "set()", "dict()",
                                         "bytearray()"])
    def test_mutable_default_is_caught(self, default):
        sources = {
            "src/repro/api/branch.py": DOC +
            f"def f(x={default}):\n"
            "    return x\n"}
        findings = _findings(sources, MutableDefaultRule())
        assert [f.rule for f in findings] == ["L7-mutable-default"]

    def test_keyword_only_mutable_default_is_caught(self):
        sources = {
            "src/repro/api/branch.py": DOC +
            "def f(*, x=[]):\n"
            "    return x\n"}
        findings = _findings(sources, MutableDefaultRule())
        assert [f.rule for f in findings] == ["L7-mutable-default"]

    def test_immutable_defaults_do_not_fire(self):
        sources = {
            "src/repro/api/branch.py": DOC +
            "def f(a=(), b=None, c=0, d='s', e=frozenset()):\n"
            "    return a, b, c, d, e\n"}
        assert _findings(sources, MutableDefaultRule()) == []


class TestN1TestBasenames:
    def test_colliding_basenames_are_caught(self):
        sources = {
            "tests/indexes/test_differential.py": DOC,
            "tests/query/test_differential.py": DOC,
        }
        findings = _findings(sources, UniqueTestBasenameRule())
        assert len(findings) == 2
        assert all(f.rule == "N1-test-basename" for f in findings)

    def test_unique_basenames_do_not_fire(self):
        sources = {
            "tests/indexes/test_differential.py": DOC,
            "tests/query/test_query_differential.py": DOC,
        }
        assert _findings(sources, UniqueTestBasenameRule()) == []

    def test_non_test_files_are_ignored(self):
        sources = {
            "tests/indexes/conftest.py": DOC,
            "tests/query/conftest.py": DOC,
        }
        assert _findings(sources, UniqueTestBasenameRule()) == []


class TestN2AllExports:
    def test_unresolved_all_entry_is_caught(self):
        sources = {
            "src/repro/query/view.py": DOC +
            "__all__ = ['Present', 'Ghost']\n"
            "Present = 1\n"}
        findings = _findings(sources, AllConsistencyRule())
        assert [f.rule for f in findings] == ["N2-all-exports"]
        assert "Ghost" in findings[0].message

    def test_resolved_all_does_not_fire(self):
        sources = {
            "src/repro/query/view.py": DOC +
            "__all__ = ['Present', 'helper']\n"
            "Present = 1\n"
            "def helper():\n"
            "    return Present\n"}
        assert _findings(sources, AllConsistencyRule()) == []

    def test_package_without_all_is_caught(self):
        sources = {"src/repro/query/__init__.py": DOC + "X = 1\n"}
        findings = _findings(sources, AllConsistencyRule())
        assert [f.rule for f in findings] == ["N2-all-exports"]
        assert "__all__" in findings[0].message

    def test_module_getattr_counts_as_dynamic_binding(self):
        # PEP 562: repro/__init__.py serves deprecated names dynamically.
        sources = {
            "src/repro/__init__.py": DOC +
            "__all__ = ['VersionedKVService']\n"
            "def __getattr__(name):\n"
            "    raise AttributeError(name)\n"}
        assert _findings(sources, AllConsistencyRule()) == []

    def test_dynamic_all_is_skipped(self):
        sources = {
            "src/repro/query/view.py": DOC +
            "base = ['A']\n"
            "__all__ = base + ['B']\n"}
        assert _findings(sources, AllConsistencyRule()) == []
