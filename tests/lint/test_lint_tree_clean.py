"""Meta-test: the checked-in tree itself passes repro-lint.

This is the same gate CI runs via ``python scripts/check_lint.py``; having
it in the tier-1 suite means a violation introduced alongside a feature
fails the feature's own test run, not just the separate lint job.
"""

import json
import os

from scripts.lint import Project, all_rules, run_rules
from scripts.lint.framework import DEFAULT_BASELINE, load_baseline

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def test_live_tree_is_lint_clean():
    project = Project.from_tree(REPO_ROOT)
    baseline = load_baseline(os.path.join(REPO_ROOT, DEFAULT_BASELINE))
    result = run_rules(project, rules=all_rules(), baseline=baseline)
    rendered = "\n".join(f.render() for f in result.findings)
    assert result.findings == [], f"live tree has lint findings:\n{rendered}"
    assert result.stale_baseline == [], (
        f"stale baseline entries: {result.stale_baseline}")


def test_baseline_is_empty_at_merge():
    # The issue requires grandfathered findings to be burned down before
    # merge: the shipped baseline must be an empty list.
    path = os.path.join(REPO_ROOT, DEFAULT_BASELINE)
    with open(path, "r", encoding="utf-8") as handle:
        assert json.load(handle) == []


def test_every_live_suppression_carries_a_reason():
    project = Project.from_tree(REPO_ROOT)
    for source in project.files.values():
        for suppression in source.suppressions:
            assert suppression.reason, (
                f"{source.path}:{suppression.line} suppression for "
                f"{sorted(suppression.rules)} has no reason")
