"""Tests for the blockchain ledger built over SIRI indexes."""

import pytest

from repro.blockchain.ledger import BlockHeader, Ledger, TamperDetectedError
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.ethereum import EthereumDatasetGenerator
from tests.conftest import build_index


@pytest.fixture
def ledger_and_blocks(index_class):
    store = InMemoryNodeStore()
    ledger = Ledger(index_factory=lambda: build_index(index_class, store))
    generator = EthereumDatasetGenerator(blocks=4, transactions_per_block=30, seed=2)
    blocks = generator.all_blocks()
    for block in blocks:
        ledger.append_block(block.records())
    return ledger, blocks


class TestLedger:
    def test_append_creates_linked_headers(self, ledger_and_blocks):
        ledger, _ = ledger_and_blocks
        assert len(ledger) == 4
        assert ledger.headers[0].parent_digest is None
        for previous, header in zip(ledger.headers, ledger.headers[1:]):
            assert header.parent_digest == previous.digest()

    def test_transaction_lookup(self, ledger_and_blocks):
        ledger, blocks = ledger_and_blocks
        sample = blocks[2].transactions[5]
        assert ledger.get_transaction(sample.key) == sample.raw
        number, raw = ledger.get_transaction_with_block(sample.key)
        assert number == 2
        assert raw == sample.raw

    def test_missing_transaction_returns_none(self, ledger_and_blocks):
        ledger, _ = ledger_and_blocks
        assert ledger.get_transaction(b"f" * 64) is None
        assert ledger.get_transaction_with_block(b"f" * 64) is None

    def test_block_snapshot_contents(self, ledger_and_blocks):
        ledger, blocks = ledger_and_blocks
        snapshot = ledger.block_snapshot(1)
        assert snapshot.to_dict() == blocks[1].records()
        assert ledger.headers[1].index_root == snapshot.root_digest

    def test_proof_against_block_root(self, ledger_and_blocks):
        ledger, blocks = ledger_and_blocks
        sample = blocks[3].transactions[0]
        proof = ledger.prove_transaction(3, sample.key)
        assert proof.verify(ledger.headers[3].index_root)

    def test_chain_verification_passes(self, ledger_and_blocks):
        ledger, _ = ledger_and_blocks
        assert ledger.verify_chain()

    def test_total_transactions(self, ledger_and_blocks):
        ledger, _ = ledger_and_blocks
        assert ledger.total_transactions() == 4 * 30

    def test_header_tampering_detected(self, ledger_and_blocks):
        ledger, _ = ledger_and_blocks
        original = ledger.headers[1]
        ledger.headers[1] = BlockHeader(
            number=original.number,
            parent_digest=original.parent_digest,
            index_root=original.index_root,
            transaction_count=original.transaction_count + 1,
        )
        with pytest.raises(TamperDetectedError):
            ledger.verify_chain()

    def test_storage_tampering_detected(self, index_class):
        store = InMemoryNodeStore()
        ledger = Ledger(index_factory=lambda: build_index(index_class, store))
        block = EthereumDatasetGenerator(blocks=1, transactions_per_block=20, seed=3).all_blocks()[0]
        ledger.append_block(block.records())
        victim = next(iter(ledger.block_snapshot(0).node_digests()))
        data = store.get_bytes(victim)
        store.corrupt(victim, data + b"!")
        with pytest.raises(TamperDetectedError):
            ledger.verify_block_contents(0)
