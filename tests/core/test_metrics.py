"""Tests for deduplication/storage metrics (paper Section 4.2, 5.4)."""

import pytest

from repro.core.metrics import (
    StorageBreakdown,
    deduplication_ratio,
    incremental_version_growth,
    node_sharing_ratio,
    storage_breakdown,
)
from repro.analysis.bounds import predicted_deduplication_ratio
from repro.indexes import MerkleBucketTree, POSTree
from repro.storage.memory import InMemoryNodeStore
from tests.conftest import build_index


class TestStorageBreakdown:
    def test_ratios_from_counts(self):
        breakdown = StorageBreakdown(unique_nodes=6, total_nodes=10,
                                     unique_bytes=600, total_bytes=1000)
        assert breakdown.deduplication_ratio == pytest.approx(0.4)
        assert breakdown.node_sharing_ratio == pytest.approx(0.4)
        assert breakdown.raw_bytes == 1000
        assert breakdown.deduplicated_bytes == 600

    def test_zero_division_guarded(self):
        empty = StorageBreakdown(0, 0, 0, 0)
        assert empty.deduplication_ratio == 0.0
        assert empty.node_sharing_ratio == 0.0


class TestSnapshotMetrics:
    def test_single_snapshot_has_zero_dedup(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        assert deduplication_ratio([snapshot]) == pytest.approx(0.0)
        assert node_sharing_ratio([snapshot]) == pytest.approx(0.0)

    def test_identical_snapshots_dedup_fully(self, siri_index_class, small_dataset):
        store = InMemoryNodeStore()
        index = build_index(siri_index_class, store)
        v1 = index.from_items(small_dataset)
        v2 = index.from_items(small_dataset)  # same content, built separately
        assert v1.root_digest == v2.root_digest
        assert deduplication_ratio([v1, v2]) == pytest.approx(0.5)
        assert node_sharing_ratio([v1, v2]) == pytest.approx(0.5)

    def test_small_update_dedups_heavily(self, any_index, small_dataset):
        v1 = any_index.from_items(small_dataset)
        v2 = v1.put(sorted(small_dataset)[0], b"changed")
        ratio = deduplication_ratio([v1, v2])
        assert 0.3 < ratio < 0.5  # close to the 1/2 ceiling for 2 versions

    def test_ratio_bounds(self, any_index, small_dataset):
        versions = [any_index.from_items(small_dataset)]
        for i in range(4):
            versions.append(versions[-1].put(f"extra{i}", f"value{i}"))
        ratio = deduplication_ratio(versions)
        sharing = node_sharing_ratio(versions)
        assert 0.0 <= ratio < 1.0
        assert 0.0 <= sharing < 1.0

    def test_breakdown_consistency(self, any_index, small_dataset):
        v1 = any_index.from_items(small_dataset)
        v2 = v1.put(b"zz", b"yy")
        breakdown = storage_breakdown([v1, v2])
        assert breakdown.unique_nodes <= breakdown.total_nodes
        assert breakdown.unique_bytes <= breakdown.total_bytes
        assert breakdown.unique_nodes == len(v1.node_digests() | v2.node_digests())

    def test_disjoint_indexes_share_nothing(self):
        store = InMemoryNodeStore()
        index = POSTree(store)
        a = index.from_items({f"a{i}".encode(): bytes([i]) * 10 for i in range(50)})
        b = index.from_items({f"b{i}".encode(): bytes([255 - i]) * 10 for i in range(50)})
        assert deduplication_ratio([a, b]) == pytest.approx(0.0, abs=0.05)


class TestContinuousDifferentialPrediction:
    """Empirical check of the paper's η ≈ 1/2 − α/2 analysis (Section 4.2.2)."""

    @pytest.mark.parametrize("alpha", [0.05, 0.2, 0.5])
    def test_pos_tree_matches_prediction(self, alpha):
        store = InMemoryNodeStore()
        index = POSTree(store, target_node_size=512, estimated_entry_size=40)
        records = {f"key{i:06d}".encode(): (b"v%06d" % i) * 4 for i in range(2_000)}
        v1 = index.from_items(records)
        keys = sorted(records)
        changed = {key: b"changed-" + records[key] for key in keys[: int(alpha * len(keys))]}
        v2 = v1.update(changed)

        measured = deduplication_ratio([v1, v2])
        predicted = predicted_deduplication_ratio(alpha, "POS-Tree")
        assert measured == pytest.approx(predicted, abs=0.12)

    def test_mbt_matches_prediction_at_moderate_alpha(self):
        alpha = 0.1
        store = InMemoryNodeStore()
        index = MerkleBucketTree(store, capacity=256, fanout=4)
        records = {f"key{i:06d}".encode(): (b"v%06d" % i) * 4 for i in range(2_000)}
        v1 = index.from_items(records)
        keys = sorted(records)
        # A contiguous key range of size alpha*N, as in the paper's model.
        changed = {key: b"changed-" + records[key] for key in keys[: int(alpha * len(keys))]}
        v2 = v1.update(changed)

        measured = deduplication_ratio([v1, v2])
        predicted = predicted_deduplication_ratio(alpha, "MBT")
        # MBT's large hashed buckets spread a contiguous key range over many
        # buckets, so the measured value sits below the ideal prediction.
        assert measured <= predicted + 0.05
        assert measured > 0.0


class TestVersionGrowth:
    def test_growth_series_monotone_and_dedup_never_larger(self, any_index, small_dataset):
        versions = [any_index.from_items(small_dataset)]
        for i in range(5):
            versions.append(versions[-1].put(f"v{i}", f"value{i}"))
        growth = incremental_version_growth(versions)
        assert len(growth) == len(versions)
        raw_values = [raw for _, raw, _ in growth]
        dedup_values = [dedup for _, _, dedup in growth]
        assert raw_values == sorted(raw_values)
        assert dedup_values == sorted(dedup_values)
        for raw, dedup in zip(raw_values, dedup_values):
            assert dedup <= raw
