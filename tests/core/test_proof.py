"""Tests for Merkle proofs and their verification."""

import pytest

from repro.core.errors import ProofVerificationError
from repro.core.proof import MerkleProof, ProofStep
from repro.hashing.digest import hash_bytes
from tests.conftest import build_index


class TestProofGeneration:
    def test_membership_proof_verifies(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        key = sorted(small_dataset)[17]
        proof = snapshot.prove(key)
        assert proof.is_membership_proof
        assert proof.value == small_dataset[key]
        assert proof.verify(snapshot.root_digest)

    def test_proof_root_matches_snapshot_root(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        proof = snapshot.prove(sorted(small_dataset)[0])
        assert proof.root_digest() == snapshot.root_digest

    def test_absence_proof(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        proof = snapshot.prove(b"definitely-not-present")
        assert not proof.is_membership_proof
        assert proof.verify(snapshot.root_digest)

    def test_proof_fails_against_other_version(self, any_index, small_dataset):
        v1 = any_index.from_items(small_dataset)
        key = sorted(small_dataset)[5]
        v2 = v1.put(key, b"changed")
        proof_v1 = v1.prove(key)
        with pytest.raises(ProofVerificationError):
            proof_v1.verify(v2.root_digest)

    def test_proof_fails_when_value_substituted(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        key = sorted(small_dataset)[9]
        proof = snapshot.prove(key)
        proof.value = b"forged value"
        with pytest.raises(ProofVerificationError):
            proof.verify(snapshot.root_digest)

    def test_proof_fails_when_path_tampered(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        key = sorted(small_dataset)[3]
        proof = snapshot.prove(key)
        tampered = proof.steps[-1].node_bytes[:-1] + bytes(
            [proof.steps[-1].node_bytes[-1] ^ 0x01]
        )
        proof.steps[-1] = ProofStep(tampered, proof.steps[-1].level)
        with pytest.raises(ProofVerificationError):
            proof.verify(snapshot.root_digest)

    def test_proof_size_is_reasonable(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        proof = snapshot.prove(sorted(small_dataset)[11])
        assert proof.proof_size_bytes() < snapshot.storage_bytes()
        assert len(proof) == len(proof.steps) >= 1

    def test_proof_depth_matches_lookup_depth(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        key = sorted(small_dataset)[20]
        assert len(snapshot.prove(key)) == snapshot.lookup_depth(key)


class TestProofObject:
    def test_empty_proof_rejected(self):
        proof = MerkleProof(key=b"k", value=b"v", steps=[])
        with pytest.raises(ProofVerificationError):
            proof.verify(hash_bytes(b"root"))
        with pytest.raises(ProofVerificationError):
            proof.root_digest()

    def test_single_node_proof(self):
        node = b"node containing key and value"
        proof = MerkleProof(key=b"key", value=b"value", steps=[ProofStep(node, 0)])
        assert proof.verify(hash_bytes(node))

    def test_default_binding_check_requires_value_bytes(self):
        node = b"something else entirely"
        proof = MerkleProof(key=b"key", value=b"value", steps=[ProofStep(node, 0)])
        with pytest.raises(ProofVerificationError):
            proof.verify(hash_bytes(node))

    def test_custom_binding_check_is_used(self):
        node = b"opaque"
        proof = MerkleProof(key=b"key", value=b"value", steps=[ProofStep(node, 0)])
        assert proof.verify(hash_bytes(node), binding_check=lambda *_: True)

    def test_repr_mentions_kind(self):
        membership = MerkleProof(key=b"k", value=b"v", steps=[ProofStep(b"n", 0)])
        absence = MerkleProof(key=b"k", value=None, steps=[ProofStep(b"n", 0)])
        assert "membership" in repr(membership)
        assert "absence" in repr(absence)
