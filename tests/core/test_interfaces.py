"""Tests for the snapshot API shared by every index (repro.core.interfaces)."""

import pytest

from repro.core.errors import ImmutableWriteError, KeyNotFoundError
from repro.core.interfaces import WriteBatch, coerce_key, coerce_value
from tests.conftest import build_index


class TestCoercion:
    def test_bytes_pass_through(self):
        assert coerce_key(b"abc") == b"abc"

    def test_bytearray(self):
        assert coerce_key(bytearray(b"abc")) == b"abc"

    def test_str_utf8(self):
        assert coerce_key("héllo") == "héllo".encode("utf-8")

    def test_int_decimal(self):
        assert coerce_key(42) == b"42"
        assert coerce_value(0) == b"0"

    def test_unsupported_type(self):
        with pytest.raises(TypeError):
            coerce_key(3.5)


class TestSnapshotAPI:
    def test_empty_snapshot(self, any_index):
        snapshot = any_index.empty_snapshot()
        assert snapshot.is_empty()
        assert snapshot.root_digest is None
        assert snapshot.root_hex == ""
        assert snapshot.get(b"anything") is None
        assert len(snapshot) == 0
        assert list(snapshot.items()) == []

    def test_from_items_and_getitem(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        assert snapshot[b"key05"] == b"value5"
        with pytest.raises(KeyNotFoundError):
            snapshot[b"missing"]

    def test_get_with_default(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        assert snapshot.get(b"missing", b"fallback") == b"fallback"

    def test_contains(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        assert b"key00" in snapshot
        assert b"nope" not in snapshot

    def test_items_sorted_and_complete(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        items = list(snapshot.items())
        assert dict(items) == small_dataset
        assert [k for k, _ in items] == sorted(small_dataset)

    def test_keys_values_to_dict(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        assert sorted(snapshot.keys()) == sorted(tiny_dataset)
        assert sorted(snapshot.values()) == sorted(tiny_dataset.values())
        assert snapshot.to_dict() == tiny_dataset

    def test_len_counts_records(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        assert len(snapshot) == len(small_dataset)

    def test_put_returns_new_snapshot_and_preserves_old(self, any_index, tiny_dataset):
        v1 = any_index.from_items(tiny_dataset)
        v2 = v1.put(b"key00", b"overwritten")
        assert v1[b"key00"] == b"value0"
        assert v2[b"key00"] == b"overwritten"
        assert v1.root_digest != v2.root_digest

    def test_update_accepts_mappings_and_pairs(self, any_index):
        snapshot = any_index.empty_snapshot()
        from_mapping = snapshot.update({b"a": b"1"})
        from_pairs = snapshot.update([(b"a", b"1")])
        assert from_mapping[b"a"] == from_pairs[b"a"] == b"1"

    def test_update_with_string_keys(self, any_index):
        snapshot = any_index.empty_snapshot().update({"alpha": "one", "beta": 2})
        assert snapshot["alpha"] == b"one"
        assert snapshot[b"beta"] == b"2"

    def test_remove(self, any_index, tiny_dataset):
        v1 = any_index.from_items(tiny_dataset)
        v2 = v1.remove(b"key03", b"key04")
        assert b"key03" in v1
        assert b"key03" not in v2
        assert b"key04" not in v2
        assert len(v2) == len(tiny_dataset) - 2

    def test_remove_missing_key_is_noop(self, any_index, tiny_dataset):
        v1 = any_index.from_items(tiny_dataset)
        v2 = v1.remove(b"not-present")
        assert v2.to_dict() == tiny_dataset

    def test_snapshot_is_immutable(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        with pytest.raises(ImmutableWriteError):
            snapshot[b"key00"] = b"mutation"

    def test_equality_by_root(self, any_index, tiny_dataset):
        v1 = any_index.from_items(tiny_dataset)
        v2 = v1.put(b"new", b"x")
        v3 = v2.remove(b"new")
        assert v1 != v2
        # MVMB+-Tree is not structurally invariant, so v3 may legitimately
        # differ from v1; SIRI candidates must return to the same root.
        if any_index.name != "MVMB+-Tree":
            assert v3 == v1
            assert hash(v3) == hash(v1)

    def test_empty_value_allowed(self, any_index):
        snapshot = any_index.empty_snapshot().update({b"empty": b""})
        assert snapshot[b"empty"] == b""
        assert b"empty" in snapshot

    def test_node_digests_and_storage_bytes(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        digests = snapshot.node_digests()
        assert digests
        assert snapshot.root_digest in digests
        assert snapshot.storage_bytes() == sum(
            any_index.store.size_of(d) for d in digests
        )

    def test_height_and_depth_positive(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        assert snapshot.height() >= 1
        key = next(iter(small_dataset))
        assert 1 <= snapshot.lookup_depth(key) <= snapshot.height()

    def test_repr_mentions_index_name(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        assert any_index.name in repr(snapshot)


class TestWriteBatch:
    def test_accumulates_and_applies(self, any_index, tiny_dataset):
        snapshot = any_index.from_items(tiny_dataset)
        batch = WriteBatch()
        batch.put(b"key00", b"rewritten").put("newkey", "newvalue").remove(b"key01")
        assert len(batch) == 3
        result = batch.apply_to(snapshot)
        assert result[b"key00"] == b"rewritten"
        assert result[b"newkey"] == b"newvalue"
        assert b"key01" not in result

    def test_put_then_remove_same_key(self):
        batch = WriteBatch()
        batch.put(b"k", b"v").remove(b"k")
        assert batch.puts == {}
        assert batch.removes == [b"k"]

    def test_remove_then_put_same_key(self):
        batch = WriteBatch()
        batch.remove(b"k").put(b"k", b"v")
        assert batch.puts == {b"k": b"v"}
        assert batch.removes == []

    def test_clear(self):
        batch = WriteBatch()
        batch.put(b"a", b"b")
        batch.clear()
        assert len(batch) == 0
