"""Tests for the empirical SIRI property checkers (paper Definition 3.1, Section 5.5)."""

import pytest

from repro.core.properties import (
    check_recursively_identical,
    check_siri_properties,
    check_structurally_invariant,
    check_universally_reusable,
)
from repro.indexes import MVMBTree, MerkleBucketTree, MerklePatriciaTrie, POSTree
from repro.indexes.ablation import NonRecursivelyIdenticalPOSTree, NonStructurallyInvariantPOSTree
from repro.storage.memory import InMemoryNodeStore
from tests.conftest import build_index


def make_items(count=150):
    return [(f"item{i:05d}".encode(), (b"payload-%d-" % i) * 3) for i in range(count)]


class TestPropertyCheckers:
    def test_siri_candidates_pass_all_properties(self, siri_index_class):
        report = check_siri_properties(
            lambda: build_index(siri_index_class), make_items()
        )
        assert report.structurally_invariant
        assert report.recursively_identical
        assert report.universally_reusable
        assert report.is_siri
        assert report.index_name == siri_index_class.name

    def test_baseline_fails_structural_invariance(self):
        report = check_siri_properties(lambda: build_index(MVMBTree), make_items())
        assert not report.structurally_invariant
        assert not report.is_siri

    def test_structural_invariance_checker_detects_order_dependence(self):
        assert check_structurally_invariant(lambda: build_index(POSTree), make_items())
        assert not check_structurally_invariant(lambda: build_index(MVMBTree), make_items())

    def test_recursively_identical_details(self):
        passed, details = check_recursively_identical(
            lambda: build_index(POSTree), make_items(), (b"zz-extra", b"value")
        )
        assert passed
        assert details["shared_pages"] >= details["new_pages"]
        assert details["small_pages"] > 0

    def test_universally_reusable(self):
        assert check_universally_reusable(
            lambda: build_index(MerklePatriciaTrie),
            make_items(100),
            [(f"extra{i:03d}".encode(), b"x" * 20) for i in range(50)],
        )

    def test_non_recursively_identical_variant_fails_that_property(self):
        passed, _ = check_recursively_identical(
            lambda: NonRecursivelyIdenticalPOSTree(InMemoryNodeStore(),
                                                   target_node_size=512,
                                                   estimated_entry_size=64),
            make_items(),
            (b"zz-extra", b"value"),
        )
        assert not passed

    def test_empty_items_rejected(self):
        with pytest.raises(ValueError):
            check_siri_properties(lambda: build_index(POSTree), [])

    def test_report_details_populated(self):
        report = check_siri_properties(lambda: build_index(MerkleBucketTree), make_items(80))
        assert "shared_pages" in report.details
