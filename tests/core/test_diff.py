"""Tests for diff and merge (paper Sections 4.1.3 and 4.1.4)."""

import pytest

from repro.core.diff import (
    DiffEntry,
    diff_by_lookup,
    diff_snapshots,
    merge_snapshots,
    three_way_merge,
)
from repro.core.errors import MergeConflictError
from tests.conftest import build_index


class TestDiffEntry:
    def test_kind_classification(self):
        assert DiffEntry(b"k", None, b"v").kind == "added"
        assert DiffEntry(b"k", b"v", None).kind == "removed"
        assert DiffEntry(b"k", b"a", b"b").kind == "changed"


class TestDiff:
    def test_identical_snapshots_diff_empty(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        result = diff_snapshots(snapshot, snapshot)
        assert result.is_empty()
        assert result.comparisons == 0  # pruned entirely via root equality

    def test_diff_reports_adds_changes_removes(self, any_index, small_dataset):
        v1 = any_index.from_items(small_dataset)
        some_key = sorted(small_dataset)[10]
        removed_key = sorted(small_dataset)[20]
        v2 = v1.update({some_key: b"changed", b"added-key": b"new"}, removes=[removed_key])

        result = diff_snapshots(v1, v2)
        by_key = {entry.key: entry for entry in result}
        assert by_key[some_key].kind == "changed"
        assert by_key[some_key].left == small_dataset[some_key]
        assert by_key[some_key].right == b"changed"
        assert by_key[b"added-key"].kind == "added"
        assert by_key[removed_key].kind == "removed"
        assert len(result) == 3
        assert set(result.keys()) == {some_key, b"added-key", removed_key}

    def test_diff_matches_naive_lookup_diff(self, any_index, small_dataset):
        v1 = any_index.from_items(small_dataset)
        keys = sorted(small_dataset)
        v2 = v1.update({keys[3]: b"x", keys[7]: b"y"}, removes=[keys[50]])
        fast = diff_snapshots(v1, v2)
        naive = diff_by_lookup(v1, v2)
        as_set = lambda result: {(e.key, e.left, e.right) for e in result}
        assert as_set(fast) == as_set(naive)

    def test_diff_pruning_skips_unchanged_regions(self, any_index, small_dataset):
        """The structural diff must not compare every record when only one changed."""
        v1 = any_index.from_items(small_dataset)
        v2 = v1.put(sorted(small_dataset)[0], b"changed")
        result = diff_snapshots(v1, v2)
        assert len(result) == 1
        assert result.comparisons < len(small_dataset) / 2

    def test_diff_against_empty(self, any_index, small_dataset):
        empty = any_index.empty_snapshot()
        full = any_index.from_items(small_dataset)
        result = diff_snapshots(empty, full)
        assert len(result) == len(small_dataset)
        assert all(entry.kind == "added" for entry in result)

    def test_added_removed_changed_accessors(self, any_index, tiny_dataset):
        v1 = any_index.from_items(tiny_dataset)
        v2 = v1.update({b"key00": b"different", b"brand": b"new"}, removes=[b"key01"])
        result = diff_snapshots(v1, v2)
        assert [e.key for e in result.added] == [b"brand"]
        assert [e.key for e in result.removed] == [b"key01"]
        assert [e.key for e in result.changed] == [b"key00"]


class TestTwoWayMerge:
    def test_merge_disjoint_additions(self, any_index, small_dataset):
        """Two-way merge combines records added on either side (no conflicts)."""
        base = any_index.from_items(small_dataset)
        ours = base.update({b"our-key": b"ours"})
        theirs = base.update({b"their-key": b"theirs"})
        merged = merge_snapshots(ours, theirs)
        assert merged[b"our-key"] == b"ours"
        assert merged[b"their-key"] == b"theirs"

    def test_two_way_merge_treats_any_value_difference_as_conflict(self, any_index, small_dataset):
        """Per the paper's merge definition, a key with different values in the
        two instances interrupts the merge — even if only one side changed it
        relative to some earlier version (that distinction needs a three-way
        merge with an ancestor)."""
        base = any_index.from_items(small_dataset)
        key = sorted(small_dataset)[0]
        ours = base.update({key: b"ours"})
        with pytest.raises(MergeConflictError):
            merge_snapshots(ours, base)

    def test_merge_conflict_raises_with_keys(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.put(b"key00", b"ours")
        theirs = base.put(b"key00", b"theirs")
        with pytest.raises(MergeConflictError) as excinfo:
            merge_snapshots(ours, theirs)
        assert excinfo.value.conflicts == [b"key00"]

    def test_merge_conflict_resolved_by_resolver(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.put(b"key00", b"ours")
        theirs = base.put(b"key00", b"theirs")
        merged = merge_snapshots(ours, theirs, resolver=lambda key, a, b: a + b"+" + b)
        assert merged[b"key00"] == b"ours+theirs"

    def test_merge_identical_changes_is_not_conflict(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.put(b"key00", b"same")
        theirs = base.put(b"key00", b"same")
        merged = merge_snapshots(ours, theirs)
        assert merged[b"key00"] == b"same"

    def test_merge_result_contains_union(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.update({b"only-ours": b"1"})
        theirs = base.update({b"only-theirs": b"2"})
        merged = merge_snapshots(ours, theirs)
        expected = dict(tiny_dataset)
        expected.update({b"only-ours": b"1", b"only-theirs": b"2"})
        assert merged.to_dict() == expected


class TestThreeWayMerge:
    def test_non_overlapping_changes(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.update({b"key00": b"ours"})
        theirs = base.update({b"key05": b"theirs"})
        result = three_way_merge(base, ours, theirs)
        assert result.snapshot[b"key00"] == b"ours"
        assert result.snapshot[b"key05"] == b"theirs"
        assert result.conflicts_resolved == []

    def test_their_deletion_propagates(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.update({b"key00": b"ours"})
        theirs = base.remove(b"key10")
        result = three_way_merge(base, ours, theirs)
        assert b"key10" not in result.snapshot
        assert result.snapshot[b"key00"] == b"ours"

    def test_conflict_detection_and_resolution(self, any_index, tiny_dataset):
        base = any_index.from_items(tiny_dataset)
        ours = base.put(b"key02", b"ours")
        theirs = base.put(b"key02", b"theirs")
        with pytest.raises(MergeConflictError):
            three_way_merge(base, ours, theirs)
        result = three_way_merge(base, ours, theirs, resolver=lambda k, a, b: b)
        assert result.snapshot[b"key02"] == b"theirs"
        assert result.conflicts_resolved == [b"key02"]

    def test_untouched_branch_does_not_override(self, any_index, tiny_dataset):
        """A branch that never touched a key must not undo the other branch's edit."""
        base = any_index.from_items(tiny_dataset)
        ours = base.put(b"key07", b"ours-edit")
        theirs = base.put(b"unrelated", b"x")
        result = three_way_merge(base, ours, theirs)
        assert result.snapshot[b"key07"] == b"ours-edit"
