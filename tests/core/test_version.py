"""Tests for the commit DAG / version graph."""

import pytest

from repro.core.version import UnknownBranchError, UnknownCommitError, VersionGraph
from repro.hashing.digest import hash_bytes


class TestVersionGraph:
    def test_commit_and_head(self):
        graph = VersionGraph(clock=lambda: 1.0)
        root = hash_bytes(b"v1")
        commit = graph.commit(root, message="first")
        assert graph.head().commit_id == commit.commit_id
        assert graph.head().root == root
        assert len(graph) == 1

    def test_history_is_newest_first(self):
        graph = VersionGraph(clock=lambda: 1.0)
        for i in range(5):
            graph.commit(hash_bytes(f"v{i}".encode()), message=f"commit {i}")
        log = list(graph.log())
        assert len(log) == 5
        assert log[0].message == "commit 4"
        assert log[-1].message == "commit 0"

    def test_roots_on_branch_oldest_first(self):
        graph = VersionGraph(clock=lambda: 1.0)
        roots = [hash_bytes(f"v{i}".encode()) for i in range(3)]
        for root in roots:
            graph.commit(root)
        assert graph.roots_on_branch() == roots

    def test_branching_and_independent_heads(self):
        graph = VersionGraph(clock=lambda: 1.0)
        graph.commit(hash_bytes(b"base"))
        graph.branch("feature")
        graph.commit(hash_bytes(b"feature-work"), branch="feature")
        assert graph.head("master").root == hash_bytes(b"base")
        assert graph.head("feature").root == hash_bytes(b"feature-work")
        assert graph.branches() == ["feature", "master"]

    def test_branch_from_unknown_branch_fails(self):
        graph = VersionGraph()
        with pytest.raises(UnknownBranchError):
            graph.branch("feature", from_branch="nope")

    def test_head_of_unknown_branch_fails(self):
        graph = VersionGraph()
        with pytest.raises(UnknownBranchError):
            graph.head("ghost")

    def test_get_unknown_commit_fails(self):
        graph = VersionGraph()
        with pytest.raises(UnknownCommitError):
            graph.get(hash_bytes(b"no such commit"))

    def test_merge_commit_has_two_parents(self):
        graph = VersionGraph(clock=lambda: 1.0)
        graph.commit(hash_bytes(b"base"))
        graph.branch("other")
        graph.commit(hash_bytes(b"ours"), branch="master")
        graph.commit(hash_bytes(b"theirs"), branch="other")
        merge = graph.merge_commit(hash_bytes(b"merged"), ours="master", theirs="other")
        assert len(merge.parents) == 2
        assert graph.head("master").root == hash_bytes(b"merged")

    def test_common_ancestor(self):
        graph = VersionGraph(clock=lambda: 1.0)
        base = graph.commit(hash_bytes(b"base"))
        graph.branch("other")
        graph.commit(hash_bytes(b"ours"), branch="master")
        graph.commit(hash_bytes(b"theirs"), branch="other")
        ancestor = graph.common_ancestor("master", "other")
        assert ancestor is not None
        assert ancestor.commit_id == base.commit_id

    def test_ancestors_walk_both_parents(self):
        graph = VersionGraph(clock=lambda: 1.0)
        graph.commit(hash_bytes(b"base"))
        graph.branch("other")
        graph.commit(hash_bytes(b"ours"), branch="master")
        graph.commit(hash_bytes(b"theirs"), branch="other")
        merge = graph.merge_commit(hash_bytes(b"merged"), ours="master", theirs="other")
        ancestor_ids = {c.commit_id for c in graph.ancestors(merge.commit_id)}
        assert len(ancestor_ids) == 4  # merge + ours + theirs + base

    def test_commit_ids_are_unique_and_tamper_evident(self):
        graph = VersionGraph(clock=lambda: 2.0)
        a = graph.commit(hash_bytes(b"same-root"), message="a")
        b = graph.commit(hash_bytes(b"same-root"), message="b")
        assert a.commit_id != b.commit_id
        assert a.short_id() != b.short_id()

    def test_commit_with_none_root(self):
        graph = VersionGraph()
        commit = graph.commit(None, message="empty dataset")
        assert commit.root is None
