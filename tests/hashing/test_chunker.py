"""Unit and property tests for content-defined chunking."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.chunker import (
    BoundaryPattern,
    ContentDefinedChunker,
    FixedSizeChunker,
    chunk_items,
)


def make_items(count, seed=0, size=40):
    rng = random.Random(seed)
    return [bytes(rng.getrandbits(8) for _ in range(size)) for _ in range(count)]


class TestBoundaryPattern:
    def test_rejects_invalid_bits(self):
        with pytest.raises(ValueError):
            BoundaryPattern(bits=0)
        with pytest.raises(ValueError):
            BoundaryPattern(bits=64)

    def test_default_value_is_all_ones(self):
        pattern = BoundaryPattern(bits=4)
        assert pattern.value == 0b1111
        assert pattern.matches(0xFF)
        assert not pattern.matches(0xF0)

    def test_expected_chunk_items(self):
        assert BoundaryPattern(bits=5).expected_chunk_items == 32

    def test_for_target_size(self):
        pattern = BoundaryPattern.for_target_size(1024, 64)
        assert pattern.expected_chunk_items in (8, 16)
        with pytest.raises(ValueError):
            BoundaryPattern.for_target_size(0, 10)


class TestContentDefinedChunker:
    def test_empty_input(self):
        chunker = ContentDefinedChunker()
        assert chunker.chunk([]) == []
        assert chunker.boundaries([]) == []

    def test_chunks_preserve_items_and_order(self):
        items = make_items(500, seed=1)
        chunks = ContentDefinedChunker(BoundaryPattern(bits=4)).chunk(items)
        reassembled = [item for chunk in chunks for item in chunk.items]
        assert reassembled == items

    def test_chunking_is_deterministic(self):
        items = make_items(300, seed=2)
        chunker = ContentDefinedChunker(BoundaryPattern(bits=4))
        assert chunker.boundaries(items) == chunker.boundaries(items)

    def test_average_chunk_size_follows_pattern(self):
        items = make_items(4000, seed=3, size=24)
        chunker = ContentDefinedChunker(BoundaryPattern(bits=4), min_items=1)
        chunks = chunker.chunk(items)
        average = len(items) / len(chunks)
        assert 8 < average < 40  # expected 16, loose bounds

    def test_min_items_respected_except_tail(self):
        items = make_items(1000, seed=4)
        chunker = ContentDefinedChunker(BoundaryPattern(bits=2), min_items=4)
        chunks = chunker.chunk(items)
        for chunk in chunks[:-1]:
            assert len(chunk) >= 4

    def test_max_items_respected(self):
        items = make_items(1000, seed=5)
        chunker = ContentDefinedChunker(BoundaryPattern(bits=12), min_items=1, max_items=16)
        chunks = chunker.chunk(items)
        for chunk in chunks:
            assert len(chunk) <= 16

    def test_boundary_shifting_resistance(self):
        """Inserting one item near the front must not re-chunk the far tail."""
        items = make_items(2000, seed=6, size=32)
        chunker = ContentDefinedChunker(BoundaryPattern(bits=5), min_items=1)
        original_cuts = set(chunker.boundaries(items))

        modified = items[:100] + make_items(1, seed=99, size=32) + items[100:]
        shifted_cuts = {cut - 1 for cut in chunker.boundaries(modified) if cut > 100}
        late_original = {cut for cut in original_cuts if cut > 150}
        # Every late original boundary must survive the early insertion.
        assert late_original <= shifted_cuts

    def test_fingerprint_modes_differ_but_both_work(self):
        items = make_items(500, seed=7)
        by_hash = ContentDefinedChunker(BoundaryPattern(bits=4), fingerprint_mode="item_hash")
        by_window = ContentDefinedChunker(BoundaryPattern(bits=4), fingerprint_mode="window")
        assert [i for c in by_hash.chunk(items) for i in c.items] == items
        assert [i for c in by_window.chunk(items) for i in c.items] == items

    def test_invalid_fingerprint_mode_rejected(self):
        with pytest.raises(ValueError):
            ContentDefinedChunker(fingerprint_mode="bogus")

    def test_hash_item_directly_alias(self):
        chunker = ContentDefinedChunker(hash_item_directly=True)
        assert chunker.fingerprint_mode == "digest_tail"
        assert chunker.hash_item_directly

    def test_chunk_items_helper(self):
        items = make_items(100, seed=8)
        chunks = chunk_items(items)
        assert [i for c in chunks for i in c.items] == items

    @given(st.lists(st.binary(min_size=1, max_size=60), min_size=0, max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_property_partition_is_exact(self, items):
        """Chunking always partitions the input: nothing lost, nothing added."""
        chunker = ContentDefinedChunker(BoundaryPattern(bits=3), min_items=1)
        chunks = chunker.chunk(items)
        assert [i for c in chunks for i in c.items] == list(items)
        assert sum(c.byte_size for c in chunks) == sum(len(i) for i in items)


class TestFixedSizeChunker:
    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            FixedSizeChunker(0)

    def test_fixed_chunks(self):
        items = make_items(100, seed=9)
        chunks = FixedSizeChunker(items_per_chunk=16).chunk(items)
        assert all(len(c) == 16 for c in chunks[:-1])
        assert [i for c in chunks for i in c.items] == items

    def test_boundaries_depend_on_position_not_content(self):
        """The defining non-property: early insertions shift every later boundary."""
        items = make_items(200, seed=10)
        chunker = FixedSizeChunker(items_per_chunk=16)
        original = chunker.boundaries(items)
        shifted = chunker.boundaries(items[:1] + make_items(1, seed=11) + items[1:])
        assert original != [cut - 1 for cut in shifted]
