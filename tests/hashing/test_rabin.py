"""Unit tests for the rolling hashes (Rabin fingerprint and BuzHash)."""

import random

import pytest

from repro.hashing.rabin import BuzHash, RabinFingerprint


@pytest.fixture(params=[RabinFingerprint, BuzHash], ids=["rabin", "buzhash"])
def roller_class(request):
    return request.param


class TestRollingHashes:
    def test_rejects_non_positive_window(self, roller_class):
        with pytest.raises(ValueError):
            roller_class(0)

    def test_deterministic(self, roller_class):
        data = bytes(range(200))
        a = roller_class(16)
        b = roller_class(16)
        assert [a.update(x) for x in data] == [b.update(x) for x in data]

    def test_reset_restores_initial_state(self, roller_class):
        roller = roller_class(8)
        for byte in b"some data to hash":
            roller.update(byte)
        roller.reset()
        fresh = roller_class(8)
        assert [roller.update(b) for b in b"abc"] == [fresh.update(b) for b in b"abc"]

    def test_window_property_rolling_equals_recompute(self, roller_class):
        """The fingerprint after n bytes depends only on the last `window` bytes."""
        window = 16
        rng = random.Random(5)
        data = bytes(rng.getrandbits(8) for _ in range(300))

        rolled = roller_class(window)
        rolled_values = [rolled.update(b) for b in data]

        for end in range(window, len(data), 37):
            fresh = roller_class(window)
            recomputed = fresh.digest_window(data[end - window : end])
            assert recomputed == rolled_values[end - 1], f"mismatch at position {end}"

    def test_different_windows_give_different_streams(self, roller_class):
        data = bytes(range(100))
        small = roller_class(4)
        large = roller_class(64)
        small_values = [small.update(b) for b in data]
        large_values = [large.update(b) for b in data]
        assert small_values != large_values

    def test_value_property_tracks_last_update(self, roller_class):
        roller = roller_class(8)
        last = 0
        for byte in b"hello world":
            last = roller.update(byte)
        assert roller.value == last


class TestBuzHashSpecifics:
    def test_table_is_deterministic_per_seed(self):
        assert BuzHash._build_table(1) == BuzHash._build_table(1)
        assert BuzHash._build_table(1) != BuzHash._build_table(2)

    def test_values_fit_in_64_bits(self):
        roller = BuzHash(32)
        for byte in bytes(range(256)):
            assert 0 <= roller.update(byte) < (1 << 64)

    def test_rotl_wraps(self):
        assert BuzHash._rotl(1, 64) == 1
        assert BuzHash._rotl(1 << 63, 1) == 1


class TestRabinSpecifics:
    def test_values_bounded_by_polynomial_degree(self):
        roller = RabinFingerprint(32)
        for byte in bytes(range(256)):
            assert roller.update(byte).bit_length() <= roller.degree

    def test_distribution_of_low_bits_roughly_uniform(self):
        """Low bits of the fingerprint should hit a boundary pattern at the
        expected rate (within a loose tolerance) — this is what chunk size
        control relies on."""
        rng = random.Random(11)
        roller = RabinFingerprint(48)
        matches = 0
        trials = 4000
        for _ in range(trials):
            fingerprint = roller.update(rng.getrandbits(8))
            if fingerprint & 0x0F == 0x0F:
                matches += 1
        expected = trials / 16
        assert expected * 0.5 < matches < expected * 1.8
