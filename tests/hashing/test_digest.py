"""Unit tests for repro.hashing.digest."""

import pytest

from repro.hashing.digest import Digest, HashFunction, default_hash_function, hash_bytes, hash_pair


class TestDigest:
    def test_wraps_raw_bytes(self):
        digest = Digest(b"\x01\x02\x03")
        assert digest.raw == b"\x01\x02\x03"
        assert bytes(digest) == b"\x01\x02\x03"
        assert len(digest) == 3

    def test_rejects_empty_and_non_bytes(self):
        with pytest.raises(ValueError):
            Digest(b"")
        with pytest.raises(TypeError):
            Digest("abc")

    def test_hex_round_trip(self):
        digest = hash_bytes(b"hello")
        assert Digest.from_hex(digest.hex) == digest

    def test_short_form_prefix_of_hex(self):
        digest = hash_bytes(b"hello")
        assert digest.hex.startswith(digest.short(10))
        assert len(digest.short(10)) == 10

    def test_equality_and_hashing(self):
        a = hash_bytes(b"x")
        b = hash_bytes(b"x")
        c = hash_bytes(b"y")
        assert a == b
        assert a != c
        assert hash(a) == hash(b)
        assert a == b.raw  # comparison against raw bytes is supported

    def test_ordering_by_raw_bytes(self):
        a = Digest(b"\x01")
        b = Digest(b"\x02")
        assert a < b
        assert sorted([b, a]) == [a, b]

    def test_usable_as_dict_key(self):
        mapping = {hash_bytes(b"a"): 1, hash_bytes(b"b"): 2}
        assert mapping[hash_bytes(b"a")] == 1

    def test_repr_contains_prefix(self):
        digest = hash_bytes(b"hello")
        assert digest.short() in repr(digest)


class TestHashFunction:
    def test_default_is_sha256(self):
        fn = default_hash_function()
        assert fn.name == "sha256"
        assert fn.digest_size == 32

    def test_deterministic(self):
        fn = HashFunction("sha256")
        assert fn.hash(b"data") == fn.hash(b"data")

    def test_different_inputs_differ(self):
        fn = HashFunction("sha256")
        assert fn.hash(b"data1") != fn.hash(b"data2")

    def test_hash_many_equals_concatenation(self):
        fn = HashFunction("sha256")
        assert fn.hash_many([b"ab", b"cd"]) == fn.hash(b"abcd")

    def test_alternative_algorithms(self):
        sha1 = HashFunction("sha1")
        assert sha1.digest_size == 20
        blake = HashFunction("blake2b", digest_size=16)
        assert blake.digest_size == 16

    def test_invalid_algorithm_rejected_eagerly(self):
        with pytest.raises(ValueError):
            HashFunction("not-a-real-hash")

    def test_callable_interface(self):
        fn = HashFunction("sha256")
        assert fn(b"abc") == fn.hash(b"abc")

    def test_hash_pair_helper(self):
        assert hash_pair(b"l", b"r") == default_hash_function().hash(b"lr")
