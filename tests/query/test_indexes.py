"""Behavioural tests for secondary indexes across the repository surface.

Covers the index lifecycle the query layer promises: registration and
incremental maintenance at commit time, staged-buffer overlays, reads on
forks and merges, proofs anchored to committed posting roots, and crash
recovery restoring journalled index roots — on both shard backends.
"""

import os

import pytest

from repro.api import Repository
from repro.core.errors import InvalidParameterError
from repro.query import IndexDefinition

pytestmark = pytest.mark.filterwarnings("ignore::pytest.PytestUnraisableExceptionWarning")


def extract_color(value):
    """Module-level extractor (picklable for the process backend)."""
    parts = value.split(b":", 1)
    return [parts[0]] if len(parts) == 2 else []


def extract_tags(value):
    """Multi-key extractor: every comma-separated tag after the colon."""
    parts = value.split(b":", 1)
    if len(parts) != 2 or not parts[1]:
        return []
    return [tag for tag in parts[1].split(b",") if tag]


BACKENDS = ["thread", "process"]


def open_repo(backend, directory=None, num_shards=2):
    return Repository.open(directory, num_shards=num_shards, backend=backend)


def brute_force_triples(branch, definition):
    """The oracle: every (index_key, primary_key, value) from a full scan."""
    triples = []
    for key, value in branch.scan():
        for index_key in definition.keys_for(value):
            triples.append((index_key, key, value))
    triples.sort()
    return triples


@pytest.fixture(params=BACKENDS)
def backend(request):
    return request.param


class TestLifecycle:
    def test_lookup_and_range_after_commits(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.put(b"p2", b"blue:b")
            branch.put(b"p3", b"red:c")
            branch.commit("seed")
            assert branch.lookup(color, b"red") == [
                (b"p1", b"red:a"), (b"p3", b"red:c")]
            assert branch.lookup(color, b"blue") == [(b"p2", b"blue:b")]
            assert branch.lookup(color, b"green") == []
            assert branch.range(color) == brute_force_triples(branch, color)
            # lo inclusive, hi exclusive over index keys
            assert branch.range(color, b"blue", b"red") == [
                (b"blue", b"p2", b"blue:b")]

    def test_update_moves_postings(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("v0")
            branch.put(b"p1", b"blue:a")
            branch.commit("v1")
            assert branch.lookup(color, b"red") == []
            assert branch.lookup(color, b"blue") == [(b"p1", b"blue:a")]

    def test_remove_clears_postings(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("v0")
            branch.remove(b"p1")
            branch.commit("v1")
            assert branch.lookup(color, b"red") == []
            assert branch.range(color) == []

    def test_multi_key_extractor(self, backend):
        with open_repo(backend) as repo:
            tags = repo.register_index(IndexDefinition("tags", extract_tags))
            branch = repo.default_branch
            branch.put(b"p1", b"x:alpha,beta")
            branch.put(b"p2", b"x:beta")
            branch.commit("seed")
            assert branch.lookup(tags, b"alpha") == [(b"p1", b"x:alpha,beta")]
            assert [pk for _, pk, _ in branch.range(tags, b"beta", b"beta\x00")] \
                == [b"p1", b"p2"]

    def test_registration_backfills_existing_data(self, backend):
        with open_repo(backend) as repo:
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("before registration")
            color = repo.register_index("color", extract_color)
            branch.put(b"p2", b"red:b")
            branch.commit("after registration")
            assert branch.lookup(color, b"red") == [
                (b"p1", b"red:a"), (b"p2", b"red:b")]

    def test_duplicate_registration_rejected(self, backend):
        with open_repo(backend) as repo:
            repo.register_index("color", extract_color)
            with pytest.raises(InvalidParameterError):
                repo.register_index("color", extract_color)

    def test_unknown_index_rejected(self, backend):
        with open_repo(backend) as repo:
            branch = repo.default_branch
            with pytest.raises(InvalidParameterError):
                branch.lookup("nope", b"red")


class TestStagedOverlay:
    def test_staged_put_visible_before_commit(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            assert branch.lookup(color, b"red") == [(b"p1", b"red:a")]
            branch.commit("seed")
            assert branch.lookup(color, b"red") == [(b"p1", b"red:a")]

    def test_staged_overwrite_hides_committed_posting(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("seed")
            branch.put(b"p1", b"blue:a")
            assert branch.lookup(color, b"red") == []
            assert branch.lookup(color, b"blue") == [(b"p1", b"blue:a")]
            branch.discard()
            assert branch.lookup(color, b"red") == [(b"p1", b"red:a")]

    def test_staged_remove_hides_committed_posting(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("seed")
            branch.remove(b"p1")
            assert branch.lookup(color, b"red") == []

    def test_transaction_overlay_is_isolated(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("seed")
            txn = branch.transaction("move")
            txn.put(b"p1", b"blue:a")
            assert txn.lookup(color, b"red") == []
            assert txn.lookup(color, b"blue") == [(b"p1", b"blue:a")]
            # the branch itself still answers from the committed state
            assert branch.lookup(color, b"red") == [(b"p1", b"red:a")]
            txn.abort()


class TestForkMerge:
    def test_fork_inherits_postings(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("seed")
            fork = branch.fork("feature")
            assert fork.lookup(color, b"red") == [(b"p1", b"red:a")]
            fork.put(b"p2", b"red:b")
            fork.commit("fork adds")
            assert fork.lookup(color, b"red") == [
                (b"p1", b"red:a"), (b"p2", b"red:b")]
            # main unaffected
            assert branch.lookup(color, b"red") == [(b"p1", b"red:a")]

    def test_merge_combines_postings(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("seed")
            fork = branch.fork("feature")
            fork.put(b"p2", b"blue:b")
            fork.commit("theirs")
            branch.put(b"p3", b"red:c")
            branch.commit("ours")
            branch.merge(fork, "merge")
            assert branch.lookup(color, b"red") == [
                (b"p1", b"red:a"), (b"p3", b"red:c")]
            assert branch.lookup(color, b"blue") == [(b"p2", b"blue:b")]
            assert branch.range(color) == brute_force_triples(branch, color)


class TestVersionedReadsAndProofs:
    def test_old_commit_roots_still_answer(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("v0")
            old_head = branch.head
            branch.put(b"p1", b"blue:a")
            branch.commit("v1")
            service = repo.service
            old_roots = dict(old_head.index_roots)["color"]
            # covering postings: the old roots answer with the old value
            assert service.index_lookup(old_roots, b"red") == [(b"p1", b"red:a")]
            new_roots = dict(branch.head.index_roots)["color"]
            assert service.index_lookup(new_roots, b"red") == []

    def test_prove_posting_verifies_against_posting_root(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("v0")
            proof = branch.prove_posting(color, b"red", b"p1")
            roots = branch.head.index_root_map()["color"]
            shard_id = repo.service.shard_of(b"p1")
            assert proof.verify(roots[shard_id])
            assert proof.is_membership_proof

    def test_prove_posting_absence(self, backend):
        with open_repo(backend) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("v0")
            proof = branch.prove_posting(color, b"green", b"p1")
            assert not proof.is_membership_proof


class TestDurability:
    def test_crash_recovery_restores_posting_roots(self, backend, tmp_path):
        directory = os.path.join(str(tmp_path), "db")
        with open_repo(backend, directory) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.put(b"p2", b"blue:b")
            branch.commit("seed")
            expected = branch.range(color)
        # reopen: journalled index roots must come back verbatim after the
        # index is re-registered (definitions are code, roots are state)
        with open_repo(backend, directory) as repo:
            color = repo.register_index("color", extract_color)
            branch = repo.default_branch
            assert branch.range(color) == expected
            assert branch.range(color) == brute_force_triples(branch, color)
            # and maintenance continues from the recovered roots
            branch.put(b"p3", b"red:c")
            branch.commit("after recovery")
            assert branch.lookup(color, b"red") == [
                (b"p1", b"red:a"), (b"p3", b"red:c")]

    def test_pre_index_journal_lines_replay(self, backend, tmp_path):
        directory = os.path.join(str(tmp_path), "db")
        with open_repo(backend, directory) as repo:
            branch = repo.default_branch
            branch.put(b"p1", b"red:a")
            branch.commit("no indexes yet")
            assert branch.head.index_roots == ()
        with open_repo(backend, directory) as repo:
            branch = repo.default_branch
            assert branch.head.index_roots == ()
            assert branch.get(b"p1") == b"red:a"
