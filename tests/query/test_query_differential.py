"""Differential proof: maintained postings equal a brute-force rebuild.

The incremental maintenance path (commit-time delta application, merge
resolution, crash recovery) must never let an index drift from what a
from-scratch rebuild over ``items()`` would produce.  Hypothesis drives
random operation sequences — put/remove/commit, branch forks with
merges, and durable crash-reopen cycles — and after every committed
state the answers of ``Branch.lookup``/``Branch.range`` are compared
against the brute-force oracle, on both shard backends.
"""

import os

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Repository
from repro.query import IndexDefinition


def extract_group(value):
    """Module-level extractor (picklable for the process backend)."""
    parts = value.split(b":", 1)
    return [parts[0]] if len(parts) == 2 and parts[0] else []


def brute_force_triples(branch, definition):
    """Oracle: rebuild every posting from a full primary scan."""
    triples = []
    for key, value in branch.scan():
        for index_key in definition.keys_for(value):
            triples.append((index_key, key, value))
    triples.sort()
    return triples


def assert_postings_match(branch, definition):
    """The maintained index must answer exactly like the oracle."""
    oracle = brute_force_triples(branch, definition)
    assert branch.range(definition) == oracle
    for index_key in {ik for ik, _, _ in oracle}:
        expected = [(pk, v) for ik, pk, v in oracle if ik == index_key]
        assert branch.lookup(definition, index_key) == expected
    assert branch.lookup(definition, b"never-a-group") == []


# Small key/group spaces so overwrites, removals of live keys, and
# group moves all occur frequently.
keys = st.sampled_from([b"k%d" % i for i in range(8)])
groups = st.sampled_from([b"g%d" % i for i in range(4)])
ops = st.lists(
    st.one_of(
        st.tuples(st.just("put"), keys, groups,
                  st.binary(min_size=0, max_size=6)),
        st.tuples(st.just("remove"), keys),
        st.tuples(st.just("commit")),
    ),
    min_size=1, max_size=30)


def apply_ops(branch, op_stream):
    for op in op_stream:
        if op[0] == "put":
            branch.put(op[1], op[2] + b":" + op[3])
        elif op[0] == "remove":
            branch.remove(op[1])
        else:
            branch.commit("checkpoint", allow_empty=True)
    branch.commit("final", allow_empty=True)


@pytest.mark.parametrize("backend", ["thread", "process"])
@given(op_stream=ops)
@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
def test_postings_equal_brute_force_after_random_ops(backend, op_stream):
    with Repository.open(num_shards=2, backend=backend) as repo:
        group = repo.register_index("group", extract_group)
        branch = repo.default_branch
        apply_ops(branch, op_stream)
        assert_postings_match(branch, group)


@pytest.mark.parametrize("backend", ["thread", "process"])
@given(ours_ops=ops, theirs_ops=ops)
@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
def test_postings_equal_brute_force_after_merge(backend, ours_ops, theirs_ops):
    with Repository.open(num_shards=2, backend=backend) as repo:
        group = repo.register_index("group", extract_group)
        branch = repo.default_branch
        branch.put(b"base", b"g0:seed")
        branch.commit("base")
        fork = branch.fork("theirs")
        apply_ops(branch, ours_ops)
        apply_ops(fork, theirs_ops)
        branch.merge(fork, "merge", resolver="theirs")
        assert_postings_match(branch, group)
        assert_postings_match(fork, group)


@pytest.mark.parametrize("backend", ["thread", "process"])
@given(before=ops, after=ops)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.function_scoped_fixture])
def test_postings_equal_brute_force_after_crash_reopen(tmp_path_factory,
                                                       backend, before, after):
    directory = os.path.join(
        str(tmp_path_factory.mktemp("query-crash")), "db")
    definition = IndexDefinition("group", extract_group)
    with Repository.open(directory, num_shards=2, backend=backend) as repo:
        repo.register_index(definition)
        apply_ops(repo.default_branch, before)
    # reopen = the crash-recovery path: journalled posting roots restored
    with Repository.open(directory, num_shards=2, backend=backend) as repo:
        repo.register_index(definition)
        branch = repo.default_branch
        assert_postings_match(branch, definition)
        apply_ops(branch, after)
        assert_postings_match(branch, definition)
