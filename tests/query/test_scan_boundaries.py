"""Boundary contract for range reads: start inclusive, stop exclusive.

``Branch.scan``'s docstring pins the contract — keys satisfy
``start <= key < stop`` — and these tests hold every layer that range
reads flow through to it, across all three SIRI index families:
``SIRIIndex.iterate_range`` (including the split-key-pruned override),
``IndexSnapshot.items_range``, ``ServiceSnapshot.items_range``,
``Branch.scan`` with its prefix/bounds interplay, and secondary-index
``Branch.range`` over index keys.
"""

import pytest

from repro.api import Repository
from repro.api.branch import prefix_upper_bound
from repro.query import IndexDefinition
from tests.conftest import SIRI_INDEXES, build_index


def extract_first_byte(value):
    return [value[:1]] if value else []


@pytest.fixture(params=SIRI_INDEXES, ids=lambda cls: cls.name)
def family_repo(request):
    with Repository.open(
            index_factory=lambda store: build_index(request.param, store),
            num_shards=2) as repo:
        yield repo


KEYS = [b"a", b"ab", b"b", b"ba", b"bb", b"c", b"\xff", b"\xff\xff"]


def seed(repo):
    branch = repo.default_branch
    for key in KEYS:
        branch.put(key, b"v" + key)
    branch.commit("seed")
    return branch


class TestBranchScan:
    def test_start_inclusive_stop_exclusive(self, family_repo):
        branch = seed(family_repo)
        got = [k for k, _ in branch.scan(b"ab", b"bb")]
        assert got == [b"ab", b"b", b"ba"]

    def test_start_equals_existing_key(self, family_repo):
        branch = seed(family_repo)
        assert [k for k, _ in branch.scan(b"b", b"c")] == [b"b", b"ba", b"bb"]

    def test_stop_equals_existing_key_excluded(self, family_repo):
        branch = seed(family_repo)
        assert [k for k, _ in branch.scan(None, b"b")] == [b"a", b"ab"]

    def test_empty_window(self, family_repo):
        branch = seed(family_repo)
        assert list(branch.scan(b"b", b"b")) == []

    def test_unbounded_scan(self, family_repo):
        branch = seed(family_repo)
        assert [k for k, _ in branch.scan()] == sorted(KEYS)

    def test_prefix_folds_into_bounds(self, family_repo):
        branch = seed(family_repo)
        assert [k for k, _ in branch.scan(prefix=b"b")] == [b"b", b"ba", b"bb"]
        # prefix intersected with an explicit window
        assert [k for k, _ in branch.scan(b"ba", b"bb", prefix=b"b")] == [b"ba"]

    def test_all_0xff_prefix_has_no_upper_bound(self, family_repo):
        # the one prefix whose upper bound cannot be expressed by
        # incrementing a byte — the fold must keep the scan open-ended
        branch = seed(family_repo)
        assert prefix_upper_bound(b"\xff") is None
        assert [k for k, _ in branch.scan(prefix=b"\xff")] == [b"\xff", b"\xff\xff"]

    def test_staged_overlay_respects_bounds(self, family_repo):
        branch = seed(family_repo)
        branch.put(b"abc", b"staged")
        branch.remove(b"b")
        assert [k for k, _ in branch.scan(b"ab", b"bb")] == [b"ab", b"abc", b"ba"]
        branch.discard()


class TestIterateRange:
    def test_snapshot_items_range_matches_filtered_items(self, family_repo):
        branch = seed(family_repo)
        snapshot = branch.snapshot()
        for start, stop in [(None, None), (b"ab", b"bb"), (b"b", b"b"),
                            (None, b"b"), (b"c", None), (b"\xff", None)]:
            expected = [(k, v) for k, v in snapshot.items()
                        if (start is None or k >= start)
                        and (stop is None or k < stop)]
            assert list(snapshot.items_range(start, stop)) == expected

    def test_index_level_iterate_range(self, family_repo):
        # drive the per-shard IndexSnapshot directly (the layer
        # RangedMerkleSearchTree overrides with split-key pruning)
        branch = seed(family_repo)
        for shard in branch.snapshot().shards:
            all_items = list(shard.items())
            for start, stop in [(b"ab", b"bb"), (None, b"b"), (b"b", None)]:
                expected = [(k, v) for k, v in all_items
                            if (start is None or k >= start)
                            and (stop is None or k < stop)]
                assert list(shard.items_range(start, stop)) == expected


class TestSecondaryRange:
    def test_index_range_lo_inclusive_hi_exclusive(self, family_repo):
        repo = family_repo
        first = repo.register_index(IndexDefinition("first", extract_first_byte))
        branch = repo.default_branch
        for key in KEYS:
            branch.put(key, key)  # value == key, so index key == first byte
        branch.commit("seed")
        triples = branch.range(first, b"a", b"b")
        assert {ik for ik, _, _ in triples} == {b"a"}
        assert branch.range(first, b"a", b"a") == []
        everything = branch.range(first)
        assert {ik for ik, _, _ in everything} == {b"a", b"b", b"c", b"\xff"}
        # hi just past a key admits it
        assert {ik for ik, _, _ in branch.range(first, b"b", b"b\x00")} == {b"b"}
