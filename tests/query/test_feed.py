"""Change-feed semantics: ordering, exactly-once resume, views, wire ops.

The exactly-once claim is the one that matters: a subscriber that
disconnects (or crashes) holding a cursor and later resumes — possibly
from a different client object on a different connection — must see
every event exactly once, in order.  These tests cut the stream at every
possible position, both in-process and over the wire server.
"""

import os

import pytest

from repro.api import Repository
from repro.core.errors import InvalidParameterError
from repro.core.version import UnknownBranchError
from repro.query import FeedCursor, MaterializedCountView
from repro.server.client import RemoteRepository
from repro.server.server import RepositoryServer, ServerThread


def extract_group(value):
    parts = value.split(b":", 1)
    return [parts[0]] if len(parts) == 2 and parts[0] else []


def seeded_repo():
    """A repository with a few commits of adds, changes, and removals."""
    repo = Repository.open(num_shards=2)
    branch = repo.default_branch
    branch.put(b"a1", b"g0:one")
    branch.put(b"b1", b"g1:two")
    branch.commit("c0")
    branch.put(b"a2", b"g0:three")
    branch.commit("c1")
    branch.put(b"a1", b"g1:edit")
    branch.remove(b"b1")
    branch.commit("c2")
    branch.put(b"c1", b"g2:four")
    branch.commit("c3")
    return repo


def event_tuples(events):
    return [(e.version, e.key, e.old, e.new) for e in events]


class TestInProcessFeed:
    def test_full_replay_is_ordered_and_complete(self):
        with seeded_repo() as repo:
            sub = repo.subscribe()
            events = sub.poll()
            assert sub.up_to_date
            versions = [e.version for e in events]
            assert versions == sorted(versions)
            # per-commit events are key-ordered
            for version in set(versions):
                keys = [e.key for e in events if e.version == version]
                assert keys == sorted(keys)
            # the folded stream reproduces the final state
            state = {}
            for event in events:
                if event.new is None:
                    del state[event.key]
                else:
                    state[event.key] = event.new
            assert state == repo.default_branch.to_dict()

    def test_new_commits_rearm_the_feed(self):
        with seeded_repo() as repo:
            sub = repo.subscribe()
            sub.poll()
            assert sub.up_to_date
            assert sub.poll() == []
            branch = repo.default_branch
            branch.put(b"d1", b"g0:five")
            branch.commit("c4")
            events = sub.poll()
            assert event_tuples(events) == [
                (branch.head.version, b"d1", None, b"g0:five")]

    def test_exactly_once_across_every_cut_point(self):
        with seeded_repo() as repo:
            full = event_tuples(repo.subscribe().poll())
            for cut in range(len(full) + 1):
                sub = repo.subscribe()
                first = []
                while len(first) < cut:
                    got = sub.poll(limit=1)
                    assert got, "stream ended before the cut point"
                    first.extend(got)
                # "disconnect": only the serialized cursor survives
                saved = sub.cursor.as_tuple()
                resumed = repo.subscribe()
                resumed.seek(FeedCursor(*saved))
                rest = resumed.poll()
                assert event_tuples(first) + event_tuples(rest) == full

    def test_from_commit_starts_after_that_commit(self):
        with seeded_repo() as repo:
            branch = repo.default_branch
            history = branch.history()  # newest first
            from_commit = history[1]
            sub = repo.subscribe(from_commit=from_commit)
            events = sub.poll()
            assert {e.version for e in events} == {history[0].version}

    def test_filters(self):
        with seeded_repo() as repo:
            prefixed = repo.subscribe(filter=b"a").poll()
            assert prefixed and all(e.key.startswith(b"a") for e in prefixed)
            predicate = repo.subscribe(filter=lambda key: key == b"b1").poll()
            assert {e.key for e in predicate} == {b"b1"}

    def test_filtered_cursor_still_resumes_exactly_once(self):
        # the offset counts raw entries, so a filter that skips events
        # must not desynchronize the cursor
        with seeded_repo() as repo:
            full = event_tuples(
                [e for e in repo.subscribe(filter=b"a").poll()])
            sub = repo.subscribe(filter=b"a")
            first = sub.poll(limit=1)
            resumed = repo.subscribe(filter=b"a")
            resumed.seek(FeedCursor(*sub.cursor.as_tuple()))
            rest = resumed.poll()
            assert event_tuples(first) + event_tuples(rest) == full

    def test_unknown_cursor_version_rejected(self):
        with seeded_repo() as repo:
            sub = repo.subscribe()
            sub.seek(FeedCursor(999))
            with pytest.raises(InvalidParameterError):
                sub.poll()

    def test_unknown_branch_rejected(self):
        with seeded_repo() as repo:
            with pytest.raises(UnknownBranchError):
                repo.subscribe("missing")

    def test_iteration_drains_to_head(self):
        with seeded_repo() as repo:
            assert event_tuples(list(repo.subscribe())) == \
                event_tuples(repo.subscribe().poll())

    def test_captured_change_log_equals_structural_diff(self, tmp_path):
        # with an index registered, commits capture their write delta as
        # a change log and polls answer from it; after a reopen the log
        # is gone and the same commits replay via the structural diff —
        # the two paths must produce the identical stream
        directory = os.path.join(str(tmp_path), "db")
        with Repository.open(directory, num_shards=2) as repo:
            repo.register_index("group", extract_group)
            branch = repo.default_branch
            branch.put(b"a1", b"g0:one")
            branch.put(b"b1", b"g1:two")
            branch.commit("c0")
            branch.put(b"a1", b"g1:edit")
            branch.remove(b"b1")
            branch.put(b"c1", b"g2:three")
            branch.commit("c1")
            head = branch.head.version
            assert repo.service.feed_entries(head) is not None
            live = repo.subscribe().poll()
        with Repository.open(directory, num_shards=2) as repo:
            assert repo.service.feed_entries(head) is None
            replayed = repo.subscribe().poll()
        assert event_tuples(replayed) == event_tuples(live)
        assert [e.digest for e in replayed] == [e.digest for e in live]


class TestMaterializedView:
    def test_view_matches_recompute_under_updates(self):
        with seeded_repo() as repo:
            branch = repo.default_branch
            view = MaterializedCountView(repo.subscribe(), extract_group)
            view.refresh()
            assert view.counts() == MaterializedCountView.recompute(
                branch, extract_group)
            # an update batch moving keys between groups
            branch.put(b"a1", b"g2:moved")
            branch.put(b"c1", b"g0:moved")
            branch.remove(b"a2")
            branch.commit("churn")
            applied = view.refresh()
            assert applied == 3
            assert view.counts() == MaterializedCountView.recompute(
                branch, extract_group)

    def test_zero_counts_are_pruned(self):
        with Repository.open(num_shards=2) as repo:
            branch = repo.default_branch
            branch.put(b"k", b"g0:x")
            branch.commit("add")
            view = MaterializedCountView(repo.subscribe(), extract_group)
            view.refresh()
            assert view.count(b"g0") == 1
            branch.remove(b"k")
            branch.commit("drop")
            view.refresh()
            assert view.counts() == {}


class TestWireFeed:
    def test_wire_stream_equals_local_stream(self):
        with seeded_repo() as repo:
            with ServerThread(RepositoryServer(repo)) as address:
                with RemoteRepository(*address) as client:
                    remote = client.subscribe().poll()
                    local = repo.subscribe().poll()
                    assert event_tuples(remote) == event_tuples(local)
                    assert [e.digest for e in remote] == \
                        [e.digest for e in local]

    def test_disconnect_and_resume_is_exactly_once(self):
        with seeded_repo() as repo:
            with ServerThread(RepositoryServer(repo)) as address:
                with RemoteRepository(*address) as client:
                    full = event_tuples(client.subscribe().poll())
                for cut in range(len(full) + 1):
                    # a fresh client per cut: nothing but the cursor is shared
                    with RemoteRepository(*address) as client:
                        sub = client.subscribe()
                        first = []
                        while len(first) < cut:
                            got = sub.poll(limit=1)
                            assert got
                            first.extend(got)
                        saved = sub.cursor.as_tuple()
                    with RemoteRepository(*address) as client:
                        resumed = client.subscribe()
                        resumed.seek(FeedCursor(*saved))
                        rest = resumed.poll()
                    assert event_tuples(first) + event_tuples(rest) == full

    def test_wire_prefix_filter(self):
        with seeded_repo() as repo:
            with ServerThread(RepositoryServer(repo)) as address:
                with RemoteRepository(*address) as client:
                    events = client.subscribe(prefix=b"a").poll()
                    assert events
                    assert all(e.key.startswith(b"a") for e in events)

    def test_wire_errors_map_to_local_exceptions(self):
        with seeded_repo() as repo:
            with ServerThread(RepositoryServer(repo)) as address:
                with RemoteRepository(*address) as client:
                    with pytest.raises(UnknownBranchError):
                        client.subscribe(branch="missing")
                    sub = client.subscribe()
                    sub.seek(FeedCursor(999))
                    with pytest.raises(InvalidParameterError):
                        sub.poll()
