"""Tests validating the Section-4 cost models against the implementations."""

import pytest

from repro.analysis.bounds import (
    mbt_cost_model,
    mbt_lookup_cost,
    mbt_update_cost,
    mpt_cost_model,
    mpt_lookup_cost,
    mvmbt_cost_model,
    pos_lookup_cost,
    pos_tree_cost_model,
    predicted_deduplication_ratio,
)
from repro.indexes import MerkleBucketTree, POSTree
from repro.storage.memory import InMemoryNodeStore


class TestFormulaShapes:
    def test_mpt_lookup_dominated_by_key_length(self):
        """For realistic key lengths L > log_m N, the bound is O(L)."""
        assert mpt_lookup_cost(10**6, key_length_nibbles=64) == 64
        # When the key is shorter than log_m N, the tree-height term dominates.
        assert mpt_lookup_cost(10**9, key_length_nibbles=4) > 4

    def test_mbt_lookup_grows_with_n_over_b(self):
        small = mbt_lookup_cost(10_000, buckets=1_000, fanout=4)
        large = mbt_lookup_cost(1_000_000, buckets=1_000, fanout=4)
        assert large > small

    def test_mbt_update_linear_in_bucket_size(self):
        cost_1x = mbt_update_cost(100_000, buckets=1_000, fanout=4)
        cost_10x = mbt_update_cost(1_000_000, buckets=1_000, fanout=4)
        assert cost_10x / cost_1x > 5  # dominated by the N/B term

    def test_pos_lookup_logarithmic(self):
        assert pos_lookup_cost(16**4, fanout=16) == pytest.approx(4)
        assert pos_lookup_cost(16**6, fanout=16) == pytest.approx(6)

    def test_mbt_loses_to_pos_once_buckets_saturate(self):
        """The crossover the paper describes: MBT's lookup/update cost keeps
        growing with N at fixed B, while POS-Tree's grows only
        logarithmically, so MBT eventually loses."""
        pos = pos_tree_cost_model(fanout=16)
        mbt = mbt_cost_model(buckets=1_000, fanout=4)
        mbt_growth = mbt.lookup(10_000_000) - mbt.lookup(10_000)
        pos_growth = pos.lookup(10_000_000) - pos.lookup(10_000)
        assert mbt_growth > pos_growth
        assert mbt.update(1_000_000) > pos.update(1_000_000)

    def test_diff_costs_scale_with_delta(self):
        for model in (mpt_cost_model(), mbt_cost_model(), pos_tree_cost_model(), mvmbt_cost_model()):
            assert model.diff(10**5, 10) < model.diff(10**5, 1000)
            assert model.merge(10**5, 10) == model.diff(10**5, 10)

    def test_models_have_names(self):
        assert mpt_cost_model().name == "MPT"
        assert "cost model" in mbt_cost_model().describe()


class TestDedupPrediction:
    def test_eta_decreases_linearly_with_alpha(self):
        assert predicted_deduplication_ratio(0.0) == pytest.approx(0.5)
        assert predicted_deduplication_ratio(0.5) == pytest.approx(0.25)
        assert predicted_deduplication_ratio(1.0) == pytest.approx(0.0)

    def test_mpt_prediction_depends_on_key_lengths(self):
        favourable = predicted_deduplication_ratio(0.2, "MPT", key_length=20, mean_key_length=10)
        unfavourable = predicted_deduplication_ratio(0.2, "MPT", key_length=5, mean_key_length=10)
        assert favourable >= unfavourable

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ValueError):
            predicted_deduplication_ratio(1.5)


class TestEmpiricalAgreement:
    """The implementations' observed access patterns follow the predicted trends."""

    def test_mbt_lookup_work_grows_with_records_at_fixed_buckets(self):
        store = InMemoryNodeStore()
        tree = MerkleBucketTree(store, capacity=32, fanout=4)
        small = tree.from_items({f"k{i:05d}".encode(): b"v" * 10 for i in range(400)})
        large = small.update({f"x{i:05d}".encode(): b"v" * 10 for i in range(4_000)})

        tree.buckets_scanned_entries = 0
        for i in range(0, 400, 20):
            small.get(f"k{i:05d}")
        small_scanned = tree.buckets_scanned_entries

        tree.buckets_scanned_entries = 0
        for i in range(0, 400, 20):
            large.get(f"k{i:05d}")
        large_scanned = tree.buckets_scanned_entries

        assert large_scanned > 5 * small_scanned

    def test_pos_tree_depth_grows_logarithmically(self):
        store = InMemoryNodeStore()
        tree = POSTree(store, target_node_size=512, estimated_entry_size=32)
        small = tree.from_items({f"k{i:05d}".encode(): b"v" * 8 for i in range(200)})
        large = tree.from_items({f"k{i:05d}".encode(): b"v" * 8 for i in range(6_000)})
        assert small.height() <= large.height() <= small.height() + 3
