"""Tests for latency recording and histogram binning."""

import pytest

from repro.analysis.histogram import LatencyHistogram, LatencyRecorder


class TestLatencyRecorder:
    def test_record_and_summary(self):
        recorder = LatencyRecorder()
        for value in [0.001, 0.002, 0.003, 0.004, 0.010]:
            recorder.record(value)
        summary = recorder.summary()
        assert summary["count"] == 5
        assert summary["mean"] == pytest.approx(0.004)
        assert summary["max"] == 0.010
        assert summary["p50"] == 0.003

    def test_empty_recorder_summary(self):
        recorder = LatencyRecorder()
        summary = recorder.summary()
        assert summary["count"] == 0
        assert summary["mean"] == 0.0
        assert recorder.percentile(0.99) == 0.0

    def test_time_helper_returns_result_and_records(self):
        recorder = LatencyRecorder()
        result = recorder.time(lambda: sum(range(1000)))
        assert result == sum(range(1000))
        assert len(recorder) == 1
        assert recorder.samples[0] > 0

    def test_percentiles_ordered(self):
        recorder = LatencyRecorder()
        for i in range(100):
            recorder.record(i / 1000)
        assert recorder.percentile(0.5) <= recorder.percentile(0.9) <= recorder.percentile(0.99)


class TestLatencyHistogram:
    def test_bins_cover_all_samples(self):
        samples = [i / 100 for i in range(100)]
        histogram = LatencyHistogram.from_samples(samples, bins=10)
        assert histogram.total() == 100
        assert len(histogram.counts) == 10
        assert len(histogram.bin_edges) == 10

    def test_empty_samples(self):
        histogram = LatencyHistogram.from_samples([], bins=5)
        assert histogram.series() == []
        assert histogram.total() == 0
        assert histogram.mode_bin() == (0.0, 0)

    def test_identical_samples_single_bin(self):
        histogram = LatencyHistogram.from_samples([0.5] * 20, bins=4)
        assert histogram.total() == 20
        assert max(histogram.counts) == 20

    def test_explicit_range(self):
        histogram = LatencyHistogram.from_samples([0.2, 0.4, 2.0], bins=4, lower=0.0, upper=1.0)
        # The out-of-range sample lands in the last bin rather than being lost.
        assert histogram.total() == 3

    def test_mode_bin(self):
        samples = [0.1] * 5 + [0.9] * 20
        edge, count = LatencyHistogram.from_samples(samples, bins=4).mode_bin()
        assert count == 20
        assert edge > 0.5

    def test_invalid_bins_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram.from_samples([1.0], bins=0)

    def test_recorder_histogram_integration(self):
        recorder = LatencyRecorder()
        for i in range(50):
            recorder.record(0.001 * (i % 5 + 1))
        histogram = recorder.histogram(bins=5)
        assert histogram.total() == 50
