"""Tests for tree-shape statistics (Figure 9 support)."""

from repro.analysis.treestats import average_depth, depth_distribution, tree_statistics
from tests.conftest import build_index
from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, POSTree


class TestDepthDistribution:
    def test_distribution_counts_all_probes(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        keys = sorted(small_dataset)[:50]
        distribution = depth_distribution(snapshot, keys)
        assert sum(distribution.values()) == 50
        assert all(depth >= 1 for depth in distribution)

    def test_mbt_depth_is_single_valued(self):
        index = build_index(MerkleBucketTree)
        snapshot = index.from_items({f"k{i}".encode(): b"v" for i in range(500)})
        distribution = depth_distribution(snapshot, [f"k{i}".encode() for i in range(100)])
        assert len(distribution) == 1

    def test_mpt_depth_has_multiple_peaks(self):
        """MPT lookups terminate at different levels — the paper's Figure 9."""
        index = build_index(MerklePatriciaTrie)
        items = {f"{i:04d}".encode(): b"v" for i in range(400)}
        items[b"outlier-very-long-key-with-unique-prefix"] = b"v"
        snapshot = index.from_items(items)
        distribution = depth_distribution(snapshot, list(items))
        assert len(distribution) >= 2

    def test_average_depth(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        keys = sorted(small_dataset)[:20]
        mean = average_depth(snapshot, keys)
        assert 1 <= mean <= snapshot.height()
        assert average_depth(snapshot, []) == 0.0


class TestTreeStatistics:
    def test_statistics_fields(self, any_index, small_dataset):
        snapshot = any_index.from_items(small_dataset)
        stats = tree_statistics(snapshot)
        assert stats["records"] == len(small_dataset)
        assert stats["nodes"] == len(snapshot.node_digests())
        assert stats["total_bytes"] > 0
        assert stats["avg_node_bytes"] <= stats["max_node_bytes"]
        assert stats["height"] == snapshot.height()

    def test_node_size_reflects_target(self):
        small_nodes = POSTree(build_index(POSTree).store, target_node_size=256,
                              estimated_entry_size=32)
        snapshot = small_nodes.from_items({f"k{i:04d}".encode(): b"v" * 20 for i in range(2_000)})
        stats = tree_statistics(snapshot)
        assert stats["avg_node_bytes"] < 2_000
