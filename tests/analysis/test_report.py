"""Tests for the plain-text report formatting."""

from repro.analysis.report import format_series, format_table, print_experiment


class TestFormatTable:
    def test_alignment_and_headers(self):
        table = format_table(["name", "value"], [["a", 1], ["long-name", 123456]])
        lines = table.splitlines()
        assert "name" in lines[0] and "value" in lines[0]
        assert set(lines[1].replace(" ", "")) == {"-"}
        assert len(lines) == 4
        # All rows have equal rendered width.
        assert len({len(line) for line in lines}) == 1

    def test_title_rendering(self):
        table = format_table(["x"], [[1]], title="My Title")
        assert table.splitlines()[0] == "My Title"
        assert table.splitlines()[1] == "=" * len("My Title")

    def test_float_formatting(self):
        table = format_table(["v"], [[0.123456], [12345.6], [12.34]])
        assert "0.1235" in table
        assert "12,346" in table
        assert "12.3" in table

    def test_zero_renders_compactly(self):
        assert "0" in format_table(["v"], [[0.0]])


class TestFormatSeries:
    def test_series_columns(self):
        text = format_series("N", [1, 2, 3], {"POS-Tree": [10, 20, 30], "MPT": [5, 6, 7]})
        lines = text.splitlines()
        assert "POS-Tree" in lines[0] and "MPT" in lines[0]
        assert len(lines) == 2 + 3

    def test_missing_trailing_values_rendered_empty(self):
        text = format_series("x", [1, 2], {"partial": [9]})
        assert text.splitlines()[-1].strip().startswith("2")


class TestPrintExperiment:
    def test_prints_title_and_body(self, capsys):
        print_experiment("Figure 99", "body text")
        captured = capsys.readouterr().out
        assert "Figure 99" in captured
        assert "body text" in captured
