"""Failure-injection tests: corruption, missing nodes, and recovery behaviour."""

import pytest

from repro.core.errors import CorruptNodeError, NodeNotFoundError, ProofVerificationError
from repro.storage.memory import InMemoryNodeStore
from tests.conftest import build_index


class TestCorruptionDetection:
    def test_verified_store_detects_bit_flips_on_read(self, index_class):
        store = InMemoryNodeStore(verify_on_read=True)
        index = build_index(index_class, store)
        snapshot = index.from_items({f"k{i}".encode(): b"v" * 30 for i in range(200)})

        victim = max(snapshot.node_digests(), key=store.size_of)
        original = store.get_bytes(victim)
        store.corrupt(victim, original[:-1] + bytes([original[-1] ^ 0x01]))

        with pytest.raises(CorruptNodeError):
            for key in snapshot.keys():
                snapshot.get(key)

    def test_unverified_store_still_detected_by_verify_all(self, index_class):
        store = InMemoryNodeStore()
        index = build_index(index_class, store)
        snapshot = index.from_items({f"k{i}".encode(): b"v" for i in range(100)})
        victim = next(iter(snapshot.node_digests()))
        store.corrupt(victim, b"attacker-controlled bytes")
        checked, corrupt = store.verify_all()
        assert victim in corrupt

    def test_tampered_value_invalidates_proofs(self, index_class):
        """Changing a stored value breaks either the proof chain or the binding."""
        store = InMemoryNodeStore()
        index = build_index(index_class, store)
        items = {f"k{i:03d}".encode(): b"honest-value" for i in range(150)}
        snapshot = index.from_items(items)
        trusted_root = snapshot.root_digest

        # The attacker rewrites a leaf in place (content-addressed stores make
        # this the only way to "change" data without touching the root).
        proof = snapshot.prove(b"k075")
        leaf_digest = None
        for digest in snapshot.node_digests():
            if store.get_bytes(digest) == proof.steps[-1].node_bytes:
                leaf_digest = digest
                break
        assert leaf_digest is not None
        tampered = store.get_bytes(leaf_digest).replace(b"honest-value", b"forged-value")
        store.corrupt(leaf_digest, tampered)

        forged_proof = snapshot.prove(b"k075")
        if forged_proof.value == b"honest-value":
            # The proof path did not touch the tampered copy; nothing to check.
            return
        with pytest.raises(ProofVerificationError):
            forged_proof.verify(trusted_root)


class TestMissingNodes:
    def test_missing_node_raises_node_not_found(self, index_class):
        store = InMemoryNodeStore()
        index = build_index(index_class, store)
        snapshot = index.from_items({f"k{i}".encode(): b"v" for i in range(300)})
        # Delete some non-root node.
        victim = next(d for d in snapshot.node_digests() if d != snapshot.root_digest)
        store.delete(victim)
        with pytest.raises(NodeNotFoundError):
            for key in snapshot.keys():
                snapshot.get(key)

    def test_unaffected_versions_survive_partial_loss(self, index_class):
        """Losing nodes unique to one version leaves other versions intact."""
        store = InMemoryNodeStore()
        index = build_index(index_class, store)
        v1 = index.from_items({f"k{i:03d}".encode(): b"v" * 10 for i in range(300)})
        v2 = v1.put(b"k000", b"changed")
        for digest in v2.node_digests() - v1.node_digests():
            store.delete(digest)
        # v1 is fully readable even though v2 lost its unique nodes.
        assert v1.to_dict() == {f"k{i:03d}".encode(): b"v" * 10 for i in range(300)}
        with pytest.raises(NodeNotFoundError):
            v2[b"k000"]
