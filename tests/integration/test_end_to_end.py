"""End-to-end integration tests combining indexes, workloads, versioning and storage."""

import pytest

from repro.core.metrics import deduplication_ratio, storage_breakdown
from repro.core.version import VersionGraph
from repro.storage.file import FileNodeStore
from repro.storage.memory import InMemoryNodeStore
from repro.workloads.collaboration import CollaborationWorkload
from repro.workloads.wiki import WikiDatasetGenerator
from repro.workloads.ycsb import YCSBConfig, YCSBWorkload
from tests.conftest import build_index


class TestVersionedWorkloadLifecycle:
    def test_ycsb_load_and_update_cycle(self, index_class):
        """Load a YCSB dataset in batches, run write batches, validate every version."""
        workload = YCSBWorkload(YCSBConfig(record_count=1_200, operation_count=600,
                                           write_ratio=1.0, batch_size=300, seed=21))
        index = build_index(index_class)
        graph = VersionGraph(clock=lambda: 0.0)

        snapshot = index.empty_snapshot()
        expected = {}
        for batch in workload.load_batches():
            snapshot = snapshot.update(batch)
            expected.update(batch)
            graph.commit(snapshot.root_digest, message="load batch")
        assert snapshot.to_dict() == expected

        versions = [snapshot]
        for batch in workload.operation_batches():
            puts = {op.key: op.value for op in batch if op.is_write}
            snapshot = snapshot.update(puts)
            expected.update(puts)
            versions.append(snapshot)
            graph.commit(snapshot.root_digest, message="update batch")

        assert snapshot.to_dict() == expected
        assert len(list(graph.log())) == len(versions) + 3
        # Page sharing across versions keeps the physical footprint below the
        # sum of the versions' logical footprints (how much below depends on
        # the index type and update spread — quantified by the benchmarks).
        breakdown = storage_breakdown(versions)
        assert breakdown.unique_bytes < breakdown.total_bytes
        assert 0.0 < breakdown.deduplication_ratio < 1.0

    def test_wiki_versions_on_file_store(self, tmp_path, index_class):
        """Versions written through a persistent store survive a reopen."""
        generator = WikiDatasetGenerator(page_count=300, versions=3,
                                         edits_per_version=30, new_pages_per_version=5, seed=22)
        directory = str(tmp_path / "store")
        store = FileNodeStore(directory)
        index = build_index(index_class, store)
        snapshot = index.from_items(generator.initial_dataset())
        roots = [snapshot.root_digest]
        expected = generator.initial_dataset()
        for version in generator.version_stream():
            snapshot = snapshot.update(version.changes)
            expected.update(version.changes)
            roots.append(snapshot.root_digest)

        reopened = build_index(index_class, FileNodeStore(directory))
        final = reopened.snapshot(roots[-1])
        assert final.to_dict() == expected
        first = reopened.snapshot(roots[0])
        assert first.to_dict() == generator.initial_dataset()


class TestMultiGroupCollaboration:
    def test_overlap_improves_dedup(self, siri_index_class):
        """More overlap across groups ⇒ more page sharing (Figure 17 trend)."""

        def run(overlap):
            workload = CollaborationWorkload(base_records=400, group_count=4,
                                             operations_per_group=800,
                                             overlap_ratio=overlap, batch_size=400, seed=23)
            store = InMemoryNodeStore()
            base_index = build_index(siri_index_class, store)
            base = base_index.from_items(workload.base_dataset())
            snapshots = []
            for group, batches in workload.all_groups():
                snapshot = base
                for batch in batches:
                    snapshot = snapshot.update(batch)
                snapshots.append(snapshot)
            return deduplication_ratio([base] + snapshots)

        assert run(0.9) > run(0.1)

    def test_all_groups_readable_from_shared_store(self, index_class):
        workload = CollaborationWorkload(base_records=200, group_count=3,
                                         operations_per_group=300, overlap_ratio=0.5,
                                         batch_size=150, seed=24)
        store = InMemoryNodeStore()
        index = build_index(index_class, store)
        base = index.from_items(workload.base_dataset())
        finals = []
        expectations = []
        for group, batches in workload.all_groups():
            snapshot = base
            expected = dict(workload.base_dataset())
            for batch in batches:
                snapshot = snapshot.update(batch)
                expected.update(batch)
            finals.append(snapshot)
            expectations.append(expected)
        for snapshot, expected in zip(finals, expectations):
            assert snapshot.to_dict() == expected
        breakdown = storage_breakdown([base] + finals)
        assert breakdown.unique_bytes <= breakdown.total_bytes
