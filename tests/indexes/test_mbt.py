"""Structure-specific tests for the Merkle Bucket Tree."""

import pytest

from repro.core.errors import InvalidParameterError
from repro.indexes.mbt import MerkleBucketTree
from repro.storage.memory import InMemoryNodeStore


def make_tree(capacity=16, fanout=4):
    return MerkleBucketTree(InMemoryNodeStore(), capacity=capacity, fanout=fanout)


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            MerkleBucketTree(InMemoryNodeStore(), capacity=0)
        with pytest.raises(InvalidParameterError):
            MerkleBucketTree(InMemoryNodeStore(), fanout=1)

    @pytest.mark.parametrize("capacity,fanout,expected_levels", [
        (1, 2, 1),
        (8, 2, 4),
        (16, 4, 3),
        (100, 10, 3),
        (1024, 4, 6),
    ])
    def test_level_count(self, capacity, fanout, expected_levels):
        tree = make_tree(capacity, fanout)
        assert tree.levels == expected_levels

    def test_bucket_assignment_stable_and_in_range(self):
        tree = make_tree(capacity=32)
        for i in range(200):
            key = f"key{i}".encode()
            bucket = tree.bucket_of(key)
            assert 0 <= bucket < 32
            assert tree.bucket_of(key) == bucket


class TestStructure:
    def test_fixed_node_count_regardless_of_data_size(self):
        """MBT's defining characteristic: the tree shape never changes."""
        tree = make_tree(capacity=16, fanout=4)
        small = tree.from_items({f"k{i}".encode(): b"v" for i in range(10)})
        large = small.update({f"x{i}".encode(): b"v" for i in range(500)})
        # 16 buckets + 4 internal + 1 root = 21 positions; page-set size can
        # only be smaller due to identical (e.g. empty) buckets deduplicating.
        assert len(small.node_digests()) <= 21
        assert len(large.node_digests()) <= 21
        assert small.height() == large.height() == 3

    def test_empty_buckets_deduplicate_to_one_node(self):
        tree = make_tree(capacity=64, fanout=4)
        snapshot = tree.from_items({b"only-one": b"record"})
        # 64 buckets exist logically, but 63 identical empty buckets are one
        # stored node.
        assert len(snapshot.node_digests()) < 64

    def test_bucket_growth_with_records(self):
        """Bucket (leaf) size grows linearly with N: the paper's N/B effect."""
        tree = make_tree(capacity=8, fanout=2)
        small = tree.from_items({f"k{i:04d}".encode(): b"v" * 10 for i in range(40)})
        large = tree.from_items({f"k{i:04d}".encode(): b"v" * 10 for i in range(400)})
        small_max = max(tree.store.size_of(d) for d in small.node_digests())
        large_max = max(tree.store.size_of(d) for d in large.node_digests())
        assert large_max > small_max * 5

    def test_lookup_depth_is_constant(self):
        tree = make_tree(capacity=16, fanout=4)
        snapshot = tree.from_items({f"k{i}".encode(): b"v" for i in range(300)})
        depths = {snapshot.lookup_depth(f"k{i}".encode()) for i in range(0, 300, 17)}
        assert depths == {3}

    def test_records_sorted_within_buckets(self):
        tree = make_tree(capacity=4, fanout=2)
        snapshot = tree.from_items({f"k{i:03d}".encode(): b"v" for i in range(50)})
        for digest in snapshot.index._bucket_digests(snapshot.root_digest):
            entries = tree._deserialize_bucket(tree._get_node(digest))
            keys = [k for k, _ in entries]
            assert keys == sorted(keys)


class TestOperations:
    def test_update_changes_only_bucket_path(self):
        tree = make_tree(capacity=64, fanout=4)
        v1 = tree.from_items({f"k{i:04d}".encode(): b"v" * 20 for i in range(500)})
        v2 = v1.put(b"k0007", b"changed")
        new_pages = v2.node_digests() - v1.node_digests()
        # Only the bucket holding k0007 plus its ancestors are new.
        assert len(new_pages) <= tree.levels

    def test_structural_invariance_under_batching(self):
        items = {f"key{i:04d}".encode(): f"val{i}".encode() for i in range(300)}
        one_shot = make_tree(capacity=32).from_items(items)
        tree2 = make_tree(capacity=32)
        incremental = tree2.empty_snapshot()
        ordered = sorted(items.items(), reverse=True)
        for start in range(0, len(ordered), 37):
            incremental = incremental.update(dict(ordered[start : start + 37]))
        assert one_shot.root_digest == incremental.root_digest

    def test_different_capacity_gives_different_roots(self):
        items = {f"k{i}".encode(): b"v" for i in range(50)}
        a = make_tree(capacity=8).from_items(items)
        b = make_tree(capacity=16).from_items(items)
        assert a.root_digest != b.root_digest

    def test_remove_then_empty_bucket_matches_fresh_tree(self):
        tree = make_tree(capacity=8, fanout=2)
        with_extra = tree.from_items({b"keep": b"1", b"drop": b"2"})
        only_keep = with_extra.remove(b"drop")
        fresh = tree.from_items({b"keep": b"1"})
        assert only_keep.root_digest == fresh.root_digest

    def test_write_empty_batch_returns_same_root(self):
        tree = make_tree()
        snapshot = tree.from_items({b"a": b"1"})
        assert tree.write(snapshot.root_digest, {}, []) == snapshot.root_digest

    def test_instrumentation_counters_advance(self):
        tree = make_tree(capacity=16, fanout=4)
        snapshot = tree.from_items({f"k{i}".encode(): b"v" for i in range(100)})
        before = tree.buckets_scanned_entries
        snapshot.get(b"k50")
        assert tree.buckets_scanned_entries > before
        assert tree.internal_nodes_traversed > 0


class TestDiff:
    def test_bucket_aligned_diff(self):
        tree = make_tree(capacity=32, fanout=4)
        v1 = tree.from_items({f"k{i:04d}".encode(): b"value" for i in range(400)})
        v2 = v1.update({b"k0100": b"changed", b"new-key": b"added"})
        differences = {key: (left, right)
                       for key, left, right in tree.iterate_diff(v1.root_digest, v2.root_digest)}
        assert differences == {
            b"k0100": (b"value", b"changed"),
            b"new-key": (None, b"added"),
        }

    def test_diff_of_identical_roots_is_empty(self):
        tree = make_tree()
        snapshot = tree.from_items({b"a": b"1"})
        assert list(tree.iterate_diff(snapshot.root_digest, snapshot.root_digest)) == []
