"""Diffs against the empty version: complete, symmetric, and read-only.

Replication pulls a blank replica up to date by diffing a populated root
against ``None``, so the ``iterate_diff`` edge where one side is the
empty version must behave exactly like any other diff — and, because
sync runs it on *read* paths, it must never write to the node store
(MBT's cached empty bucket used to be materialized on first use, which
turned a read-only diff into a store mutation).
"""

from __future__ import annotations

import pytest

from repro.storage.memory import InMemoryNodeStore
from tests.conftest import SIRI_INDEXES, build_index

DATASET = {f"key{i:03d}".encode(): f"value{i}".encode() for i in range(120)}


@pytest.fixture(params=SIRI_INDEXES, ids=lambda cls: cls.name)
def tree(request):
    return build_index(request.param, InMemoryNodeStore())


class TestEmptySideDiff:
    def test_empty_to_populated_lists_every_entry_as_added(self, tree):
        snap = tree.from_items(DATASET)
        entries = {key: (left, right)
                   for key, left, right
                   in tree.iterate_diff(None, snap.root_digest)}
        assert entries == {key: (None, value) for key, value in DATASET.items()}

    def test_populated_to_empty_lists_every_entry_as_removed(self, tree):
        snap = tree.from_items(DATASET)
        entries = {key: (left, right)
                   for key, left, right
                   in tree.iterate_diff(snap.root_digest, None)}
        assert entries == {key: (value, None) for key, value in DATASET.items()}

    def test_empty_to_empty_is_empty(self, tree):
        assert list(tree.iterate_diff(None, None)) == []

    def test_empty_side_diff_never_writes_to_the_store(self, tree):
        """The bug this file pins down: diffing must be read-only.

        A fresh index instance over the populated store simulates sync's
        parser-side usage — no warm caches, nothing pre-materialized.
        """
        snap = tree.from_items(DATASET)
        reader = build_index(type(tree), tree.store)
        before = set(tree.store.digests())
        list(reader.iterate_diff(None, snap.root_digest))
        list(reader.iterate_diff(snap.root_digest, None))
        list(reader.iterate_diff(None, None))
        assert set(tree.store.digests()) == before

    def test_empty_diff_matches_update_diff(self, tree):
        """Empty-side diffs agree with the ordinary two-version diff."""
        snap = tree.from_items(DATASET)
        grown = snap.update({b"brand-new": b"entry"})
        via_empty = {key: right
                     for key, _, right
                     in tree.iterate_diff(None, grown.root_digest)}
        assert via_empty == {**DATASET, b"brand-new": b"entry"}
        incremental = {key: (left, right)
                       for key, left, right
                       in tree.iterate_diff(snap.root_digest, grown.root_digest)}
        assert incremental == {b"brand-new": (None, b"entry")}
