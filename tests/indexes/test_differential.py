"""Property-based differential harness across the three SIRI candidates.

One randomized operation sequence — puts, deletes, overwrites, historical
gets, diffs — is replayed through MPT, MBT and POS-Tree side by side,
with a plain dictionary as the reference model.  The paper's central
claim is that the three structures are *interchangeable* behind the same
operations (Section 4's shared interface); this harness checks that
interchangeability mechanically rather than scenario by scenario:

* after every batch, all three indexes agree with the model (and hence
  with each other) on full content and on point lookups;
* historical snapshots taken at checkpoints keep answering identically
  long after later batches ran (copy-on-write version stability);
* structural diffs between any two checkpoints report the same
  key/left/right entries in all three structures;
* root hashes behave self-consistently: same structure + same data ⇒
  same root regardless of operation history (structural invariance /
  history independence), changed data ⇒ changed root, and reverting the
  change restores the original root.

The sequences are generated from seeded ``random.Random`` instances, so
failures reproduce exactly; widen the seed range for a deeper local hunt.
"""

import random

import pytest

from tests.conftest import SIRI_INDEXES, build_index

SEEDS = range(6)
BATCHES = 12
OPS_PER_BATCH = 24
KEY_SPACE = 140


def _key(rng):
    return f"dk:{rng.randrange(KEY_SPACE):04d}".encode()


def _value(rng):
    return bytes(rng.getrandbits(8) for _ in range(rng.randint(1, 60)))


def _random_batch(rng, model):
    """One batch of puts/overwrites/deletes; returns (puts, removes).

    Deletes prefer keys that exist so they exercise real removals, and a
    key never appears in both the puts and removes of one batch (matching
    the coalescing discipline of every write path in the library).
    """
    puts, removes = {}, set()
    for _ in range(rng.randrange(1, OPS_PER_BATCH + 1)):
        roll = rng.random()
        if roll < 0.15 and model:
            key = rng.choice(sorted(model))
            if key not in puts:
                removes.add(key)
        elif roll < 0.45 and model:
            key = rng.choice(sorted(model))  # overwrite an existing key
            removes.discard(key)
            puts[key] = _value(rng)
        else:
            key = _key(rng)
            removes.discard(key)
            puts[key] = _value(rng)
    return puts, removes


def _replay(seed):
    """Replay one randomized sequence through all three SIRI indexes.

    Returns ``(snapshots, checkpoints)`` where ``checkpoints`` is a list
    of ``(model_state, {index_name: snapshot})`` taken after every batch.
    """
    rng = random.Random(seed)
    indexes = {cls.name: build_index(cls) for cls in SIRI_INDEXES}
    snapshots = {name: index.empty_snapshot() for name, index in indexes.items()}
    model = {}
    checkpoints = []
    for _ in range(BATCHES):
        puts, removes = _random_batch(rng, model)
        model.update(puts)
        for key in removes:
            model.pop(key, None)
        snapshots = {
            name: snapshot.update(puts, removes=removes)
            for name, snapshot in snapshots.items()
        }
        checkpoints.append((dict(model), dict(snapshots)))
    return snapshots, checkpoints


@pytest.mark.parametrize("seed", SEEDS)
def test_indexes_agree_with_model_and_each_other(seed):
    rng = random.Random(seed * 7919 + 1)
    _, checkpoints = _replay(seed)
    for model, snapshots in checkpoints:
        for name, snapshot in snapshots.items():
            assert snapshot.to_dict() == model, f"{name} diverged from the model"
            assert len(snapshot) == len(model)
        # Point lookups, including misses, answer identically everywhere.
        probes = [f"dk:{rng.randrange(KEY_SPACE):04d}".encode() for _ in range(20)]
        for probe in probes:
            expected = model.get(probe)
            for name, snapshot in snapshots.items():
                assert snapshot.get(probe) == expected, (name, probe)


@pytest.mark.parametrize("seed", SEEDS)
def test_historical_snapshots_stay_readable(seed):
    """Checkpoints answer from their own era after every later batch ran."""
    _, checkpoints = _replay(seed)
    for model, snapshots in checkpoints:
        for name, snapshot in snapshots.items():
            assert snapshot.to_dict() == model, (
                f"{name} checkpoint mutated by later writes"
            )


@pytest.mark.parametrize("seed", SEEDS)
def test_diffs_identical_across_indexes(seed):
    _, checkpoints = _replay(seed)
    # Diff a handful of checkpoint pairs, including non-adjacent ones.
    pairs = [(0, 1), (0, len(checkpoints) - 1),
             (len(checkpoints) // 2, len(checkpoints) - 1)]
    for left_index, right_index in pairs:
        left_model, left_snaps = checkpoints[left_index]
        right_model, right_snaps = checkpoints[right_index]
        expected = []
        for key in sorted(set(left_model) | set(right_model)):
            left_value, right_value = left_model.get(key), right_model.get(key)
            if left_value != right_value:
                expected.append((key, left_value, right_value))
        for name in left_snaps:
            diff = left_snaps[name].diff(right_snaps[name])
            # Entry order is structure-specific (MBT reports in bucket
            # order); the cross-index contract is on the *set* of entries.
            actual = sorted((entry.key, entry.left, entry.right) for entry in diff)
            assert actual == expected, f"{name} diff disagrees with the model"


@pytest.mark.parametrize("seed", SEEDS)
def test_same_data_same_root_regardless_of_history(seed):
    """Structural invariance: rebuilding final content from scratch, in one
    batch, reproduces the incrementally-built root for every structure."""
    final_snapshots, checkpoints = _replay(seed)
    final_model, _ = checkpoints[-1]
    for cls in SIRI_INDEXES:
        incremental = final_snapshots[cls.name]
        rebuilt = build_index(cls).from_items(final_model)
        assert rebuilt.root_digest == incremental.root_digest, (
            f"{cls.name} root depends on operation history"
        )
        # Shuffled single-key insertion order must not matter either.
        shuffled = build_index(cls).empty_snapshot()
        items = list(final_model.items())
        random.Random(seed + 1).shuffle(items)
        for key, value in items:
            shuffled = shuffled.put(key, value)
        assert shuffled.root_digest == incremental.root_digest, (
            f"{cls.name} root depends on insertion order"
        )


@pytest.mark.parametrize("seed", SEEDS)
def test_changed_data_changes_root_and_revert_restores_it(seed):
    final_snapshots, checkpoints = _replay(seed)
    final_model, _ = checkpoints[-1]
    if not final_model:
        pytest.skip("sequence deleted everything")
    victim = sorted(final_model)[0]
    original_value = final_model[victim]
    for name, snapshot in final_snapshots.items():
        mutated = snapshot.put(victim, original_value + b"+tamper")
        assert mutated.root_digest != snapshot.root_digest, (
            f"{name} root blind to a value change"
        )
        reverted = mutated.put(victim, original_value)
        assert reverted.root_digest == snapshot.root_digest, (
            f"{name} root not restored by reverting the change"
        )
        # Writing back the value a key already holds is a no-op root-wise.
        unchanged = snapshot.put(victim, original_value)
        assert unchanged.root_digest == snapshot.root_digest


@pytest.mark.parametrize("seed", SEEDS)
def test_deleting_everything_returns_to_the_empty_root(seed):
    final_snapshots, checkpoints = _replay(seed)
    final_model, _ = checkpoints[-1]
    for name, snapshot in final_snapshots.items():
        emptied = snapshot.remove(*final_model.keys())
        assert emptied.root_digest is None, f"{name} left residue after full delete"
        assert emptied.to_dict() == {}
