"""Structure-specific tests for the Pattern-Oriented-Split Tree."""

import random

import pytest

from repro.core.errors import InvalidParameterError
from repro.indexes.pos_tree import POSTree
from repro.storage.memory import InMemoryNodeStore


def make_tree(store=None, **kwargs):
    params = {"target_node_size": 512, "estimated_entry_size": 64}
    params.update(kwargs)
    return POSTree(store or InMemoryNodeStore(), **params)


def make_items(count, value_size=40, seed=0):
    rng = random.Random(seed)
    return {
        f"key{i:06d}".encode(): bytes(rng.getrandbits(8) for _ in range(value_size))
        for i in range(count)
    }


class TestConfiguration:
    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            POSTree(InMemoryNodeStore(), target_node_size=0)
        with pytest.raises(InvalidParameterError):
            POSTree(InMemoryNodeStore(), estimated_entry_size=-1)

    def test_pattern_bits_derived_from_target_size(self):
        small_nodes = POSTree(InMemoryNodeStore(), target_node_size=512, estimated_entry_size=64)
        large_nodes = POSTree(InMemoryNodeStore(), target_node_size=4096, estimated_entry_size=64)
        assert large_nodes.leaf_pattern_bits > small_nodes.leaf_pattern_bits

    def test_explicit_pattern_bits_override(self):
        tree = POSTree(InMemoryNodeStore(), leaf_pattern_bits=7, internal_pattern_bits=3)
        assert tree.leaf_pattern_bits == 7
        assert tree.internal_pattern_bits == 3

    def test_node_size_tracks_target(self):
        items = make_items(3_000)
        small = make_tree(target_node_size=256).from_items(items)
        large = make_tree(target_node_size=2048).from_items(items)

        def average_leaf_size(snapshot):
            index = snapshot.index
            leaves = index._leaf_descriptors(snapshot.root_digest)
            return sum(index.store.size_of(d) for _, d in leaves) / len(leaves)

        assert average_leaf_size(large) > 2 * average_leaf_size(small)


class TestStructuralInvariance:
    def test_incremental_updates_equal_from_scratch_build(self):
        """The heart of POS-Tree: any update path converges to the canonical tree."""
        base_items = make_items(2_000)
        tree = make_tree()
        snapshot = tree.from_items(base_items)

        updates = {f"key{i:06d}".encode(): b"updated-value-%d" % i for i in range(500, 700)}
        inserts = {f"zzz{i:04d}".encode(): b"inserted-%d" % i for i in range(50)}
        removes = [f"key{i:06d}".encode() for i in range(100, 130)]
        snapshot = snapshot.update(updates)
        snapshot = snapshot.update(inserts, removes=removes)

        final_items = dict(base_items)
        final_items.update(updates)
        final_items.update(inserts)
        for key in removes:
            final_items.pop(key)
        scratch = make_tree().from_items(final_items)
        assert snapshot.root_digest == scratch.root_digest
        assert snapshot.to_dict() == final_items

    def test_insertion_order_and_batching_do_not_matter(self):
        items = list(make_items(800).items())
        roots = set()
        for seed, batch in [(1, 50), (2, 117), (3, 800)]:
            shuffled = list(items)
            random.Random(seed).shuffle(shuffled)
            tree = make_tree()
            snapshot = tree.empty_snapshot()
            for start in range(0, len(shuffled), batch):
                snapshot = snapshot.update(dict(shuffled[start : start + batch]))
            roots.add(snapshot.root_digest)
        assert len(roots) == 1

    def test_remove_restores_canonical_structure(self):
        items = make_items(500)
        tree = make_tree()
        base = tree.from_items(items)
        modified = base.update({b"extra-1": b"x", b"extra-2": b"y"})
        restored = modified.remove(b"extra-1", b"extra-2")
        assert restored.root_digest == base.root_digest


class TestCopyOnWriteLocality:
    def test_small_update_touches_few_nodes(self):
        tree = make_tree()
        v1 = tree.from_items(make_items(3_000))
        v2 = v1.put(b"key001500", b"changed")
        new_nodes = v2.node_digests() - v1.node_digests()
        # Only the containing leaf plus the internal path should be new
        # (occasionally one neighbouring leaf when re-chunking cascades).
        assert len(new_nodes) <= v1.height() + 2

    def test_leaf_level_sharing_after_batch(self):
        tree = make_tree()
        v1 = tree.from_items(make_items(2_000))
        v2 = v1.update(make_items(50, seed=9))
        shared = v1.node_digests() & v2.node_digests()
        assert len(shared) > 0.5 * len(v1.node_digests())


class TestChunking:
    def test_leaf_boundary_is_pure_function_of_entry(self):
        tree = make_tree()
        key, value = b"some-key", b"some-value"
        assert tree._leaf_entry_is_boundary(key, value) == tree._leaf_entry_is_boundary(key, value)

    def test_internal_build_terminates_on_degenerate_input(self):
        """Even if every entry matches the boundary pattern, the build must
        terminate (degenerate-progress guard)."""
        tree = make_tree(internal_pattern_bits=1)
        snapshot = tree.from_items(make_items(400))
        assert snapshot.height() >= 2
        assert snapshot.to_dict() == make_items(400)

    def test_window_fingerprint_mode_also_works(self):
        tree = POSTree(InMemoryNodeStore(), target_node_size=512, estimated_entry_size=64,
                       leaf_fingerprint_mode="window")
        items = make_items(300)
        snapshot = tree.from_items(items)
        assert snapshot.to_dict() == items


class TestLeafDescriptors:
    def test_descriptors_cover_all_records_in_order(self):
        tree = make_tree()
        items = make_items(1_000)
        snapshot = tree.from_items(items)
        descriptors = tree._leaf_descriptors(snapshot.root_digest)
        seen = []
        for split_key, digest in descriptors:
            leaf_records = tree._load_leaf(digest)
            assert leaf_records[-1][0] == split_key
            seen.extend(k for k, _ in leaf_records)
        assert seen == sorted(items)

    def test_split_keys_strictly_increasing(self):
        tree = make_tree()
        snapshot = tree.from_items(make_items(1_000))
        descriptors = tree._leaf_descriptors(snapshot.root_digest)
        split_keys = [split for split, _ in descriptors]
        assert split_keys == sorted(split_keys)
        assert len(split_keys) == len(set(split_keys))

    def test_single_leaf_tree(self):
        tree = make_tree()
        snapshot = tree.from_items({b"a": b"1", b"b": b"2"})
        descriptors = tree._leaf_descriptors(snapshot.root_digest)
        assert len(descriptors) == 1
        assert snapshot.height() == 1


class TestEdgeCases:
    def test_write_empty_batch_is_identity(self):
        tree = make_tree()
        snapshot = tree.from_items({b"a": b"1"})
        assert tree.write(snapshot.root_digest, {}, []) == snapshot.root_digest

    def test_remove_everything_returns_none_root(self):
        tree = make_tree()
        snapshot = tree.from_items({b"a": b"1", b"b": b"2"})
        assert tree.write(snapshot.root_digest, {}, [b"a", b"b"]) is None

    def test_insert_before_and_after_existing_range(self):
        tree = make_tree()
        base = tree.from_items(make_items(200))
        extended = base.update({b"aaa-before-everything": b"front", b"zzz-after": b"back"})
        assert extended[b"aaa-before-everything"] == b"front"
        assert extended[b"zzz-after"] == b"back"
        assert list(extended.keys())[0] == b"aaa-before-everything"

    def test_large_values_supported(self):
        tree = make_tree()
        big = b"x" * 50_000
        snapshot = tree.from_items({b"big": big, b"small": b"s"})
        assert snapshot[b"big"] == big
