"""Differential tests for the bottom-up bulk builders (ISSUE 5).

History independence makes the bulk-ingest subsystem directly testable:
for every SIRI index, the root produced by :meth:`SIRIIndex.bulk_build`
(via ``from_items``) must be **byte-identical** to the root produced by
incremental insertion, for any key set and any insertion order.  These
tests pin that equivalence — randomized and hypothesis-driven, including
the empty, single-key and duplicate-key edge cases — plus the
remove-wins batch semantics now guaranteed by every ``write()``
implementation.
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, MVMBTree, POSTree
from tests.conftest import ALL_INDEXES, SIRI_INDEXES, build_index

KEYS = st.binary(min_size=0, max_size=12)
VALUES = st.binary(min_size=0, max_size=24)
DATASETS = st.dictionaries(KEYS, VALUES, max_size=64)


def incremental_root(index_class, items, batch_size=1, seed=0):
    """Insert ``items`` incrementally (shuffled, batched) and return the root."""
    snapshot = build_index(index_class).empty_snapshot()
    pairs = list(items.items())
    random.Random(seed).shuffle(pairs)
    for start in range(0, len(pairs), batch_size):
        snapshot = snapshot.update(dict(pairs[start:start + batch_size]))
    return snapshot.root_digest


class TestBulkEqualsIncremental:
    """bulk_build must reproduce incremental insertion byte for byte."""

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    @given(items=DATASETS, seed=st.integers(0, 2**16))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bulk_root_equals_incremental_root(self, index_class, items, seed):
        bulk = build_index(index_class).from_items(items)
        assert bulk.root_digest == incremental_root(index_class, items, seed=seed)
        assert dict(bulk.items()) == items

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    @given(items=DATASETS)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_bulk_root_equals_batched_incremental_root(self, index_class, items):
        bulk = build_index(index_class).from_items(items)
        assert bulk.root_digest == incremental_root(index_class, items,
                                                    batch_size=7, seed=1)

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_empty_input_builds_the_empty_root(self, index_class):
        snapshot = build_index(index_class).from_items({})
        assert snapshot.root_digest is None
        assert snapshot.is_empty()
        assert len(snapshot) == 0

    @pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
    def test_single_key(self, index_class):
        bulk = build_index(index_class).from_items({b"only": b"one"})
        single = build_index(index_class).empty_snapshot().put(b"only", b"one")
        assert bulk.root_digest == single.root_digest
        assert len(bulk) == 1
        assert bulk[b"only"] == b"one"

    @pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
    def test_duplicate_keys_coalesce_last_writer_wins(self, index_class):
        pairs = [(b"dup", b"first"), (b"other", b"x"), (b"dup", b"last")]
        bulk = build_index(index_class).from_items(pairs)
        assert bulk[b"dup"] == b"last"
        assert len(bulk) == 2
        expected = build_index(index_class).from_items(
            {b"dup": b"last", b"other": b"x"})
        assert bulk.root_digest == expected.root_digest

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_prefix_keys_and_empty_key(self, index_class):
        """Keys that are prefixes of each other (and b'') exercise the MPT
        terminating-branch-value and extension paths."""
        items = {b"": b"root", b"a": b"1", b"ab": b"2", b"abc": b"3",
                 b"abd": b"4", b"b": b"5"}
        bulk = build_index(index_class).from_items(items)
        assert bulk.root_digest == incremental_root(index_class, items, seed=3)
        assert dict(bulk.items()) == items

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_larger_randomized_dataset(self, index_class):
        rng = random.Random(42)
        items = {bytes(rng.randrange(256) for _ in range(rng.randrange(1, 10))):
                 bytes(rng.randrange(256) for _ in range(rng.randrange(0, 30)))
                 for _ in range(800)}
        bulk = build_index(index_class).from_items(items)
        assert bulk.root_digest == incremental_root(index_class, items,
                                                    batch_size=97, seed=5)
        assert len(bulk) == len(items)

    def test_mvmbt_default_builder_preserves_insertion_order_semantics(self):
        """The non-SIRI baseline keeps its order-dependent write path: the
        default bulk_build funnels through write(), so from_items stays
        bit-compatible with the seed implementation."""
        pairs = [(b"c", b"3"), (b"a", b"1"), (b"b", b"2")]
        via_from_items = build_index(MVMBTree).from_items(pairs)
        snapshot = build_index(MVMBTree).empty_snapshot().update(dict(pairs))
        assert via_from_items.root_digest == snapshot.root_digest


class TestRemoveWins:
    """A key in both puts and removes of one batch must end up removed."""

    @pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
    def test_remove_wins_on_empty_root(self, index_class):
        index = build_index(index_class)
        root = index.write(None, {b"keep": b"1", b"gone": b"2"}, removes=[b"gone"])
        assert index.lookup(root, b"keep") == b"1"
        assert index.lookup(root, b"gone") is None
        # The result is identical to never having put the removed key.
        clean = index.write(None, {b"keep": b"1"})
        assert root == clean

    @pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
    def test_remove_wins_on_existing_root(self, index_class):
        index = build_index(index_class)
        base = index.write(None, {b"a": b"1", b"b": b"2"})
        root = index.write(base, {b"b": b"updated", b"c": b"3"}, removes=[b"b"])
        assert index.lookup(root, b"b") is None
        assert index.lookup(root, b"a") == b"1"
        assert index.lookup(root, b"c") == b"3"

    @pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
    def test_removing_every_put_of_a_fresh_batch_yields_empty(self, index_class):
        index = build_index(index_class)
        root = index.write(None, {b"x": b"1"}, removes=[b"x"])
        assert root is None

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_remove_wins_batch_matches_sequential_application(self, index_class):
        """One conflicted batch == put batch then remove batch (two versions)."""
        index = build_index(index_class)
        base = index.write(None, {b"k%d" % i: b"v" for i in range(20)})
        batched = index.write(base, {b"k1": b"new", b"k21": b"new"},
                              removes=[b"k1", b"k5"])
        stepped = index.write(base, {b"k1": b"new", b"k21": b"new"})
        stepped = index.write(stepped, {}, removes=[b"k1", b"k5"])
        assert batched == stepped


class TestSnapshotRecordCountMaintenance:
    """IndexSnapshot.update must carry the cached count through writes.

    The SIRI indexes account for the delta as a free by-product of their
    write paths (write_counted); the MVMB+-Tree baseline cannot and
    degrades gracefully (cache dropped, len() falls back to iteration).
    """

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_count_survives_puts_and_removes(self, index_class):
        snapshot = build_index(index_class).from_items(
            {b"k%02d" % i: b"v" for i in range(10)})
        assert snapshot._record_count == 10

        grown = snapshot.put(b"new-key", b"v")
        assert grown._record_count == 11          # maintained, not recomputed
        assert len(grown) == 11

        overwritten = grown.put(b"k00", b"changed")
        assert overwritten._record_count == 11    # overwrite: no growth

        shrunk = overwritten.remove(b"k01", b"k02")
        assert shrunk._record_count == 9
        assert len(shrunk) == 9

        noop = shrunk.remove(b"never-existed")
        assert noop._record_count == 9

        conflicted = shrunk.update({b"put-and-removed": b"v", b"kept": b"v"},
                                   removes=[b"put-and-removed"])
        assert conflicted._record_count == 10     # remove-wins accounted
        assert len(conflicted) == sum(1 for _ in conflicted.items())

    @pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
    def test_count_matches_iteration_after_write_chain(self, index_class):
        rng = random.Random(9)
        snapshot = build_index(index_class).from_items(
            {b"seed%03d" % i: b"v" for i in range(50)})
        for _ in range(10):
            puts = {b"seed%03d" % rng.randrange(80): b"u" for _ in range(6)}
            removes = [b"seed%03d" % rng.randrange(80) for _ in range(3)]
            snapshot = snapshot.update(puts, removes=removes)
            assert snapshot._record_count is not None
            assert snapshot._record_count == sum(1 for _ in snapshot.items())

    def test_mvmbt_degrades_gracefully(self):
        """The baseline cannot account deltas for free: the cache is exact
        after from_items and on empty-root updates, dropped afterwards."""
        snapshot = build_index(MVMBTree).from_items({b"a": b"1", b"b": b"2"})
        assert snapshot._record_count == 2
        after = snapshot.put(b"c", b"3")
        assert after._record_count is None
        assert len(after) == 3  # iteration fallback stays correct

    def test_uncounted_snapshots_stay_uncounted(self):
        """Snapshots created without a count (the service's flush hot path)
        skip maintenance entirely — no hidden lookups per batch key."""
        index = build_index(POSTree)
        base = index.from_items({b"a": b"1"})
        uncounted = index.snapshot(base.root_digest)
        after = uncounted.put(b"b", b"2")
        assert after._record_count is None
        assert len(after) == 2  # falls back to iteration, still correct
