"""Structure-specific tests for the Merkle Patricia Trie."""

import random

import pytest

from repro.encoding.nibbles import bytes_to_nibbles
from repro.indexes.mpt import MerklePatriciaTrie, _Branch, _Extension, _Leaf
from repro.storage.memory import InMemoryNodeStore


@pytest.fixture
def trie():
    return MerklePatriciaTrie(InMemoryNodeStore())


class TestNodeSerialization:
    def test_leaf_round_trip(self, trie):
        node = _Leaf([1, 2, 3], b"value")
        restored = trie._deserialize(trie._serialize(node))
        assert isinstance(restored, _Leaf)
        assert restored.path == [1, 2, 3]
        assert restored.value == b"value"

    def test_extension_round_trip(self, trie):
        child = trie.store.put(b"child node")
        node = _Extension([0xA, 0xB], child)
        restored = trie._deserialize(trie._serialize(node))
        assert isinstance(restored, _Extension)
        assert restored.path == [0xA, 0xB]
        assert restored.child == child

    def test_branch_round_trip_with_and_without_value(self, trie):
        children = [None] * 16
        children[3] = trie.store.put(b"a child")
        with_value = trie._deserialize(trie._serialize(_Branch(children, b"val")))
        without_value = trie._deserialize(trie._serialize(_Branch(children, None)))
        assert with_value.value == b"val"
        assert without_value.value is None
        assert with_value.children[3] == children[3]
        assert with_value.children[0] is None

    def test_branch_empty_value_distinct_from_absent_value(self, trie):
        children = [None] * 16
        empty = trie._serialize(_Branch(children, b""))
        absent = trie._serialize(_Branch(children, None))
        assert empty != absent

    def test_unknown_tag_rejected(self, trie):
        with pytest.raises(ValueError):
            trie._deserialize(b"X???")


class TestTrieShape:
    def test_single_key_is_one_leaf(self, trie):
        snapshot = trie.from_items({b"\x12\x34": b"v"})
        assert len(snapshot.node_digests()) == 1
        assert snapshot.height() == 1

    def test_keys_sharing_prefix_create_extension(self, trie):
        snapshot = trie.from_items({b"\x12\x34": b"a", b"\x12\x35": b"b"})
        # Shared prefix nibbles 1,2,3 -> extension + branch + two leaves.
        kinds = set()
        for digest in snapshot.node_digests():
            kinds.add(trie._get_node(digest)[:1])
        assert kinds == {b"L", b"E", b"B"}
        assert snapshot[b"\x12\x34"] == b"a"
        assert snapshot[b"\x12\x35"] == b"b"

    def test_key_prefix_of_another_key(self, trie):
        """A key whose nibbles are a strict prefix of another key's nibbles
        terminates in a branch-node value slot."""
        snapshot = trie.from_items({b"\x12": b"short", b"\x12\x34": b"long"})
        assert snapshot[b"\x12"] == b"short"
        assert snapshot[b"\x12\x34"] == b"long"
        assert snapshot.to_dict() == {b"\x12": b"short", b"\x12\x34": b"long"}

    def test_empty_key_supported(self, trie):
        snapshot = trie.from_items({b"": b"root value", b"\x01": b"other"})
        assert snapshot[b""] == b"root value"
        assert snapshot.to_dict() == {b"": b"root value", b"\x01": b"other"}

    def test_lookup_depth_tracks_key_structure(self, trie):
        snapshot = trie.from_items({b"\x11\x11": b"a", b"\x11\x12": b"b", b"\x99": b"c"})
        assert snapshot.lookup_depth(b"\x99") <= snapshot.lookup_depth(b"\x11\x11")

    def test_height_grows_with_key_length(self):
        short_store, long_store = InMemoryNodeStore(), InMemoryNodeStore()
        short_keys = MerklePatriciaTrie(short_store).from_items(
            {bytes([i, j]): b"v" for i in range(8) for j in range(8)}
        )
        long_keys = MerklePatriciaTrie(long_store).from_items(
            {bytes([i, j]) + b"suffix-making-key-longer" * 2: b"v" for i in range(8) for j in range(8)}
        )
        assert short_keys.height() <= long_keys.height()


class TestStructuralInvariance:
    def test_insertion_order_does_not_matter(self):
        items = {f"key-{i:03d}".encode(): f"value-{i}".encode() for i in range(200)}
        roots = set()
        for seed in range(4):
            ordered = list(items.items())
            random.Random(seed).shuffle(ordered)
            trie = MerklePatriciaTrie(InMemoryNodeStore())
            snapshot = trie.empty_snapshot()
            for key, value in ordered:
                snapshot = snapshot.put(key, value)
            roots.add(snapshot.root_digest)
        assert len(roots) == 1

    def test_delete_restores_previous_root(self, trie):
        base_items = {f"key-{i:03d}".encode(): b"v" for i in range(100)}
        base = trie.from_items(base_items)
        extended = base.put(b"temporary", b"x")
        restored = extended.remove(b"temporary")
        assert restored.root_digest == base.root_digest

    def test_delete_collapses_paths_canonically(self, trie):
        """Deleting down to one key must produce the same trie as inserting
        just that key (branch/extension collapse)."""
        snapshot = trie.from_items({b"\x12\x34": b"keep", b"\x12\x35": b"drop", b"\x12\x44": b"drop2"})
        only = snapshot.remove(b"\x12\x35", b"\x12\x44")
        fresh = trie.from_items({b"\x12\x34": b"keep"})
        assert only.root_digest == fresh.root_digest

    def test_remove_all_returns_empty(self, trie):
        snapshot = trie.from_items({b"a": b"1", b"b": b"2"})
        empty = snapshot.remove(b"a", b"b")
        assert empty.root_digest is None
        assert empty.is_empty()


class TestDiffPruning:
    def test_iterate_diff_only_touches_changed_subtrees(self, trie):
        items = {f"prefix-{i:04d}".encode(): b"value" for i in range(500)}
        v1 = trie.from_items(items)
        v2 = v1.put(b"prefix-0123", b"changed")
        differences = list(trie.iterate_diff(v1.root_digest, v2.root_digest))
        assert differences == [(b"prefix-0123", b"value", b"changed")]

    def test_iterate_diff_against_empty(self, trie):
        v1 = trie.from_items({b"a": b"1", b"b": b"2"})
        added = list(trie.iterate_diff(None, v1.root_digest))
        assert {(key, right) for key, _, right in added} == {(b"a", b"1"), (b"b", b"2")}
        removed = list(trie.iterate_diff(v1.root_digest, None))
        assert all(right is None for _, _, right in removed)


class TestProofBinding:
    def test_branch_value_binding(self, trie):
        snapshot = trie.from_items({b"\x12": b"at-branch", b"\x12\x34": b"below"})
        proof = snapshot.prove(b"\x12")
        assert proof.verify(snapshot.root_digest)

    def test_binding_check_rejects_wrong_value(self, trie):
        snapshot = trie.from_items({b"\x12\x34": b"real"})
        leaf_bytes = trie._get_node(snapshot.root_digest)
        assert trie.proof_binding_check(leaf_bytes, b"\x12\x34", b"real")
        assert not trie.proof_binding_check(leaf_bytes, b"\x12\x34", b"forged")
