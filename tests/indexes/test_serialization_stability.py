"""Golden-digest regression tests for the canonical node serializations.

The whole design hinges on canonical serialization: two logically identical
nodes must produce byte-identical encodings (and therefore one shared
stored copy), and the root digest of a version must be reproducible across
processes, platforms and library versions — it is what block headers,
commits and proofs reference.  These tests pin the root digests of small,
fixed datasets; any change to a node format, hash composition or chunking
parameter defaults will (intentionally) fail them and must be treated as a
breaking format change.
"""

import pytest

from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, MVMBTree, POSTree
from tests.conftest import build_index

FIXED_ITEMS = {f"key{i:03d}".encode(): f"value-{i}".encode() for i in range(50)}

GOLDEN_ROOTS = {
    "MPT": "2b4ab1fd9743fec9fd5d29bd52a688659b44b6c6543a046e4ea27e716734864b",
    "MBT": "7b86ecd4de83431d77aefb2e36d3637854fdd24c5ce2de424d59f31a5794e4ba",
    "POS-Tree": "3ddad44439db6a3cf8270d0bffb410aad936700d251900a29c87779ceb66834f",
    "MVMB+-Tree": "6fc76527c7401102dcff0f8385c4052c62db2ce1337f280d531f885e4e085ff7",
}


class TestGoldenRootDigests:
    def test_root_digest_is_stable(self, index_class):
        snapshot = build_index(index_class).from_items(FIXED_ITEMS)
        assert snapshot.root_hex == GOLDEN_ROOTS[index_class.name]

    def test_rebuilding_reproduces_the_same_root(self, index_class):
        first = build_index(index_class).from_items(FIXED_ITEMS)
        second = build_index(index_class).from_items(FIXED_ITEMS)
        assert first.root_digest == second.root_digest

    def test_different_content_changes_the_root(self, index_class):
        baseline = build_index(index_class).from_items(FIXED_ITEMS)
        modified_items = dict(FIXED_ITEMS)
        modified_items[b"key000"] = b"value-0-changed"
        modified = build_index(index_class).from_items(modified_items)
        assert modified.root_hex != GOLDEN_ROOTS[index_class.name]
        assert baseline.root_digest != modified.root_digest

    def test_index_types_never_collide(self):
        """Different structures over the same data have different roots (their
        canonical serializations are tagged differently)."""
        roots = {
            name: build_index(cls).from_items(FIXED_ITEMS).root_hex
            for name, cls in (
                ("MPT", MerklePatriciaTrie),
                ("MBT", MerkleBucketTree),
                ("POS-Tree", POSTree),
                ("MVMB+-Tree", MVMBTree),
            )
        }
        assert len(set(roots.values())) == 4
