"""Structure-specific tests for the MVMB+-Tree baseline."""

import random

import pytest

from repro.core.errors import InvalidParameterError
from repro.indexes.mvmbt import MVMBTree
from repro.storage.memory import InMemoryNodeStore


def make_tree(store=None, leaf_capacity=4, internal_capacity=4):
    return MVMBTree(store or InMemoryNodeStore(), leaf_capacity=leaf_capacity,
                    internal_capacity=internal_capacity)


def make_items(count, seed=0):
    rng = random.Random(seed)
    return {f"key{i:05d}".encode(): bytes(rng.getrandbits(8) for _ in range(30)) for i in range(count)}


class TestConfiguration:
    def test_invalid_capacities_rejected(self):
        with pytest.raises(InvalidParameterError):
            MVMBTree(InMemoryNodeStore(), leaf_capacity=1)
        with pytest.raises(InvalidParameterError):
            MVMBTree(InMemoryNodeStore(), internal_capacity=0)


class TestBPlusTreeInvariants:
    def test_leaf_capacity_respected(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        snapshot = tree.from_items(make_items(300))
        for _, digest in tree._leaf_descriptors(snapshot.root_digest):
            assert len(tree._load_leaf(digest)) <= 4

    def test_internal_capacity_respected(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        snapshot = tree.from_items(make_items(300))
        for digest in snapshot.node_digests():
            node_bytes = tree._get_node(digest)
            if not tree._is_leaf_bytes(node_bytes):
                _, entries = tree._deserialize_internal(node_bytes)
                assert len(entries) <= 4

    def test_height_grows_logarithmically(self):
        tree = make_tree(leaf_capacity=4, internal_capacity=4)
        small = tree.from_items(make_items(20))
        large = tree.from_items(make_items(1_000))
        # Half-full splits mean the effective fan-out is ~capacity/2, so the
        # height of 1 000 records stays well below a linear structure's.
        assert small.height() < large.height() <= 12

    def test_root_split_grows_height_by_one(self):
        tree = make_tree(leaf_capacity=2, internal_capacity=2)
        snapshot = tree.empty_snapshot()
        heights = []
        for i in range(12):
            snapshot = snapshot.put(f"k{i:02d}".encode(), b"v")
            heights.append(snapshot.height())
        assert heights == sorted(heights)
        assert heights[-1] > heights[0]

    def test_iteration_sorted_after_random_inserts(self):
        items = make_items(400)
        ordered = list(items.items())
        random.Random(3).shuffle(ordered)
        tree = make_tree()
        snapshot = tree.empty_snapshot()
        for key, value in ordered:
            snapshot = snapshot.put(key, value)
        assert list(snapshot.keys()) == sorted(items)


class TestNotStructurallyInvariant:
    def test_insertion_order_changes_structure(self):
        """Figure 2 of the paper: same records, different internal structure."""
        items = list(make_items(200).items())
        forward_tree = make_tree()
        forward = forward_tree.empty_snapshot()
        for key, value in items:
            forward = forward.put(key, value)
        backward_tree = make_tree()
        backward = backward_tree.empty_snapshot()
        for key, value in reversed(items):
            backward = backward.put(key, value)
        assert forward.to_dict() == backward.to_dict()
        assert forward.root_digest != backward.root_digest

    def test_copy_on_write_still_shares_pages_between_versions(self):
        """Not SIRI, but still Recursively Identical thanks to copy-on-write."""
        tree = make_tree(leaf_capacity=8, internal_capacity=8)
        v1 = tree.from_items(make_items(500))
        v2 = v1.put(b"key00250", b"changed")
        shared = v1.node_digests() & v2.node_digests()
        assert len(shared) > 0.8 * len(v1.node_digests())


class TestDeletion:
    def test_delete_and_lookup(self):
        tree = make_tree()
        snapshot = tree.from_items(make_items(100))
        pruned = snapshot.remove(b"key00050", b"key00051")
        assert b"key00050" not in pruned
        assert b"key00051" not in pruned
        assert len(pruned) == 98

    def test_delete_all_records_empties_tree(self):
        tree = make_tree()
        items = make_items(50)
        snapshot = tree.from_items(items)
        empty = snapshot.remove(*items.keys())
        assert empty.is_empty() or len(empty) == 0

    def test_delete_collapses_single_child_root(self):
        tree = make_tree(leaf_capacity=2, internal_capacity=2)
        items = make_items(20)
        snapshot = tree.from_items(items)
        keys = sorted(items)
        survivor = keys[0]
        pruned = snapshot.remove(*keys[1:])
        assert pruned[survivor] == items[survivor]
        assert pruned.height() == 1

    def test_delete_missing_key_is_noop(self):
        tree = make_tree()
        snapshot = tree.from_items(make_items(30))
        assert snapshot.remove(b"not-there").to_dict() == snapshot.to_dict()
