"""Model-based and property-based tests applied uniformly to every index.

Each index is driven with randomized command sequences (hypothesis) and
compared against a plain ``dict`` model after every batch.  This exercises
insertion, overwriting, deletion, iteration order, version isolation, and
proof generation across all four structures with the same scenarios.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.metrics import deduplication_ratio
from tests.conftest import ALL_INDEXES, SIRI_INDEXES, build_index

# Small keyspace so operations collide (overwrites and deletes of existing keys).
keys = st.binary(min_size=1, max_size=6)
values = st.binary(min_size=0, max_size=24)

batch_strategy = st.lists(
    st.tuples(st.sampled_from(["put", "remove"]), keys, values),
    min_size=1,
    max_size=25,
)
command_strategy = st.lists(batch_strategy, min_size=1, max_size=6)


@pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
class TestModelBased:
    @given(commands=command_strategy)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_matches_dict_model(self, index_class, commands):
        index = build_index(index_class)
        snapshot = index.empty_snapshot()
        model = {}
        for batch in commands:
            puts = {}
            removes = []
            for op, key, value in batch:
                if op == "put":
                    puts[key] = value
                    model[key] = value
                    removes = [k for k in removes if k != key]
                else:
                    puts.pop(key, None)
                    model.pop(key, None)
                    removes.append(key)
            snapshot = snapshot.update(puts, removes=removes)
            assert snapshot.to_dict() == model
            assert list(snapshot.keys()) == sorted(model)

    @given(commands=command_strategy)
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_old_versions_are_isolated(self, index_class, commands):
        """Every intermediate version stays readable and equal to its model."""
        index = build_index(index_class)
        snapshot = index.empty_snapshot()
        model = {}
        history = [(snapshot, dict(model))]
        for batch in commands:
            puts = {key: value for op, key, value in batch if op == "put"}
            removes = [key for op, key, _ in batch if op == "remove" and key not in puts]
            model.update(puts)
            for key in removes:
                model.pop(key, None)
            snapshot = snapshot.update(puts, removes=removes)
            history.append((snapshot, dict(model)))
        for old_snapshot, old_model in history:
            assert old_snapshot.to_dict() == old_model


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestSIRIInvariants:
    @given(items=st.dictionaries(keys, values, min_size=1, max_size=60),
           seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_root_depends_only_on_content(self, index_class, items, seed):
        """Structural invariance: any permutation/batching yields the same root."""
        import random

        ordered = list(items.items())
        random.Random(seed).shuffle(ordered)
        batch = max(1, len(ordered) // 3)

        direct = build_index(index_class).from_items(items)
        incremental_index = build_index(index_class)
        incremental = incremental_index.empty_snapshot()
        for start in range(0, len(ordered), batch):
            incremental = incremental.update(dict(ordered[start : start + batch]))
        assert direct.root_digest == incremental.root_digest

    @given(items=st.dictionaries(keys, values, min_size=2, max_size=50))
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_insert_then_delete_is_identity(self, index_class, items):
        index = build_index(index_class)
        base = index.from_items(items)
        extra = {b"\xff" + k: v + b"x" for k, v in list(items.items())[:5]}
        modified = base.update(extra)
        restored = modified.remove(*extra.keys())
        assert restored.root_digest == base.root_digest

    @given(items=st.dictionaries(keys, values, min_size=5, max_size=60))
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_dedup_ratio_bounds_over_versions(self, index_class, items):
        index = build_index(index_class)
        v1 = index.from_items(items)
        some_key = sorted(items)[0]
        v2 = v1.put(some_key, b"changed-value")
        ratio = deduplication_ratio([v1, v2])
        assert 0.0 <= ratio < 1.0


@pytest.mark.parametrize("index_class", ALL_INDEXES, ids=lambda c: c.name)
class TestProofProperties:
    @given(items=st.dictionaries(keys, values, min_size=1, max_size=40),
           probe=keys)
    @settings(max_examples=20, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture])
    def test_proofs_verify_for_members_and_absences(self, index_class, items, probe):
        index = build_index(index_class)
        snapshot = index.from_items(items)
        member = sorted(items)[0]
        member_proof = snapshot.prove(member)
        assert member_proof.verify(snapshot.root_digest)
        assert member_proof.value == items[member]

        probe_proof = snapshot.prove(probe)
        assert probe_proof.verify(snapshot.root_digest)
        assert probe_proof.is_membership_proof == (probe in items)
