"""Tests for the POS-Tree ablation variants (paper Section 5.5)."""

import pytest

from repro.core.metrics import deduplication_ratio, node_sharing_ratio
from repro.indexes.ablation import NonRecursivelyIdenticalPOSTree, NonStructurallyInvariantPOSTree
from repro.indexes.pos_tree import POSTree
from repro.storage.memory import InMemoryNodeStore


def make_items(count, prefix="key"):
    return {f"{prefix}{i:05d}".encode(): (b"value-%05d-" % i) * 3 for i in range(count)}


def build(cls, **kwargs):
    params = {"target_node_size": 512, "estimated_entry_size": 48}
    params.update(kwargs)
    return cls(InMemoryNodeStore(), **params)


class TestNonStructurallyInvariant:
    def test_still_a_correct_key_value_index(self):
        tree = build(NonStructurallyInvariantPOSTree)
        items = make_items(500)
        snapshot = tree.from_items(items)
        assert snapshot.to_dict() == items
        v2 = snapshot.put(b"key00010", b"changed")
        assert v2[b"key00010"] == b"changed"
        assert snapshot[b"key00010"] == items[b"key00010"]

    def test_update_history_affects_structure(self):
        """Identical content reached through different update orders produces
        different trees — the property the ablation is designed to break."""
        items = sorted(make_items(800).items())

        def build_with_batches(batches):
            tree = build(NonStructurallyInvariantPOSTree)
            snapshot = tree.empty_snapshot()
            for batch in batches:
                snapshot = snapshot.update(dict(batch))
            return snapshot

        one_shot = build_with_batches([items])
        # The second history loads everything except a middle slice first and
        # then fills the hole, so the hole-filling rewrite starts at a node
        # boundary the one-shot build never had.
        two_phase = build_with_batches([items[:300] + items[500:], items[300:500]])
        assert one_shot.to_dict() == two_phase.to_dict()
        assert one_shot.root_digest != two_phase.root_digest

    def test_dedup_lower_than_standard_pos_tree(self):
        """Figure 19: disabling structural invariance lowers dedup/sharing."""

        def shared_dataset_ratio(index_class):
            base = sorted(make_items(600).items())
            extra = sorted(make_items(300, prefix="shared").items())
            snapshots = []
            for group in range(4):
                tree = build(index_class)
                snapshot = tree.empty_snapshot()
                # Each group interleaves its loading differently but ends with
                # the same content.
                offset = group * 150
                reordered = base[offset:] + base[:offset]
                for start in range(0, len(reordered), 200):
                    snapshot = snapshot.update(dict(reordered[start : start + 200]))
                snapshot = snapshot.update(dict(extra))
                snapshots.append(snapshot)
            return node_sharing_ratio(snapshots)

        invariant = shared_dataset_ratio(POSTree)
        ablated = shared_dataset_ratio(NonStructurallyInvariantPOSTree)
        assert ablated < invariant


class TestNonRecursivelyIdentical:
    def test_still_a_correct_key_value_index(self):
        tree = build(NonRecursivelyIdenticalPOSTree)
        items = make_items(300)
        v1 = tree.from_items(items)
        v2 = v1.update({b"key00000": b"new", b"added": b"x"})
        assert v1.to_dict() == items
        assert v2[b"key00000"] == b"new"
        assert v2[b"added"] == b"x"

    def test_versions_share_no_pages(self):
        """Figure 20: with the property disabled, dedup and sharing collapse to 0."""
        tree = build(NonRecursivelyIdenticalPOSTree)
        v1 = tree.from_items(make_items(400))
        v2 = v1.put(b"key00123", b"changed")
        assert not (v1.node_digests() & v2.node_digests())
        assert deduplication_ratio([v1, v2]) == pytest.approx(0.0)
        assert node_sharing_ratio([v1, v2]) == pytest.approx(0.0)

    def test_standard_pos_tree_shares_pages_in_same_scenario(self):
        tree = build(POSTree)
        v1 = tree.from_items(make_items(400))
        v2 = v1.put(b"key00123", b"changed")
        assert deduplication_ratio([v1, v2]) > 0.3

    def test_old_versions_remain_readable(self):
        tree = build(NonRecursivelyIdenticalPOSTree)
        versions = [tree.from_items(make_items(100))]
        for i in range(5):
            versions.append(versions[-1].put(f"extra{i}", f"value{i}"))
        assert versions[0][b"key00000"] == make_items(1)[b"key00000"]
        for i, version in enumerate(versions[1:], start=0):
            assert version[f"extra{i}".encode()] == f"value{i}".encode()
