"""Unit tests for the in-memory node store."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import CorruptNodeError, NodeNotFoundError
from repro.hashing.digest import hash_bytes
from repro.storage.memory import InMemoryNodeStore


class TestInMemoryNodeStore:
    def test_put_returns_content_digest(self):
        store = InMemoryNodeStore()
        digest = store.put(b"node data")
        assert digest == hash_bytes(b"node data")
        assert store.get(digest) == b"node data"

    def test_get_missing_raises(self):
        store = InMemoryNodeStore()
        with pytest.raises(NodeNotFoundError):
            store.get(hash_bytes(b"never stored"))

    def test_contains_and_len(self):
        store = InMemoryNodeStore()
        digest = store.put(b"a")
        assert digest in store
        assert hash_bytes(b"b") not in store
        assert len(store) == 1

    def test_duplicate_put_stored_once(self):
        store = InMemoryNodeStore()
        first = store.put(b"same bytes")
        second = store.put(b"same bytes")
        assert first == second
        assert len(store) == 1
        assert store.stats.puts == 2
        assert store.stats.duplicate_puts == 1
        assert store.stats.bytes_written == len(b"same bytes")

    def test_total_bytes_counts_unique_nodes_once(self):
        store = InMemoryNodeStore()
        store.put(b"xxxx")
        store.put(b"xxxx")
        store.put(b"yy")
        assert store.total_bytes() == 6
        assert store.node_count() == 2

    def test_delete_and_clear(self):
        store = InMemoryNodeStore()
        digest = store.put(b"bye")
        assert store.delete(digest)
        assert not store.delete(digest)
        store.put(b"again")
        store.clear()
        assert len(store) == 0
        assert store.stats.puts == 0

    def test_verification_detects_corruption(self):
        store = InMemoryNodeStore(verify_on_read=True)
        digest = store.put(b"precious")
        store.corrupt(digest, b"tampered")
        with pytest.raises(CorruptNodeError):
            store.get(digest)
        assert not store.verify(digest)

    def test_verify_all_reports_corrupt_nodes(self):
        store = InMemoryNodeStore()
        good = store.put(b"good")
        bad = store.put(b"will be corrupted")
        store.corrupt(bad, b"evil")
        checked, corrupt = store.verify_all()
        assert checked == 2
        assert corrupt == [bad]
        assert good not in corrupt

    def test_corrupt_missing_node_raises(self):
        store = InMemoryNodeStore()
        with pytest.raises(NodeNotFoundError):
            store.corrupt(hash_bytes(b"nothing"), b"x")

    def test_missing_helper(self):
        store = InMemoryNodeStore()
        digest = store.put(b"present")
        absent = hash_bytes(b"absent")
        assert store.missing([digest, absent]) == [absent]

    def test_read_stats(self):
        store = InMemoryNodeStore()
        digest = store.put(b"12345")
        store.get(digest)
        store.get(digest)
        assert store.stats.gets == 2
        assert store.stats.bytes_read == 10

    @given(st.sets(st.binary(min_size=1, max_size=64), max_size=50))
    @settings(max_examples=50, deadline=None)
    def test_property_store_retrieves_everything(self, blobs):
        store = InMemoryNodeStore()
        digests = {store.put(blob): blob for blob in blobs}
        assert len(store) == len(blobs)
        for digest, blob in digests.items():
            assert store.get(digest) == blob
