"""Unit tests for the metering node store wrapper."""

from repro.storage.metered import MeteredNodeStore
from repro.storage.memory import InMemoryNodeStore


class TestMeteredNodeStore:
    def test_counts_operations_and_bytes(self):
        store = MeteredNodeStore(InMemoryNodeStore())
        digest = store.put(b"12345678")
        store.get(digest)
        store.get(digest)
        assert store.put_count == 1
        assert store.get_count == 2
        assert store.bytes_stored == 8
        assert store.bytes_fetched == 16

    def test_duplicate_puts_not_charged_twice(self):
        store = MeteredNodeStore(InMemoryNodeStore(), put_cost_seconds=1.0)
        store.put(b"same")
        store.put(b"same")
        assert store.put_count == 2
        assert store.bytes_stored == 4
        assert store.simulated_seconds == 1.0

    def test_simulated_costs_accumulate(self):
        store = MeteredNodeStore(
            InMemoryNodeStore(),
            get_cost_seconds=0.5,
            put_cost_seconds=1.0,
            per_byte_cost_seconds=0.1,
        )
        digest = store.put(b"ab")          # 1.0 + 2 * 0.1
        store.get(digest)                  # 0.5 + 2 * 0.1
        assert abs(store.simulated_seconds - (1.2 + 0.7)) < 1e-9

    def test_reset_meters(self):
        store = MeteredNodeStore(InMemoryNodeStore(), get_cost_seconds=1.0)
        digest = store.put(b"x")
        store.get(digest)
        store.reset_meters()
        assert store.simulated_seconds == 0.0
        assert store.get_count == 0
        # Data survives the meter reset.
        assert store.get(digest) == b"x"

    def test_passthrough_queries(self):
        backing = InMemoryNodeStore()
        store = MeteredNodeStore(backing)
        digest = store.put(b"data")
        assert store.contains(digest)
        assert digest in list(store.digests())
        assert len(store) == 1
        assert store.total_bytes() == 4
