"""Unit tests for the LRU caching node store."""

import pytest

from repro.core.errors import NodeNotFoundError
from repro.storage.cache import CachingNodeStore
from repro.storage.memory import InMemoryNodeStore


class TestCachingNodeStore:
    def test_reads_pass_through_and_then_hit_cache(self):
        backing = InMemoryNodeStore()
        digest = backing.put(b"payload")
        cache = CachingNodeStore(backing, capacity_bytes=1024)

        assert cache.get(digest) == b"payload"
        assert cache.cache_misses == 1
        assert cache.get(digest) == b"payload"
        assert cache.cache_hits == 1
        assert 0 < cache.hit_ratio < 1

    def test_write_through(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing, capacity_bytes=1024)
        digest = cache.put(b"written via cache")
        assert backing.get(digest) == b"written via cache"
        # The node was cached by the put, so the read is a hit.
        cache.get(digest)
        assert cache.cache_hits == 1

    def test_eviction_respects_capacity(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing, capacity_bytes=100)
        digests = [cache.put(bytes([i]) * 40) for i in range(5)]
        assert cache._cached_bytes <= 100
        # All nodes remain available through the backing store.
        for digest in digests:
            assert cache.get(digest) is not None

    def test_lru_order(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing, capacity_bytes=100)
        a = cache.put(b"a" * 40)
        b = cache.put(b"b" * 40)
        cache.get(a)              # a becomes most recently used
        cache.put(b"c" * 40)      # evicts b, not a
        hits_before = cache.cache_hits
        cache.get(a)
        assert cache.cache_hits == hits_before + 1
        misses_before = cache.cache_misses
        cache.get(b)
        assert cache.cache_misses == misses_before + 1

    def test_invalidate_clears_cache_only(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing)
        digest = cache.put(b"kept in backing")
        cache.invalidate()
        assert cache.get(digest) == b"kept in backing"
        assert cache.cache_misses == 1

    def test_missing_node_propagates(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing)
        with pytest.raises(NodeNotFoundError):
            cache.get(backing.hash_function.hash(b"nope"))

    def test_len_and_total_bytes_reflect_backing(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing)
        cache.put(b"12345")
        assert len(cache) == len(backing) == 1
        assert cache.total_bytes() == backing.total_bytes() == 5

    def test_combined_stats(self):
        backing = InMemoryNodeStore()
        cache = CachingNodeStore(backing)
        digest = cache.put(b"x")
        cache.get(digest)
        combined = cache.combined_stats()
        assert combined.puts >= 1
