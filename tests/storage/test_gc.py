"""Tests for mark-and-sweep garbage collection (repro.storage.gc)."""

import pytest

from repro.core.errors import InvalidParameterError, NodeNotFoundError
from repro.core.metrics import GCCounters
from repro.indexes import POSTree
from repro.storage.file import FileNodeStore
from repro.storage.gc import GarbageCollector, reachable_digests
from repro.storage.memory import InMemoryNodeStore
from repro.storage.refcount import RefCountingNodeStore
from repro.storage.segment import SegmentNodeStore


def build_versions(store, versions=6, keys=120):
    """A POS-Tree with `versions` churned versions sharing one store."""
    tree = POSTree(store)
    snaps = [tree.from_items({f"k{i:03d}".encode(): b"v0" * 20 for i in range(keys)})]
    for v in range(1, versions):
        snaps.append(snaps[-1].update(
            {f"k{i:03d}".encode(): f"v{v}".encode() * 20 for i in range(0, keys, 2)}))
    return tree, snaps


class TestMarkPhase:
    def test_reachable_digests_unions_page_sets(self):
        tree, snaps = build_versions(InMemoryNodeStore(), versions=3)
        live = reachable_digests(tree, [s.root_digest for s in snaps[-2:]])
        assert live == snaps[-2].node_digests() | snaps[-1].node_digests()

    def test_none_roots_contribute_nothing(self):
        tree, snaps = build_versions(InMemoryNodeStore(), versions=2)
        assert reachable_digests(tree, [None]) == set()
        assert reachable_digests(tree, [None, snaps[0].root_digest]) == snaps[0].node_digests()


class TestSweepStrategies:
    def test_delete_path_on_memory_store(self):
        store = InMemoryNodeStore()
        tree, snaps = build_versions(store)
        before_nodes = len(store)
        live = reachable_digests(tree, [snaps[-1].root_digest])
        report = GarbageCollector(store).collect(live)
        assert report.runs == 1
        assert report.swept_nodes == before_nodes - len(live)
        assert len(store) == len(live)
        assert report.bytes_reclaimed == report.bytes_before - report.bytes_after
        # The retained version is untouched; an old one now dangles.
        assert snaps[-1][b"k002"] == b"v5" * 20
        with pytest.raises(NodeNotFoundError):
            dict(snaps[0].items())

    def test_compact_path_on_segment_store(self, tmp_path):
        store = SegmentNodeStore(str(tmp_path / "segs"), fsync=False)
        tree, snaps = build_versions(store)
        store.flush()
        before = store.file_bytes()
        report = GarbageCollector(store).collect_roots(tree, [snaps[-1].root_digest])
        assert report.segments_deleted >= 1
        assert store.file_bytes() < before
        assert snaps[-1][b"k004"] == b"v5" * 20
        # Survives reopen with only the live generation present.
        reopened = SegmentNodeStore(str(tmp_path / "segs"), fsync=False)
        assert len(reopened) == report.live_nodes

    def test_collect_pinned_reuses_refcount_registry(self):
        backing = InMemoryNodeStore()
        refstore = RefCountingNodeStore(backing)
        tree, snaps = build_versions(refstore)
        refstore.pin(snaps[-1].root_digest, snaps[-1].node_digests())
        refstore.pin(snaps[-2].root_digest, snaps[-2].node_digests())
        live = refstore.reachable_union()
        assert live == snaps[-1].node_digests() | snaps[-2].node_digests()
        report = GarbageCollector(refstore).collect_pinned(refstore)
        assert len(backing) == len(live)
        assert report.swept_nodes > 0
        assert snaps[-2][b"k003"] is not None

    def test_store_without_delete_or_compact_rejected(self, tmp_path):
        store = FileNodeStore(str(tmp_path / "plain"))
        store.put(b"unreclaimable")
        with pytest.raises(InvalidParameterError):
            GarbageCollector(store).collect(set())


class TestGCCounters:
    def test_merge_and_copy(self):
        a = GCCounters(runs=1, live_nodes=5, swept_nodes=7, bytes_before=100,
                       bytes_after=40, bytes_reclaimed=60, segments_created=1,
                       segments_deleted=2, gc_seconds=0.5)
        b = GCCounters(runs=1, bytes_before=50, bytes_after=50)
        merged = a.merge(b)
        assert merged.runs == 2
        assert merged.bytes_before == 150
        assert merged.bytes_reclaimed == 60
        copied = a.copy()
        copied.runs = 99
        assert a.runs == 1

    def test_reclaimed_fraction(self):
        assert GCCounters().reclaimed_fraction == 0.0
        assert GCCounters(bytes_before=200, bytes_reclaimed=50).reclaimed_fraction == 0.25
