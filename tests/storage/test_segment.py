"""Unit tests for the durable append-only segment storage engine."""

import os

import pytest

from repro.core.errors import NodeNotFoundError, StoreClosedError
from repro.hashing.digest import hash_bytes
from repro.storage.segment import (
    SegmentNodeStore,
    encode_commit_record,
    encode_data_record,
)


def segment_files(directory):
    return sorted(
        os.path.join(directory, name)
        for name in os.listdir(directory)
        if name.endswith(SegmentNodeStore.SEGMENT_SUFFIX)
    )


def make_store(tmp_path, **kwargs):
    kwargs.setdefault("fsync", False)  # keep the suite fast; fsync is covered once
    return SegmentNodeStore(str(tmp_path / "segs"), **kwargs)


class TestBasicOperation:
    def test_put_get_round_trip_before_flush(self, tmp_path):
        store = make_store(tmp_path)
        digest = store.put(b"buffered node")
        # Read-your-writes: visible immediately, durable only after flush.
        assert store.get(digest) == b"buffered node"
        assert store.pending_count == 1
        assert len(store) == 1

    def test_flush_writes_batch_and_commit_marker(self, tmp_path):
        store = make_store(tmp_path)
        digests = [store.put(f"node-{i}".encode() * 10) for i in range(20)]
        assert store.flush() == 20
        assert store.pending_count == 0
        assert store.commit_batches == 1
        assert store.flush() == 0  # idempotent when nothing is pending
        for i, digest in enumerate(digests):
            assert store.get(digest) == f"node-{i}".encode() * 10

    def test_duplicate_put_not_stored_twice(self, tmp_path):
        store = make_store(tmp_path)
        store.put(b"dup")
        store.flush()
        size = store.file_bytes()
        store.put(b"dup")          # duplicate of a committed node
        store.put(b"pending-dup")
        store.put(b"pending-dup")  # duplicate of a pending node
        store.flush()
        assert len(store) == 2
        assert store.file_bytes() > size  # only pending-dup was appended
        assert store.stats.duplicate_puts == 2

    def test_missing_raises(self, tmp_path):
        store = make_store(tmp_path)
        with pytest.raises(NodeNotFoundError):
            store.get(hash_bytes(b"missing"))

    def test_contains_digests_len(self, tmp_path):
        store = make_store(tmp_path)
        committed = store.put(b"committed")
        store.flush()
        pending = store.put(b"pending")
        assert store.contains(committed) and store.contains(pending)
        assert set(store.digests()) == {committed, pending}
        assert len(store) == 2

    def test_total_bytes_is_logical_file_bytes_is_physical(self, tmp_path):
        store = make_store(tmp_path)
        store.put(b"x" * 100)
        store.flush()
        assert store.total_bytes() == 100
        # Framing: kind + digest length-prefix + digest + data length-prefix + CRC.
        assert store.file_bytes() > 100

    def test_segment_rotation(self, tmp_path):
        store = make_store(tmp_path, segment_capacity_bytes=512)
        for i in range(30):
            store.put(f"block-{i:03d}".encode() * 8)
            store.flush()  # one batch per flush; rotation between batches
        assert store.segment_count() > 1
        reopened = make_store(tmp_path, segment_capacity_bytes=512)
        assert len(reopened) == 30

    def test_closed_store_raises(self, tmp_path):
        store = make_store(tmp_path)
        digest = store.put(b"data")
        store.close()
        assert store.closed
        store.close()  # idempotent
        with pytest.raises(StoreClosedError):
            store.get(digest)
        with pytest.raises(StoreClosedError):
            store.put(b"more")
        with pytest.raises(StoreClosedError):
            store.flush()

    def test_close_flushes_pending(self, tmp_path):
        store = make_store(tmp_path)
        digest = store.put(b"flushed by close")
        store.close()
        reopened = make_store(tmp_path)
        assert reopened.get(digest) == b"flushed by close"


class TestCrashRecovery:
    def test_survives_reopen(self, tmp_path):
        store = make_store(tmp_path)
        digests = [store.put(f"node-{i}".encode() * 10) for i in range(25)]
        store.flush()
        reopened = make_store(tmp_path)
        assert reopened.recovery.records_recovered == 25
        assert reopened.recovery.commit_batches == 1
        assert reopened.recovery.torn_bytes_truncated == 0
        for i, digest in enumerate(digests):
            assert reopened.get(digest) == f"node-{i}".encode() * 10

    def test_torn_mid_record_tail_is_truncated(self, tmp_path):
        store = make_store(tmp_path)
        keep = store.put(b"committed and durable" * 5)
        store.flush()
        path = segment_files(store.directory)[-1]
        committed_size = os.path.getsize(path)
        # Simulate a crash mid-append: half a DATA record, no commit marker.
        record = encode_data_record(hash_bytes(b"torn"), b"torn payload" * 10)
        with open(path, "ab") as handle:
            handle.write(record[: len(record) // 2])
        reopened = make_store(tmp_path)
        assert reopened.recovery.torn_bytes_truncated == len(record) // 2
        assert os.path.getsize(path) == committed_size  # tail physically removed
        assert reopened.get(keep) == b"committed and durable" * 5
        assert len(reopened) == 1

    def test_complete_records_without_commit_marker_are_dropped(self, tmp_path):
        store = make_store(tmp_path)
        keep = store.put(b"the last committed state")
        store.flush()
        path = segment_files(store.directory)[-1]
        # Simulate a flush that crashed after its DATA records but before
        # the COMMIT marker: complete, CRC-valid records, no marker.
        lost_a, lost_b = hash_bytes(b"lost-a"), hash_bytes(b"lost-b")
        with open(path, "ab") as handle:
            handle.write(encode_data_record(lost_a, b"written but never committed"))
            handle.write(encode_data_record(lost_b, b"also uncommitted"))
        reopened = make_store(tmp_path)
        assert reopened.recovery.uncommitted_records_dropped == 2
        assert reopened.get(keep) == b"the last committed state"
        assert not reopened.contains(lost_a)
        assert not reopened.contains(lost_b)

    def test_corrupted_tail_crc_truncates_to_last_commit(self, tmp_path):
        store = make_store(tmp_path)
        first = store.put(b"batch one")
        store.flush()
        second = store.put(b"batch two")
        store.flush()
        path = segment_files(store.directory)[-1]
        # Flip a byte inside the second batch (simulating a misdirected
        # write): its CRC fails, recovery rewinds to the first marker.
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.seek(size - 3)
            byte = handle.read(1)
            handle.seek(size - 3)
            handle.write(bytes([byte[0] ^ 0xFF]))
        reopened = make_store(tmp_path)
        assert reopened.get(first) == b"batch one"
        assert not reopened.contains(second)
        assert reopened.recovery.torn_bytes_truncated > 0

    def test_fully_torn_segment_is_removed(self, tmp_path):
        store = make_store(tmp_path)
        store.put(b"seed")
        store.flush()
        # A brand-new segment containing only an unterminated batch.
        orphan = os.path.join(store.directory, "seg-000009.seg")
        with open(orphan, "wb") as handle:
            handle.write(encode_data_record(hash_bytes(b"orphan"), b"orphan"))
        reopened = make_store(tmp_path)
        assert not os.path.exists(orphan)
        assert len(reopened) == 1

    def test_commit_marker_alone_is_noop(self, tmp_path):
        store = make_store(tmp_path)
        keep = store.put(b"data")
        store.flush()
        path = segment_files(store.directory)[-1]
        with open(path, "ab") as handle:
            handle.write(encode_commit_record(0))
        reopened = make_store(tmp_path)
        assert reopened.get(keep) == b"data"
        assert reopened.recovery.commit_batches == 2

    def test_corruption_in_sealed_segment_raises(self, tmp_path):
        """Torn-tail repair is only legal in the final segment; bitrot in
        an earlier, sealed segment must raise, not silently truncate
        committed batches."""
        from repro.core.errors import CorruptNodeError

        store = make_store(tmp_path, segment_capacity_bytes=256)
        for i in range(6):
            store.put(f"batch-{i}".encode() * 30)
            store.flush()  # rotation seals multiple segments
        paths = segment_files(store.directory)
        assert len(paths) > 2
        with open(paths[0], "r+b") as handle:  # corrupt a *sealed* segment
            handle.seek(10)
            byte = handle.read(1)
            handle.seek(10)
            handle.write(bytes([byte[0] ^ 0xFF]))
        with pytest.raises(CorruptNodeError):
            make_store(tmp_path, segment_capacity_bytes=256)

    def test_fsync_enabled_path(self, tmp_path):
        store = SegmentNodeStore(str(tmp_path / "segs"), fsync=True)
        digest = store.put(b"durable for real")
        store.flush()
        store.close()
        reopened = SegmentNodeStore(str(tmp_path / "segs"), fsync=True)
        assert reopened.get(digest) == b"durable for real"


class TestDeleteAndCompact:
    def test_delete_is_logical(self, tmp_path):
        store = make_store(tmp_path)
        gone = store.put(b"to be deleted")
        keep = store.put(b"to be kept")
        store.flush()
        size = store.file_bytes()
        assert store.delete(gone) is True
        assert store.delete(gone) is False
        assert not store.contains(gone)
        assert store.file_bytes() == size  # bytes remain until compaction
        assert store.get(keep) == b"to be kept"

    def test_compact_reclaims_space_and_keeps_live(self, tmp_path):
        store = make_store(tmp_path, segment_capacity_bytes=1024)
        live = [store.put(f"live-{i}".encode() * 20) for i in range(10)]
        dead = [store.put(f"dead-{i}".encode() * 20) for i in range(30)]
        store.flush()
        before = store.file_bytes()
        report = store.compact(live)
        assert report.live_nodes == 10
        assert report.swept_nodes == 30
        assert report.bytes_reclaimed == before - store.file_bytes()
        assert store.file_bytes() < before
        for i, digest in enumerate(live):
            assert store.get(digest) == f"live-{i}".encode() * 20
        for digest in dead:
            assert not store.contains(digest)
        # Cumulative counters accumulate on the store.
        assert store.gc.runs == 1
        assert store.gc.bytes_reclaimed == report.bytes_reclaimed

    def test_compact_includes_pending_nodes(self, tmp_path):
        store = make_store(tmp_path)
        committed = store.put(b"committed")
        store.flush()
        pending = store.put(b"pending at compaction time")
        store.compact([committed, pending])
        assert store.get(pending) == b"pending at compaction time"

    def test_compact_survives_reopen(self, tmp_path):
        store = make_store(tmp_path, segment_capacity_bytes=512)
        live = [store.put(f"live-{i}".encode() * 30) for i in range(20)]
        dead = [store.put(f"dead-{i}".encode() * 30) for i in range(20)]
        store.flush()
        store.compact(live)
        reopened = make_store(tmp_path, segment_capacity_bytes=512)
        assert len(reopened) == 20
        for i, digest in enumerate(live):
            assert reopened.get(digest) == f"live-{i}".encode() * 30

    def test_compact_everything_dead_leaves_empty_store(self, tmp_path):
        store = make_store(tmp_path)
        store.put(b"ephemeral")
        store.flush()
        report = store.compact([])
        assert report.swept_nodes == 1
        assert len(store) == 0
        assert store.file_bytes() == 0
        # The store remains writable afterwards.
        digest = store.put(b"new life")
        store.flush()
        assert make_store(tmp_path).get(digest) == b"new life"

    def test_reads_race_compaction(self, tmp_path):
        """Lock-free readers must survive a concurrent compaction: the
        directory is swapped before the old files are unlinked, and a
        reader whose file vanished re-fetches the rewritten location."""
        import threading

        store = make_store(tmp_path, segment_capacity_bytes=2048)
        live = [store.put(f"live-{i}".encode() * 40) for i in range(50)]
        dead = [store.put(f"dead-{i}".encode() * 40) for i in range(200)]
        store.flush()
        stop = threading.Event()
        failures = []

        def reader():
            i = 0
            while not stop.is_set():
                digest = live[i % len(live)]
                try:
                    assert store.get_bytes(digest) == f"live-{i % len(live)}".encode() * 40
                except Exception as exc:  # pragma: no cover - the bug path
                    failures.append(exc)
                    return
                i += 1

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(5):
                store.compact(live)
        finally:
            stop.set()
            for thread in threads:
                thread.join()
        assert not failures, failures[0]

    def test_old_generation_leftover_is_deduped_on_reopen(self, tmp_path):
        """A crash between writing new segments and unlinking old ones
        leaves both generations on disk; the scan must dedupe by digest."""
        store = make_store(tmp_path)
        digest = store.put(b"twice on disk")
        store.flush()
        old = segment_files(store.directory)[-1]
        backup = open(old, "rb").read()
        store.compact([digest])
        # Resurrect the pre-compaction segment, as if unlink never ran.
        with open(old, "wb") as handle:
            handle.write(backup)
        reopened = make_store(tmp_path)
        assert reopened.get(digest) == b"twice on disk"
        assert len(reopened) == 1


class TestIndexIntegration:
    def test_pos_tree_versions_survive_reopen(self, tmp_path):
        from repro.indexes import POSTree

        store = make_store(tmp_path)
        tree = POSTree(store)
        v1 = tree.from_items({f"k{i}".encode(): f"v{i}".encode() * 5 for i in range(200)})
        v2 = v1.update({f"k{i}".encode(): f"w{i}".encode() * 5 for i in range(100)})
        store.flush()

        reopened = POSTree(make_store(tmp_path))
        assert reopened.snapshot(v1.root_digest)[b"k42"] == b"v42" * 5
        assert reopened.snapshot(v2.root_digest)[b"k42"] == b"w42" * 5
        assert len(reopened.snapshot(v2.root_digest).to_dict()) == 200
