"""Unit tests for the append-only file-backed node store."""

import os

import pytest

from repro.core.errors import CorruptNodeError, NodeNotFoundError
from repro.hashing.digest import hash_bytes
from repro.storage.file import FileNodeStore


class TestFileNodeStore:
    def test_put_get_round_trip(self, tmp_path):
        store = FileNodeStore(str(tmp_path / "nodes"))
        digest = store.put(b"persisted node")
        assert store.get(digest) == b"persisted node"
        assert len(store) == 1

    def test_survives_reopen(self, tmp_path):
        directory = str(tmp_path / "nodes")
        store = FileNodeStore(directory)
        digests = [store.put(f"node-{i}".encode() * 10) for i in range(20)]

        reopened = FileNodeStore(directory)
        assert len(reopened) == 20
        for i, digest in enumerate(digests):
            assert reopened.get(digest) == f"node-{i}".encode() * 10

    def test_duplicate_put_not_written_twice(self, tmp_path):
        store = FileNodeStore(str(tmp_path / "nodes"))
        store.put(b"dup")
        size_after_first = store.total_bytes()
        store.put(b"dup")
        assert store.total_bytes() == size_after_first
        assert len(store) == 1

    def test_missing_raises(self, tmp_path):
        store = FileNodeStore(str(tmp_path / "nodes"))
        with pytest.raises(NodeNotFoundError):
            store.get(hash_bytes(b"missing"))

    def test_segment_rotation(self, tmp_path):
        directory = str(tmp_path / "nodes")
        store = FileNodeStore(directory, segment_capacity_bytes=256)
        for i in range(30):
            store.put(f"block-{i:03d}".encode() * 8)
        segments = [name for name in os.listdir(directory) if name.endswith(".nodes")]
        assert len(segments) > 1
        reopened = FileNodeStore(directory, segment_capacity_bytes=256)
        assert len(reopened) == 30

    def test_corruption_detected_on_reload(self, tmp_path):
        directory = str(tmp_path / "nodes")
        store = FileNodeStore(directory)
        store.put(b"sensitive payload that will be flipped")
        segment = os.path.join(directory, sorted(os.listdir(directory))[0])
        with open(segment, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            last = handle.read(1)
            handle.seek(-1, os.SEEK_END)
            handle.write(bytes([last[0] ^ 0xFF]))
        with pytest.raises(CorruptNodeError):
            FileNodeStore(directory, verify_on_load=True)

    def test_contains_and_digests(self, tmp_path):
        store = FileNodeStore(str(tmp_path / "nodes"))
        digest = store.put(b"here")
        assert store.contains(digest)
        assert digest in list(store.digests())

    def test_indexes_work_on_file_store(self, tmp_path):
        """End-to-end: an index persisted to disk is readable after reopen."""
        from repro.indexes import POSTree

        directory = str(tmp_path / "nodes")
        store = FileNodeStore(directory)
        tree = POSTree(store)
        snapshot = tree.from_items({f"k{i}".encode(): f"v{i}".encode() * 5 for i in range(200)})
        root = snapshot.root_digest

        reopened_store = FileNodeStore(directory)
        reopened_tree = POSTree(reopened_store)
        reopened_snapshot = reopened_tree.snapshot(root)
        assert reopened_snapshot[b"k42"] == b"v42" * 5
        assert len(reopened_snapshot.to_dict()) == 200
