"""Unit tests for reference counting / garbage collection of versions."""

from repro.indexes import POSTree
from repro.storage.memory import InMemoryNodeStore
from repro.storage.refcount import RefCountingNodeStore


class TestRefCountingNodeStore:
    def test_pin_and_release_single_version(self):
        store = RefCountingNodeStore()
        tree = POSTree(store)
        snapshot = tree.from_items({f"k{i}".encode(): b"v" * 20 for i in range(100)})
        reachable = snapshot.node_digests()
        store.pin(snapshot.root_digest, reachable)

        assert store.reference_count(snapshot.root_digest) == 1
        deleted = store.release(snapshot.root_digest)
        assert deleted == len(reachable)
        assert len(store) == 0

    def test_shared_nodes_survive_until_last_release(self):
        store = RefCountingNodeStore()
        tree = POSTree(store)
        v1 = tree.from_items({f"k{i}".encode(): b"v" * 20 for i in range(200)})
        v2 = v1.update({b"k0": b"changed"})

        store.pin(v1.root_digest, v1.node_digests())
        store.pin(v2.root_digest, v2.node_digests())

        store.release(v1.root_digest)
        # v2 must remain fully readable: all its nodes survived.
        assert v2[b"k0"] == b"changed"
        assert v2[b"k150"] == b"v" * 20

        store.release(v2.root_digest)
        assert len(store) == 0

    def test_pin_is_idempotent(self):
        store = RefCountingNodeStore()
        tree = POSTree(store)
        snapshot = tree.from_items({b"a": b"1"})
        store.pin(snapshot.root_digest, snapshot.node_digests())
        store.pin(snapshot.root_digest, snapshot.node_digests())
        assert store.reference_count(snapshot.root_digest) == 1

    def test_release_unknown_root_is_noop(self):
        store = RefCountingNodeStore()
        tree = POSTree(store)
        snapshot = tree.from_items({b"a": b"1"})
        assert store.release(snapshot.root_digest) == 0
        assert snapshot[b"a"] == b"1"

    def test_collect_garbage_removes_unpinned_nodes(self):
        store = RefCountingNodeStore()
        tree = POSTree(store)
        v1 = tree.from_items({f"k{i}".encode(): b"v" for i in range(50)})
        v2 = v1.update({b"k0": b"new"})
        # Only pin v2: v1-only nodes are garbage.
        store.pin(v2.root_digest, v2.node_digests())
        removed = store.collect_garbage()
        assert removed > 0
        assert v2[b"k0"] == b"new"
        assert v2[b"k30"] == b"v"

    def test_pinned_roots_listing(self):
        store = RefCountingNodeStore()
        tree = POSTree(store)
        snapshot = tree.from_items({b"a": b"1"})
        store.pin(snapshot.root_digest, snapshot.node_digests())
        assert store.pinned_roots() == [snapshot.root_digest]

    def test_works_over_explicit_backing(self):
        backing = InMemoryNodeStore()
        store = RefCountingNodeStore(backing)
        digest = store.put(b"node")
        assert backing.get(digest) == b"node"
