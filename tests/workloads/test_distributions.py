"""Tests for the uniform/Zipfian request distributions."""

from collections import Counter

import pytest

from repro.workloads.distributions import UniformKeyChooser, ZipfianKeyChooser, make_chooser


class TestUniformKeyChooser:
    def test_indices_within_range(self):
        chooser = UniformKeyChooser(100, seed=1)
        for _ in range(1000):
            assert 0 <= chooser.next_index() < 100

    def test_deterministic_per_seed(self):
        a = UniformKeyChooser(50, seed=7)
        b = UniformKeyChooser(50, seed=7)
        assert [a.next_index() for _ in range(100)] == [b.next_index() for _ in range(100)]

    def test_roughly_uniform_coverage(self):
        chooser = UniformKeyChooser(10, seed=2)
        counts = Counter(chooser.next_index() for _ in range(10_000))
        assert len(counts) == 10
        assert max(counts.values()) < 2 * min(counts.values())

    def test_rejects_empty_population(self):
        with pytest.raises(ValueError):
            UniformKeyChooser(0)

    def test_theta_is_zero(self):
        assert UniformKeyChooser(10).theta == 0.0


class TestZipfianKeyChooser:
    def test_indices_within_range(self):
        chooser = ZipfianKeyChooser(1000, theta=0.9, seed=3)
        for _ in range(2000):
            assert 0 <= chooser.next_index() < 1000

    def test_rejects_invalid_theta(self):
        with pytest.raises(ValueError):
            ZipfianKeyChooser(10, theta=1.0)
        with pytest.raises(ValueError):
            ZipfianKeyChooser(10, theta=-0.1)

    def test_skew_increases_with_theta(self):
        """Higher θ concentrates more mass on fewer keys."""

        def top_fraction(theta):
            chooser = ZipfianKeyChooser(1000, theta=theta, seed=4)
            counts = Counter(chooser.next_index() for _ in range(20_000))
            top = sum(count for _, count in counts.most_common(10))
            return top / 20_000

        assert top_fraction(0.9) > top_fraction(0.5) > top_fraction(0.0)

    def test_scrambling_spreads_hot_keys(self):
        unscrambled = ZipfianKeyChooser(1000, theta=0.9, seed=5, scramble=False)
        scrambled = ZipfianKeyChooser(1000, theta=0.9, seed=5, scramble=True)
        unscrambled_hot = Counter(unscrambled.next_index() for _ in range(5000)).most_common(5)
        scrambled_hot = Counter(scrambled.next_index() for _ in range(5000)).most_common(5)
        # Without scrambling the hottest keys cluster near rank 0.
        assert all(index < 20 for index, _ in unscrambled_hot)
        assert any(index >= 20 for index, _ in scrambled_hot)

    def test_deterministic_per_seed(self):
        a = ZipfianKeyChooser(500, theta=0.5, seed=6)
        b = ZipfianKeyChooser(500, theta=0.5, seed=6)
        assert [a.next_index() for _ in range(200)] == [b.next_index() for _ in range(200)]


class TestMakeChooser:
    def test_zero_theta_gives_uniform(self):
        assert isinstance(make_chooser(10, theta=0.0), UniformKeyChooser)

    def test_positive_theta_gives_zipfian(self):
        chooser = make_chooser(10, theta=0.9)
        assert isinstance(chooser, ZipfianKeyChooser)
        assert chooser.theta == 0.9
