"""Tests for the multi-group collaboration workload generator."""

import pytest

from repro.workloads.collaboration import CollaborationWorkload, batched


class TestBatched:
    def test_splits_into_batches(self):
        records = [(f"k{i}".encode(), b"v") for i in range(10)]
        batches = list(batched(records, 4))
        assert [len(b) for b in batches] == [4, 4, 2]
        merged = {}
        for batch in batches:
            merged.update(batch)
        assert merged == dict(records)

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            list(batched([], 0))


class TestCollaborationWorkload:
    def test_invalid_overlap_rejected(self):
        with pytest.raises(ValueError):
            CollaborationWorkload(overlap_ratio=1.5)

    def test_base_dataset_identical_for_all_groups(self):
        workload = CollaborationWorkload(base_records=200, group_count=3,
                                         operations_per_group=100, seed=1)
        assert len(workload.base_dataset()) == 200
        assert workload.base_dataset() == workload.base_dataset()

    def test_group_record_counts(self):
        workload = CollaborationWorkload(base_records=100, group_count=4,
                                         operations_per_group=500, overlap_ratio=0.3, seed=2)
        for group in range(4):
            assert len(workload.group_records(group)) == 500

    def test_overlap_ratio_controls_shared_fraction(self):
        def shared_fraction(overlap):
            workload = CollaborationWorkload(base_records=100, group_count=2,
                                             operations_per_group=2_000,
                                             overlap_ratio=overlap, seed=3)
            group0 = dict(workload.group_records(0))
            group1 = dict(workload.group_records(1))
            shared = {k for k in group0 if k in group1 and group0[k] == group1[k]}
            return len(shared) / len(group0)

        assert shared_fraction(0.0) == 0.0
        low, high = shared_fraction(0.2), shared_fraction(0.8)
        assert 0.1 < low < 0.35
        assert 0.65 < high <= 1.0

    def test_full_overlap_means_identical_workloads(self):
        workload = CollaborationWorkload(base_records=50, group_count=3,
                                         operations_per_group=300, overlap_ratio=1.0, seed=4)
        assert dict(workload.group_records(0)) == dict(workload.group_records(2))

    def test_private_records_never_collide_across_groups(self):
        workload = CollaborationWorkload(base_records=50, group_count=3,
                                         operations_per_group=400, overlap_ratio=0.0, seed=5)
        group_keys = [set(dict(workload.group_records(g))) for g in range(3)]
        assert not (group_keys[0] & group_keys[1])
        assert not (group_keys[1] & group_keys[2])

    def test_group_batches_respect_batch_size(self):
        workload = CollaborationWorkload(base_records=50, group_count=1,
                                         operations_per_group=1_000, batch_size=300, seed=6)
        sizes = [len(batch) for batch in workload.group_batches(0)]
        assert all(size <= 300 for size in sizes)
        assert sum(sizes) >= 700  # duplicates within a batch may shrink it slightly

    def test_all_groups_iterator(self):
        workload = CollaborationWorkload(base_records=50, group_count=3,
                                         operations_per_group=100, seed=7)
        groups = list(workload.all_groups())
        assert [g for g, _ in groups] == [0, 1, 2]
