"""Tests for the YCSB-style workload generator."""

import pytest

from repro.workloads.ycsb import READ, WRITE, Operation, YCSBConfig, YCSBWorkload


class TestConfig:
    def test_defaults_match_paper_table2(self):
        config = YCSBConfig()
        assert config.key_length_min == 5
        assert config.key_length_max == 15
        assert config.value_length_mean == 256

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            YCSBConfig(record_count=0)
        with pytest.raises(ValueError):
            YCSBConfig(write_ratio=1.5)
        with pytest.raises(ValueError):
            YCSBConfig(key_length_min=2)

    def test_config_or_overrides_not_both(self):
        with pytest.raises(ValueError):
            YCSBWorkload(YCSBConfig(), record_count=10)


class TestDataset:
    def test_dataset_size_and_uniqueness(self):
        workload = YCSBWorkload(record_count=5_000, seed=1)
        dataset = workload.initial_dataset()
        assert len(dataset) == 5_000
        assert len(workload.keys) == len(set(workload.keys)) == 5_000

    def test_key_length_distribution(self):
        workload = YCSBWorkload(record_count=2_000, seed=2)
        lengths = [len(key) for key in workload.keys]
        assert min(lengths) >= 5
        assert max(lengths) <= 15
        assert len(set(lengths)) > 3  # lengths actually vary

    def test_value_length_distribution(self):
        workload = YCSBWorkload(record_count=1_000, seed=3)
        lengths = [len(v) for v in workload.initial_dataset().values()]
        mean = sum(lengths) / len(lengths)
        assert 200 < mean < 320

    def test_deterministic_per_seed(self):
        a = YCSBWorkload(record_count=100, seed=4).initial_dataset()
        b = YCSBWorkload(record_count=100, seed=4).initial_dataset()
        c = YCSBWorkload(record_count=100, seed=5).initial_dataset()
        assert a == b
        assert a != c

    def test_load_batches_cover_dataset(self):
        workload = YCSBWorkload(record_count=1_000, batch_size=128, seed=6)
        merged = {}
        sizes = []
        for batch in workload.load_batches():
            sizes.append(len(batch))
            merged.update(batch)
        assert merged == workload.initial_dataset()
        assert all(size <= 128 for size in sizes)
        assert sizes.count(128) == len(sizes) - 1


class TestOperations:
    def test_read_only_workload(self):
        workload = YCSBWorkload(record_count=500, operation_count=1_000, write_ratio=0.0, seed=7)
        operations = list(workload.operations())
        assert len(operations) == 1_000
        assert all(op.kind == READ for op in operations)
        assert all(op.value is None for op in operations)

    def test_write_only_workload(self):
        workload = YCSBWorkload(record_count=500, operation_count=500, write_ratio=1.0, seed=8)
        operations = list(workload.operations())
        assert all(op.kind == WRITE and op.value is not None for op in operations)

    def test_mixed_workload_ratio(self):
        workload = YCSBWorkload(record_count=500, operation_count=4_000, write_ratio=0.5, seed=9)
        writes = sum(1 for op in workload.operations() if op.is_write)
        assert 0.45 < writes / 4_000 < 0.55

    def test_operations_reference_dataset_keys(self):
        workload = YCSBWorkload(record_count=200, operation_count=500, seed=10)
        keys = set(workload.keys)
        assert all(op.key in keys for op in workload.operations())

    def test_skewed_operations_concentrate(self):
        uniform = YCSBWorkload(record_count=1_000, operation_count=5_000, theta=0.0, seed=11)
        skewed = YCSBWorkload(record_count=1_000, operation_count=5_000, theta=0.9, seed=11)

        def distinct_keys(workload):
            return len({op.key for op in workload.operations()})

        assert distinct_keys(skewed) < distinct_keys(uniform)

    def test_operation_batches(self):
        workload = YCSBWorkload(record_count=100, operation_count=1_000, batch_size=300, seed=12)
        batches = list(workload.operation_batches())
        assert [len(b) for b in batches] == [300, 300, 300, 100]


class TestVersionStream:
    def test_update_only_stream(self):
        workload = YCSBWorkload(record_count=1_000, seed=13)
        versions = list(workload.version_stream(versions=5, updates_per_version=100))
        assert len(versions) == 5
        keys = set(workload.keys)
        for batch in versions:
            assert len(batch) == 100
            assert set(batch) <= keys

    def test_insert_stream_adds_new_keys(self):
        workload = YCSBWorkload(record_count=500, seed=14)
        versions = list(workload.version_stream(versions=3, updates_per_version=50,
                                                insert_ratio=1.0))
        existing = set(workload.keys)
        for batch in versions:
            assert not (set(batch) & existing)


class TestRemoteDriverFaults:
    def test_dead_worker_reported_not_hung(self, monkeypatch):
        """A worker killed before posting a result must raise, not hang.

        Regression: the parent used to block forever in
        ``result_queue.get()`` when a client process died without
        reporting (OOM kill, interpreter crash).
        """
        import multiprocessing
        import os

        if multiprocessing.get_start_method() != "fork":
            pytest.skip("patching the worker target requires fork")
        from repro.workloads import ycsb as ycsb_module
        from repro.workloads.ycsb import YCSBRemoteDriver

        def die_unreported(*args, **kwargs):
            os._exit(3)

        monkeypatch.setattr(ycsb_module, "_remote_worker", die_unreported)
        workload = YCSBWorkload(record_count=10, operation_count=10)
        driver = YCSBRemoteDriver(workload, "127.0.0.1", 1)
        with pytest.raises(RuntimeError, match="without reporting"):
            driver.run(num_processes=2, result_poll_seconds=0.2)
