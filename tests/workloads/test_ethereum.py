"""Tests for the synthetic Ethereum transaction/block generator."""

import pytest

from repro.encoding.rlp import rlp_decode
from repro.workloads.ethereum import EthereumDatasetGenerator


class TestEthereumDataset:
    def test_block_stream_shape(self):
        generator = EthereumDatasetGenerator(blocks=5, transactions_per_block=40, seed=1)
        blocks = generator.all_blocks()
        assert len(blocks) == 5
        assert all(len(block.transactions) == 40 for block in blocks)
        assert [block.number for block in blocks] == list(range(5))

    def test_transactions_are_valid_rlp(self):
        generator = EthereumDatasetGenerator(blocks=1, transactions_per_block=30, seed=2)
        block = generator.all_blocks()[0]
        for tx in block.transactions:
            decoded = rlp_decode(tx.raw)
            assert isinstance(decoded, list)
            assert len(decoded) == 9  # nonce..s of a legacy transaction
            assert len(decoded[3]) == 20  # recipient address

    def test_key_is_64_byte_hex_hash(self):
        generator = EthereumDatasetGenerator(blocks=1, transactions_per_block=10, seed=3)
        block = generator.all_blocks()[0]
        for tx in block.transactions:
            assert len(tx.key) == 64
            int(tx.key, 16)  # hex-decodable

    def test_size_distribution_matches_paper(self):
        """Raw transactions of at least 100 bytes, long-tailed, mean near 532."""
        generator = EthereumDatasetGenerator(blocks=6, transactions_per_block=150, seed=4)
        stats = generator.statistics(sample_blocks=6)
        assert stats["size_min"] >= 100
        assert 350 <= stats["size_avg"] <= 750
        assert stats["size_max"] > 2 * stats["size_avg"]

    def test_hash_links_between_blocks(self):
        generator = EthereumDatasetGenerator(blocks=3, transactions_per_block=5, seed=5)
        blocks = generator.all_blocks()
        assert blocks[1].parent_hash == blocks[0].block_hash
        assert blocks[2].parent_hash == blocks[1].block_hash

    def test_records_mapping(self):
        generator = EthereumDatasetGenerator(blocks=1, transactions_per_block=20, seed=6)
        block = generator.all_blocks()[0]
        records = block.records()
        assert len(records) == 20
        sample = block.transactions[0]
        assert records[sample.key] == sample.raw

    def test_deterministic(self):
        a = EthereumDatasetGenerator(blocks=2, transactions_per_block=10, seed=7).all_blocks()
        b = EthereumDatasetGenerator(blocks=2, transactions_per_block=10, seed=7).all_blocks()
        assert [t.tx_hash for blk in a for t in blk.transactions] == [
            t.tx_hash for blk in b for t in blk.transactions
        ]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            EthereumDatasetGenerator(blocks=0)
