"""Tests for the synthetic Wikipedia dataset generator."""

from repro.workloads.wiki import WikiDatasetGenerator


class TestWikiDataset:
    def test_initial_dataset_size(self):
        generator = WikiDatasetGenerator(page_count=500, seed=1)
        assert len(generator.initial_dataset()) == 500

    def test_key_shape_matches_paper(self):
        """URL keys within 31–298 bytes, average around 50."""
        generator = WikiDatasetGenerator(page_count=800, seed=2)
        stats = generator.statistics()
        assert stats["key_len_min"] >= 31
        assert stats["key_len_max"] <= 298
        assert 40 <= stats["key_len_avg"] <= 70

    def test_value_shape_matches_paper(self):
        """Abstract values within 1–1036 bytes, average around 96."""
        generator = WikiDatasetGenerator(page_count=800, seed=3)
        stats = generator.statistics()
        assert stats["value_len_min"] >= 1
        assert stats["value_len_max"] <= 1036
        assert 60 <= stats["value_len_avg"] <= 140

    def test_keys_are_urls(self):
        generator = WikiDatasetGenerator(page_count=20, seed=4)
        for key in generator.keys:
            assert key.startswith(b"https://en.wikipedia.org/wiki/")

    def test_deterministic(self):
        a = WikiDatasetGenerator(page_count=50, seed=5).initial_dataset()
        b = WikiDatasetGenerator(page_count=50, seed=5).initial_dataset()
        assert a == b

    def test_version_stream_shape(self):
        generator = WikiDatasetGenerator(page_count=200, versions=4,
                                         edits_per_version=30, new_pages_per_version=5, seed=6)
        versions = list(generator.version_stream())
        assert len(versions) == 4
        existing = set(generator.keys)
        for version in versions:
            assert len(version.changes) == 35
            edited = [k for k in version.changes if k in existing]
            new = [k for k in version.changes if k not in existing]
            assert len(edited) == 30
            assert len(new) == 5

    def test_edits_change_values(self):
        generator = WikiDatasetGenerator(page_count=100, versions=1,
                                         edits_per_version=20, new_pages_per_version=0, seed=7)
        initial = generator.initial_dataset()
        version = next(generator.version_stream())
        changed = sum(1 for key, value in version.changes.items() if initial.get(key) != value)
        assert changed >= 18  # essentially all edits produce a new value

    def test_read_keys_come_from_dataset(self):
        generator = WikiDatasetGenerator(page_count=100, seed=8)
        keys = set(generator.keys)
        assert all(k in keys for k in generator.read_keys(200))
