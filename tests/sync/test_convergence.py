"""Property suite: partitioned replicas converge after anti-entropy sync.

The replication claim ``Repository.sync`` has to uphold: take N replicas
of one repository, partition them, let each take arbitrary concurrent
writes, then heal by pairwise syncing — every replica ends at the *same*
branch heads (equal content digests and shard roots) holding the *same*
records, on all three SIRI index families.  Alongside convergence the
suite pins the cheaper invariants sync's efficiency rests on: a second
sync moves zero nodes (idempotence), heal order does not change the
converged content (the conflict resolver is symmetric, so merges
commute), and a blank replica's catch-up reproduces the source
byte-identically.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Repository
from tests.conftest import SIRI_INDEXES, build_index

NUM_SHARDS = 3

SEED_DATA = {f"seed{i:02d}".encode(): f"value{i}".encode() for i in range(20)}


def make_repo(index_class):
    """A small in-memory repository over ``index_class`` shards."""
    repo = Repository.open(
        index_factory=lambda store: build_index(index_class, store),
        num_shards=NUM_SHARDS)
    return repo.__enter__()


def lexmax(conflict):
    """The symmetric resolver convergence needs: greatest value wins.

    Deterministic and side-agnostic — both replicas of a conflicting pair
    pick the same winner no matter which of them runs the merge — which
    is what makes pairwise merges commute and heal order irrelevant.
    """
    candidates = [value for value in (conflict.ours, conflict.theirs)
                  if value is not None]
    return max(candidates) if candidates else None


def seeded_replicas(index_class, count):
    """``count`` replicas sharing the same seeded history."""
    replicas = [make_repo(index_class) for _ in range(count)]
    replicas[0].import_data(SEED_DATA, message="seed")
    for replica in replicas[1:]:
        replica.sync(replicas[0])
    return replicas


def apply_partition_writes(replica, batch):
    """One replica's concurrent writes: ``{key: value-or-None(=remove)}``."""
    branch = replica.default_branch
    for key, value in batch.items():
        if value is None:
            branch.remove(key)
        else:
            branch.put(key, value)
    branch.commit("partition writes")


def heal(replicas, pairs):
    """Pairwise anti-entropy rounds over ``pairs`` of replica indexes."""
    for left, right in pairs:
        replicas[left].sync(replicas[right], resolver=lexmax)


def assert_converged(replicas):
    """Equal heads (content digest + every shard root) and equal records."""
    reference = replicas[0].service.branch_head("main")
    reference_items = dict(replicas[0].branch("main").items())
    for replica in replicas[1:]:
        head = replica.service.branch_head("main")
        assert head.digest == reference.digest
        assert head.roots == reference.roots
        assert dict(replica.branch("main").items()) == reference_items


def expected_content(batches):
    """The converged records the lexmax resolver must produce.

    A key nobody effectively changed keeps its seed value; a key changed
    by exactly one replica takes that change; a key changed by several
    takes the greatest written value, or disappears when every change
    was a removal.
    """
    changes = {}
    for batch in batches:
        for key, value in batch.items():
            if value != SEED_DATA.get(key):
                changes.setdefault(key, []).append(value)
    expected = dict(SEED_DATA)
    for key, values in changes.items():
        written = [value for value in values if value is not None]
        if written:
            expected[key] = max(written)
        else:
            expected.pop(key, None)
    return expected


# A deliberately tiny keyspace: three replicas writing 0-6 keys each out
# of ~26 guarantees plenty of overlapping (conflicting) writes.
partition_keys = st.one_of(
    st.sampled_from(sorted(SEED_DATA)),
    st.binary(min_size=1, max_size=3))
partition_values = st.one_of(st.none(), st.binary(min_size=0, max_size=12))
partition_batches = st.lists(
    st.dictionaries(partition_keys, partition_values, max_size=6),
    min_size=3, max_size=3)


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestPartitionHeal:
    @given(batches=partition_batches)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_concurrent_writes_converge_after_pairwise_heal(
            self, index_class, batches):
        replicas = seeded_replicas(index_class, 3)
        try:
            for replica, batch in zip(replicas, batches):
                apply_partition_writes(replica, batch)
            # A ring of pairwise sessions: (0,1) settles those two, (1,2)
            # folds in the third, (0,1) carries the result back.
            heal(replicas, [(0, 1), (1, 2), (0, 1)])
            assert_converged(replicas)
            assert (dict(replicas[0].branch("main").items())
                    == expected_content(batches))
        finally:
            for replica in replicas:
                replica.close()

    @given(batches=partition_batches)
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.function_scoped_fixture,
                                     HealthCheck.too_slow])
    def test_heal_order_does_not_change_the_converged_content(
            self, index_class, batches):
        """Merges commute: two heal schedules, one converged digest."""
        first = seeded_replicas(index_class, 3)
        second = seeded_replicas(index_class, 3)
        try:
            for group in (first, second):
                for replica, batch in zip(group, batches):
                    apply_partition_writes(replica, batch)
            heal(first, [(0, 1), (1, 2), (0, 1)])
            heal(second, [(1, 2), (0, 2), (1, 2)])
            assert_converged(first)
            assert_converged(second)
            assert (first[0].service.branch_head("main").digest
                    == second[0].service.branch_head("main").digest)
        finally:
            for replica in first + second:
                replica.close()


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestSyncInvariants:
    def test_blank_replica_catchup_is_byte_identical(self, index_class):
        source = make_repo(index_class)
        blank = make_repo(index_class)
        try:
            source.import_data(SEED_DATA, message="seed")
            source.create_branch("feature")
            source.branch("feature").put(b"feature-key", b"feature-value")
            source.branch("feature").commit("feature work")

            report = blank.sync(source)
            assert {r.branch: r.action for r in report.branches} == {
                "main": "created_local", "feature": "created_local"}
            for branch in ("main", "feature"):
                ours = blank.service.branch_head(branch)
                theirs = source.service.branch_head(branch)
                assert ours.digest == theirs.digest
                assert ours.roots == theirs.roots
                assert (dict(blank.branch(branch).items())
                        == dict(source.branch(branch).items()))
        finally:
            source.close()
            blank.close()

    def test_second_sync_transfers_zero_nodes(self, index_class):
        source = make_repo(index_class)
        replica = make_repo(index_class)
        try:
            source.import_data(SEED_DATA, message="seed")
            first = replica.sync(source)
            assert first.total_nodes > 0
            second = replica.sync(source)
            assert second.total_nodes == 0
            assert all(r.action == "in_sync" for r in second.branches)
        finally:
            source.close()
            replica.close()

    def test_sync_traffic_scales_with_the_delta(self, index_class):
        """After catch-up, a small write syncs in a few nodes, not a reload."""
        source = make_repo(index_class)
        replica = make_repo(index_class)
        try:
            source.import_data(
                {f"bulk{i:04d}".encode(): b"x" * 32 for i in range(400)},
                message="bulk")
            full = replica.sync(source)
            source.default_branch.put(b"bulk0000", b"changed")
            source.default_branch.commit("one change")
            delta = replica.sync(source)
            assert delta.total_nodes > 0
            assert delta.total_nodes < full.total_nodes / 4
        finally:
            source.close()
            replica.close()
