"""Fault suite: sync survives dead links, lying peers, and crashed replicas.

Anti-entropy only earns its keep when the network is misbehaving, so
this suite attacks a sync session at every seam: the link dies at every
single source-operation boundary (heads, probes, fetches, pushes, the
head publish itself), the peer lies (corrupted node bytes, short
answers), and the replica crashes mid-catch-up over a durable directory
and resumes cold.  The invariants under attack:

* a failed session never moves a branch head, on either side;
* a lying peer raises — corrupted bytes never land in the store;
* a resumed session converges, and never re-pays bandwidth for the
  subtrees that landed (and flushed) before the failure.
"""

from __future__ import annotations

import pytest

from repro.api import Repository
from repro.core.errors import ReproError, SyncError, SyncIntegrityError
from repro.sync import LocalSyncSource, SyncSource
from tests.conftest import SIRI_INDEXES, build_index

NUM_SHARDS = 3

DATASET = {f"key{i:03d}".encode(): f"value{i:03d}".encode() for i in range(60)}


def make_repo(index_class, directory=None):
    repo = Repository.open(
        directory,
        index_factory=lambda store: build_index(index_class, store),
        num_shards=NUM_SHARDS)
    return repo.__enter__()


class FlakySource(SyncSource):
    """A peer whose link dies after a budget of operations.

    Delegates every :class:`~repro.sync.SyncSource` method to ``inner``,
    counting each call; once ``fail_after`` operations have gone through,
    the next one raises :class:`ConnectionError` — the link is down.
    ``fail_after=None`` never fails (used to count a session's
    operations so the kill tests can enumerate every boundary).
    """

    def __init__(self, inner: SyncSource, fail_after=None):
        self._inner = inner
        self._fail_after = fail_after
        self.ops = 0

    def _link(self):
        if self._fail_after is not None and self.ops >= self._fail_after:
            raise ConnectionError("injected link failure")
        self.ops += 1

    def num_shards(self):
        self._link()
        return self._inner.num_shards()

    def branch_states(self):
        self._link()
        return self._inner.branch_states()

    def missing_digests(self, shard_id, digests):
        self._link()
        return self._inner.missing_digests(shard_id, digests)

    def fetch_nodes(self, shard_id, digests):
        self._link()
        return self._inner.fetch_nodes(shard_id, digests)

    def push_nodes(self, shard_id, pairs):
        self._link()
        return self._inner.push_nodes(shard_id, pairs)

    def publish_head(self, branch, roots, expected, message):
        self._link()
        return self._inner.publish_head(branch, roots, expected, message)


class CorruptingSource(FlakySource):
    """A lying peer: every fetched node comes back with flipped bytes."""

    def fetch_nodes(self, shard_id, digests):
        pairs = super().fetch_nodes(shard_id, digests)
        return [(digest, data[:-1] + bytes([data[-1] ^ 0xFF]))
                for digest, data in pairs]


class ShortAnswerSource(FlakySource):
    """A broken peer: fetch answers silently drop the last node."""

    def fetch_nodes(self, shard_id, digests):
        return super().fetch_nodes(shard_id, digests)[:-1]


def count_session_ops(index_class, *, push: bool) -> int:
    """How many source operations one clean blank-replica session takes."""
    source = make_repo(index_class)
    replica = make_repo(index_class)
    try:
        populated, blank = (replica, source) if push else (source, replica)
        populated.import_data(DATASET, message="seed")
        flaky = FlakySource(LocalSyncSource(source))
        replica.sync(flaky)
        return flaky.ops
    finally:
        source.close()
        replica.close()


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestLinkDeath:
    def test_pull_killed_at_every_boundary_then_recovers(self, index_class):
        """The link dies at op k, for every k: no head moves, resync heals.

        Along the way at least one boundary must demonstrate the resume
        saving — the retry after a mid-catch-up kill re-transfers fewer
        nodes than the full catch-up, because the shards imported (and
        flushed) before the failure prune the retry's frontier.
        """
        total_ops = count_session_ops(index_class, push=False)
        baseline = None
        saved_bandwidth = False
        for boundary in range(total_ops):
            source = make_repo(index_class)
            replica = make_repo(index_class)
            try:
                source.import_data(DATASET, message="seed")
                flaky = FlakySource(LocalSyncSource(source),
                                    fail_after=boundary)
                with pytest.raises(ConnectionError):
                    replica.sync(flaky)
                # Nodes may have landed; the branch head must not have.
                assert "main" not in replica.service.branches()

                report = replica.sync(source)
                if baseline is None:
                    baseline = report.total_nodes
                assert report.total_nodes <= baseline
                if 0 < report.total_nodes < baseline:
                    saved_bandwidth = True
                head = replica.service.branch_head("main")
                assert head.digest == source.service.branch_head("main").digest
                assert dict(replica.branch("main").items()) == DATASET
            finally:
                source.close()
                replica.close()
        assert saved_bandwidth

    def test_push_killed_at_every_boundary_then_recovers(self, index_class):
        total_ops = count_session_ops(index_class, push=True)
        for boundary in range(total_ops):
            local = make_repo(index_class)
            remote = make_repo(index_class)
            try:
                local.import_data(DATASET, message="seed")
                flaky = FlakySource(LocalSyncSource(remote),
                                    fail_after=boundary)
                with pytest.raises(ConnectionError):
                    local.sync(flaky)
                assert "main" not in remote.service.branches()
                assert (local.service.branch_head("main").digest
                        is not None)

                local.sync(remote)
                assert (remote.service.branch_head("main").digest
                        == local.service.branch_head("main").digest)
                assert dict(remote.branch("main").items()) == DATASET
            finally:
                local.close()
                remote.close()


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestLyingPeer:
    def test_corrupted_nodes_raise_and_never_land(self, index_class):
        source = make_repo(index_class)
        replica = make_repo(index_class)
        try:
            source.import_data(DATASET, message="seed")
            with pytest.raises(SyncIntegrityError):
                replica.sync(CorruptingSource(LocalSyncSource(source)))
            # Nothing from the liar reached the store: every advertised
            # root is still missing locally, and no head was created.
            assert "main" not in replica.service.branches()
            head = source.service.branch_head("main")
            for shard_id, root in enumerate(head.roots):
                if root is not None:
                    assert replica.service.shard_missing_digests(
                        shard_id, [root]) == [root]

            # An honest session afterwards still converges.
            replica.sync(source)
            assert (replica.service.branch_head("main").digest
                    == head.digest)
        finally:
            source.close()
            replica.close()

    def test_short_answers_raise_sync_error(self, index_class):
        source = make_repo(index_class)
        replica = make_repo(index_class)
        try:
            source.import_data(DATASET, message="seed")
            with pytest.raises(SyncError):
                replica.sync(ShortAnswerSource(LocalSyncSource(source)))
            assert "main" not in replica.service.branches()
        finally:
            source.close()
            replica.close()


@pytest.mark.parametrize("index_class", SIRI_INDEXES, ids=lambda c: c.name)
class TestCrashAndResume:
    def test_durable_replica_resumes_after_crash(self, index_class, tmp_path):
        """Kill the link late in a catch-up, crash the replica process
        (close + reopen the durable directory), resync: the retry
        converges and re-transfers strictly fewer nodes than the full
        catch-up — the flushed shards survived the crash.
        """
        total_ops = count_session_ops(index_class, push=False)
        source = make_repo(index_class)
        replica = make_repo(index_class, str(tmp_path / "replica"))
        try:
            source.import_data(DATASET, message="seed")
            flaky = FlakySource(LocalSyncSource(source),
                                fail_after=total_ops - 1)
            with pytest.raises(ConnectionError):
                replica.sync(flaky)
            assert "main" not in replica.service.branches()
        finally:
            replica.close()

        baseline = None
        fresh = make_repo(index_class)
        try:
            baseline = fresh.sync(source).total_nodes
        finally:
            fresh.close()

        replica = make_repo(index_class, str(tmp_path / "replica"))
        try:
            resumed = replica.sync(source)
            assert 0 < resumed.total_nodes < baseline
            assert (replica.service.branch_head("main").digest
                    == source.service.branch_head("main").digest)
            assert dict(replica.branch("main").items()) == DATASET
        finally:
            source.close()
            replica.close()


class TestWireDeath:
    """The same recovery story over a real socket: server dies, restarts."""

    def test_server_restart_mid_replication(self, index_class=None):
        from repro.server.client import RemoteRepository
        from repro.server.server import RepositoryServer, ServerThread
        from repro.service import VersionedKVService

        def factory(store):
            return build_index(SIRI_INDEXES[0], store)

        service = VersionedKVService(factory, num_shards=NUM_SHARDS,
                                     batch_size=16)
        replica = make_repo(SIRI_INDEXES[0])
        try:
            for key, value in DATASET.items():
                service.put(key, value)
            service.commit("seed")

            server = RepositoryServer(service)
            thread = ServerThread(server)
            thread.start()
            host, port = server.address
            with RemoteRepository(host, port, timeout=10.0) as client:
                replica.sync(client)
            thread.stop()
            assert dict(replica.branch("main").items()) == DATASET

            # The server is gone: the next session fails loudly and the
            # replica's head stays where the completed session left it.
            head_before = replica.service.branch_head("main").digest
            with RemoteRepository(host, port, timeout=2.0,
                                  retries=0) as client:
                with pytest.raises((ReproError, OSError)):
                    replica.sync(client)
            assert replica.service.branch_head("main").digest == head_before

            # Restart (same service, new socket): replication resumes.
            service.put(b"after-restart", b"yes")
            service.commit("more")
            server = RepositoryServer(service)
            thread = ServerThread(server)
            thread.start()
            host, port = server.address
            try:
                with RemoteRepository(host, port, timeout=10.0) as client:
                    report = replica.sync(client)
                assert [r.action for r in report.branches] == ["pulled"]
                assert replica.branch("main").get(b"after-restart") == b"yes"
            finally:
                thread.stop()
        finally:
            replica.close()
            service.close()
