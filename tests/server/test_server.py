"""End-to-end coverage of every wire operation against a live server.

These are behavioural equivalence tests: each remote operation must
answer exactly what the in-process stack would — values, scan order,
diff entries, commit records, branch heads — because the client is
documented as a drop-in remote mirror of the repository surface.
The proof tests close the outsourced-database loop: the client verifies
the server's answers against Merkle roots, and a tampered reply fails
verification instead of being believed.
"""

from __future__ import annotations

import pytest

from tests.server.conftest import NUM_SHARDS, wait_drained

from repro.core.errors import (
    InvalidParameterError,
    KeyNotFoundError,
    ProofVerificationError,
)
from repro.core.version import UnknownBranchError
from repro.hashing.digest import Digest
from repro.server.client import RemoteRepository
from repro.server.protocol import CommitInfo, Op


def test_ping_and_reconnect(client):
    client.ping()
    client.ping()


def test_put_get_roundtrip(client):
    client.put(b"key", b"value")
    assert client.get(b"key") == b"value"
    assert client.get(b"absent") is None
    assert client.get(b"absent", default=b"fallback") == b"fallback"


def test_put_many_get_many_preserve_order(client):
    items = [(b"k%03d" % i, b"v%d" % i) for i in range(40)]
    assert client.put_many(items) == 40
    keys = [key for key, _ in reversed(items)]
    assert client.get_many(keys) == [b"v%d" % i for i in reversed(range(40))]


def test_remove_many(client):
    client.put_many([(b"a", b"1"), (b"b", b"2"), (b"c", b"3")])
    assert client.remove_many([b"a", b"c"]) == 2
    assert client.get_many([b"a", b"b", b"c"]) == [None, b"2", None]


def test_scan_bounds_prefix_and_limit(client):
    client.put_many([(b"app:%d" % i, b"a") for i in range(5)])
    client.put_many([(b"zoo:%d" % i, b"z") for i in range(5)])
    everything = client.scan()
    assert everything == sorted(everything)
    assert len(everything) == 10
    assert [k for k, _ in client.scan(prefix=b"app:")] == \
        [b"app:%d" % i for i in range(5)]
    bounded = client.scan(start=b"app:2", stop=b"zoo:1")
    assert bounded[0][0] == b"app:2" and bounded[-1][0] == b"zoo:0"
    limited = client.scan(limit=3)
    assert len(limited) == 3 and limited == everything[:3]


def test_commit_snapshot_and_versioned_reads(client):
    client.put(b"versioned", b"one")
    first = client.commit("first")
    client.put(b"versioned", b"two")
    second = client.commit("second")
    assert second.version == first.version + 1
    assert client.get(b"versioned", version=first.version) == b"one"
    assert client.get(b"versioned", version=second.version) == b"two"
    assert client.snapshot().version == second.version
    assert client.snapshot(first.version).message == "first"
    assert len(first.digest) == 32
    assert len(first.roots) == 4  # one root per shard


def test_diff_between_versions(client):
    client.put_many([(b"stay", b"s"), (b"change", b"old"), (b"drop", b"d")])
    first = client.commit("base")
    client.put(b"change", b"new")
    client.put(b"add", b"a")
    client.remove(b"drop")
    second = client.commit("next")
    entries = {e.key: e.kind for e in client.diff(first.version, second.version)}
    assert entries == {b"change": "changed", b"add": "added", b"drop": "removed"}
    # None = latest state on both sides -> empty diff.
    assert client.diff(second.version) == []


def test_branch_operations(client):
    client.put(b"trunk", b"t")
    base = client.commit("base")
    fork = client.create_branch("feature")
    assert fork.parents == (base.version,)
    assert set(client.branches()) >= {"main", "feature"}
    head = client.branch_head("feature")
    assert head.version == fork.version
    assert head.branch == "feature"
    with pytest.raises(UnknownBranchError):
        client.branch_head("missing")
    with pytest.raises(InvalidParameterError):
        client.create_branch("feature")  # duplicate


def test_prove_and_verified_get(client):
    client.put_many([(b"proof:%d" % i, b"val%d" % i) for i in range(20)])
    commit = client.commit("proofs")
    proof = client.prove(b"proof:7")
    assert proof.value == b"val7"
    assert proof.verify()
    # The shard root in the proof matches the commit's recorded root —
    # the out-of-band anchor a distrustful client checks against.
    assert proof.root == commit.roots[proof.shard_id]
    assert client.verified_get(b"proof:7") == b"val7"
    # Proof of absence verifies too.
    absent = client.prove(b"proof:none")
    assert absent.value is None and absent.verify()


def test_tampered_proof_fails_verification(client):
    client.put(b"honest", b"answer")
    client.commit("c")
    proof = client.prove(b"honest", verify=False)
    proof.value = b"forged"
    with pytest.raises(ProofVerificationError):
        proof.verify()
    lied_root = client.prove(b"honest", verify=False)
    lied_root.root = bytes(32)
    with pytest.raises(ProofVerificationError):
        lied_root.verify()


def _forge_prove_responses(client, monkeypatch, forge):
    """Route PROVE answers through ``forge`` (a lying-server simulator)."""
    real = client.request

    def patched(request):
        response = real(request)
        if request.op is Op.PROVE:
            forge(response.proof)
        return response

    monkeypatch.setattr(client, "request", patched)


def test_verified_get_rejects_fabricated_absence(client, monkeypatch):
    """A server cannot deny a committed key with a rootless empty answer.

    Regression: `root=None, no steps` used to verify vacuously, so a
    malicious server could claim any key was absent.  Anchored
    verification compares the claimed root against the committed shard
    root, which is non-None for the shard holding the key.
    """
    client.put(b"exists", b"real-value")
    client.commit("anchored")

    def deny(proof):
        proof.value = None
        proof.root = None
        proof.steps = []

    _forge_prove_responses(client, monkeypatch, deny)
    with pytest.raises(ProofVerificationError):
        client.verified_get(b"exists")


def test_prove_rejects_misrouted_shard(client, monkeypatch):
    """Pointing the proof at another shard's root must not verify."""
    client.put(b"routed", b"v")
    client.commit("c")

    def misroute(proof):
        proof.shard_id = (proof.shard_id + 1) % NUM_SHARDS

    _forge_prove_responses(client, monkeypatch, misroute)
    with pytest.raises(ProofVerificationError):
        client.prove(b"routed")


def test_trusted_commit_anchors_out_of_band(client):
    client.put(b"oob", b"w")
    commit = client.commit("oob anchor")
    proof = client.prove(b"oob", trusted_commit=commit)
    assert proof.value == b"w"
    # A tampered out-of-band record rejects the server's honest proof.
    tampered = CommitInfo(
        version=commit.version, digest=commit.digest, branch=commit.branch,
        parents=commit.parents, timestamp=commit.timestamp,
        message=commit.message,
        roots=tuple(bytes(32) for _ in commit.roots))
    with pytest.raises(ProofVerificationError):
        client.prove(b"oob", trusted_commit=tampered)
    # The trusted commit must describe the requested version.
    with pytest.raises(ProofVerificationError):
        client.prove(b"oob", version=commit.version + 999,
                     trusted_commit=commit)


def test_verified_get_at_historical_version(client):
    client.put(b"hist", b"v1")
    first = client.commit("one")
    client.put(b"hist", b"v2")
    client.commit("two")
    assert client.verified_get(b"hist", version=first.version) == b"v1"
    assert client.verified_get(b"hist") == b"v2"


def test_pipeline_interleaves_many_requests(client):
    client.put_many([(b"p%02d" % i, b"v%02d" % i) for i in range(30)])
    with client.pipeline() as pipe:
        handles = [pipe.get(b"p%02d" % i) for i in range(30)]
        writes = [pipe.put(b"extra%d" % i, b"e") for i in range(5)]
        assert [h.result() for h in handles] == [b"v%02d" % i for i in range(30)]
        assert [w.result() for w in writes] == [1] * 5
    assert client.get(b"extra3") == b"e"


def test_concurrent_clients_share_one_server(live_server):
    host, port = live_server.address
    with RemoteRepository(host, port) as one, RemoteRepository(host, port) as two:
        one.put(b"shared", b"from-one")
        assert two.get(b"shared") == b"from-one"
        two.put(b"shared", b"from-two")
        assert one.get(b"shared") == b"from-two"


def test_per_op_latency_histograms_populated(live_server, client):
    client.put(b"h", b"v")
    client.get(b"h")
    client.commit("h")
    wait_drained(live_server)
    report = live_server.metrics.snapshot()
    assert report["connections_opened"] >= 1
    latency = report["op_latency"]
    for op_name in ("put_many", "get", "commit"):
        assert latency[op_name]["count"] >= 1
        assert latency[op_name]["p99"] >= latency[op_name]["p50"] >= 0


def test_snapshot_before_any_commit_is_an_error(client):
    with pytest.raises(UnknownBranchError):
        client.snapshot()


def test_key_value_coercion_matches_local_api(client):
    client.put("text-key", "text-value")  # str coerced like the local API
    assert client.get("text-key") == b"text-value"
