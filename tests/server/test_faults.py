"""Fault injection against a live server: torn frames, dead clients, shard errors.

The server's failure contract (docs/SERVER.md):

* A client that vanishes mid-frame costs the server nothing — the
  partial frame is dropped and the listener keeps serving.
* A frame that parses as a frame but not as a request is answered with a
  ``protocol`` error frame, then the connection is closed (no trusted
  resync point exists); other connections are unaffected.
* An *operation* failure (here: a shard task blowing up inside the
  executor) is answered with an error frame carrying the mapped code,
  and the same connection keeps working — errors are per-request, not
  per-connection.

The torn-frame loop mirrors the kill-point style of the storage torn-
write tests: every byte boundary of a valid framed request is a cut
point, and each cut must leave the server fully serviceable.
"""

from __future__ import annotations

import socket
import time

import pytest

from tests.server.conftest import make_service, wait_drained

from repro.core.errors import RemoteServerError
from repro.server import protocol
from repro.server.client import RemoteRepository
from repro.server.protocol import Op, Request, Status
from repro.server.server import RepositoryServer, ServerThread


def _connect(address):
    sock = socket.create_connection(address, timeout=10)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    return sock


def _framed_get(key: bytes = b"k", request_id: int = 1) -> bytes:
    return protocol.encode_frame(protocol.encode_request(
        Request(op=Op.GET, request_id=request_id, key=key)))


def _recv_response(sock) -> protocol.Response:
    decoder = protocol.FrameDecoder()
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            raise ConnectionError("server closed the connection")
        frames = decoder.feed(chunk)
        if frames:
            return protocol.decode_response(frames[0])


def test_disconnect_mid_request_leaves_server_alive(live_server, client):
    client.put(b"k", b"v")
    frame = _framed_get()
    for cut in (1, 3, len(frame) // 2, len(frame) - 1):
        sock = _connect(live_server.address)
        sock.sendall(frame[:cut])
        sock.close()
    # The listener is still fine and serves complete requests.
    assert client.get(b"k") == b"v"


def test_torn_frame_at_every_byte_boundary(live_server, client):
    """Kill-point sweep: a client dying at any offset never wedges the server."""
    client.put(b"torn", b"value")
    frame = _framed_get(b"torn")
    for cut in range(len(frame)):
        sock = _connect(live_server.address)
        if cut:
            sock.sendall(frame[:cut])
        sock.close()
    assert client.get(b"torn") == b"value"
    # Every torn connection was retired; none left a queue entry behind.
    total = wait_drained(live_server)
    assert total.depth == 0
    assert total.admitted == total.completed


def test_garbage_body_gets_protocol_error_then_close(live_server, client):
    # A framed body with an unknown opcode: framing holds, decoding fails.
    bad_body = bytes([protocol.PROTOCOL_VERSION, 222]) + (77).to_bytes(4, "big")
    sock = _connect(live_server.address)
    sock.sendall(protocol.encode_frame(bad_body))
    response = _recv_response(sock)
    assert response.status is Status.ERROR
    assert response.error_code == "protocol"
    assert response.request_id == 77  # best-effort id echo from the header
    # The server hangs up after an undecodable frame...
    assert sock.recv(65536) == b""
    sock.close()
    # ...but fresh connections (and pooled ones) are unaffected.
    client.ping()
    assert live_server.metrics.protocol_errors >= 1


def test_unframeable_stream_gets_protocol_error_then_close(live_server, client):
    # A declared length beyond the server's frame limit.
    sock = _connect(live_server.address)
    sock.sendall((live_server.max_frame_bytes + 1).to_bytes(4, "big"))
    response = _recv_response(sock)
    assert response.status is Status.ERROR
    assert response.error_code == "protocol"
    assert sock.recv(65536) == b""
    sock.close()
    client.ping()


def test_shard_error_surfaces_as_error_frame_connection_usable(
        live_server, client, monkeypatch):
    client.put_many([(b"a", b"1"), (b"b", b"2")])
    client.commit("seed")

    def boom(*args, **kwargs):
        raise RuntimeError("injected shard failure")

    # GET_MANY fans out through the executor; a failing shard task must
    # come back as ShardExecutionError -> "shard_execution" error frame.
    monkeypatch.setattr(live_server.service, "get", boom)
    with pytest.raises(RemoteServerError) as excinfo:
        client.get_many([b"a", b"b"])
    assert excinfo.value.code == "shard_execution"
    assert "injected shard failure" in str(excinfo.value)

    # The error was per-request: the same pooled connection keeps working.
    monkeypatch.undo()
    assert client.get_many([b"a", b"b"]) == [b"1", b"2"]
    client.ping()


def test_error_frames_do_not_leak_queue_depth(live_server, client, monkeypatch):
    def boom(*args, **kwargs):
        raise RuntimeError("injected")

    monkeypatch.setattr(live_server.service, "get", boom)
    for _ in range(5):
        with pytest.raises(RemoteServerError):
            client.get_many([b"a", b"b"])
    monkeypatch.undo()
    total = wait_drained(live_server)
    assert total.depth == 0
    assert total.admitted == total.completed


def test_oversized_response_degrades_to_error_frame_not_dead_worker():
    """A response over the frame limit must not kill the queue worker.

    Regression: an unbounded SCAN whose result exceeded
    ``max_frame_bytes`` used to raise out of the worker coroutine,
    permanently wedging that queue (later requests hung, shutdown
    deadlocked).  It must instead answer ``response_too_large`` and keep
    both the worker and the connection serviceable.
    """
    server = RepositoryServer(make_service(), max_frame_bytes=2048)
    with ServerThread(server) as (host, port):
        with RemoteRepository(host, port) as remote:
            value = b"x" * 64
            for base in range(0, 100, 10):  # batches small enough to frame
                remote.put_many([(b"big:%03d" % i, value)
                                 for i in range(base, base + 10)])
            with pytest.raises(RemoteServerError) as excinfo:
                remote.scan()  # ~7.5 KB of records > the 2 KiB limit
            assert excinfo.value.code == "response_too_large"
            # The control-queue worker survived: the same connection
            # still serves scans that fit, commits, and single gets.
            assert len(remote.scan(limit=3)) == 3
            remote.commit("still alive")
            assert remote.get(b"big:007") == value
        assert server.metrics.send_errors >= 1
        total = wait_drained(server)
        assert total.depth == 0
        assert total.admitted == total.completed
    # Reaching here means shutdown's queue.join() did not deadlock.


def test_valid_frames_before_corruption_are_answered(live_server, client):
    """Pipelined requests completed before corrupt bytes still get answers."""
    client.put(b"pre", b"vx")
    good = _framed_get(b"pre", request_id=9)
    corrupt = (live_server.max_frame_bytes + 1).to_bytes(4, "big")
    sock = _connect(live_server.address)
    sock.sendall(good + corrupt)
    decoder = protocol.FrameDecoder()
    responses = []
    while True:
        chunk = sock.recv(65536)
        if not chunk:
            break
        responses.extend(protocol.decode_response(f)
                         for f in decoder.feed(chunk))
    sock.close()
    assert [r.request_id for r in responses] == [9, 0]
    answered, error = responses
    assert answered.status is Status.OK
    assert answered.value == b"vx"
    assert error.status is Status.ERROR
    assert error.error_code == "protocol"


def test_pool_exhaustion_raises_descriptive_timeout(live_server):
    host, port = live_server.address
    with RemoteRepository(host, port, pool_size=1, timeout=0.2,
                          retries=0) as remote:
        pipe = remote.pipeline()  # holds the pool's only connection
        try:
            with pytest.raises(TimeoutError, match="pool exhausted"):
                remote.ping()
        finally:
            pipe.close()
        remote.ping()  # the returned connection serves again


def test_pipeline_failure_fails_all_outstanding_handles(live_server, monkeypatch):
    host, port = live_server.address
    real_get = live_server.service.get

    # Delay only the second request's answer so its response cannot have
    # been received (and buffered client-side) before the socket is cut.
    def slow_get(key, *args, **kwargs):
        if key == b"slow":
            time.sleep(0.5)
        return real_get(key, *args, **kwargs)

    monkeypatch.setattr(live_server.service, "get", slow_get)
    with RemoteRepository(host, port) as remote:
        remote.put(b"p", b"q")
        pipe = remote.pipeline()
        first = pipe.get(b"p")
        second = pipe.get(b"slow")
        assert first.result() == b"q"
        # Sever the pipeline's socket out from under it.
        pipe._connection.sock.close()
        with pytest.raises((ConnectionError, OSError)):
            second.result()
        # The pool discards the broken connection; new requests still work.
        pipe._client._release(pipe._connection, broken=True)
        assert remote.get(b"p") == b"q"
