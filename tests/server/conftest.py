"""Shared fixtures for the wire-server suites: a live 4-shard server."""

from __future__ import annotations

import time

import pytest

from repro.indexes import POSTree
from repro.server.client import RemoteRepository
from repro.server.server import RepositoryServer, ServerThread
from repro.service import VersionedKVService
from repro.storage.memory import InMemoryNodeStore

NUM_SHARDS = 4


def make_index(store=None, **overrides):
    """A small in-memory POS-tree, the default shard index for the suites."""
    backing = store if store is not None else InMemoryNodeStore()
    return POSTree(backing, target_node_size=512, estimated_entry_size=64)


def make_service(**kwargs):
    """A 4-shard in-memory service with test-friendly parameters."""
    kwargs.setdefault("num_shards", NUM_SHARDS)
    kwargs.setdefault("batch_size", 16)
    return VersionedKVService(make_index, **kwargs)


def wait_drained(server, timeout: float = 10.0):
    """Poll until every admission queue reports empty; return the counters.

    A response frame reaches the client a moment before the worker
    records completion, so metrics assertions made right after a reply
    must allow the server a beat to settle.
    """
    deadline = time.monotonic() + timeout
    while True:
        total = server.metrics.total_queue_counters()
        if total.depth == 0 and total.admitted == total.completed:
            return total
        if time.monotonic() > deadline:
            return total
        time.sleep(0.01)


@pytest.fixture
def live_server():
    """A started :class:`RepositoryServer` on a background loop thread."""
    server = RepositoryServer(make_service())
    thread = ServerThread(server)
    thread.start()
    yield server
    thread.stop()
    server.service.close()


@pytest.fixture
def client(live_server):
    """A pooled client connected to ``live_server``."""
    host, port = live_server.address
    with RemoteRepository(host, port, timeout=30.0) as remote:
        yield remote
