"""Wire-codec property tests: round-trip identity and fuzz resilience.

Two families of guarantees:

* **Round-trip identity** — for every operation, arbitrary keys, values,
  versions and branch names survive ``encode → frame → decode``
  unchanged (Hypothesis-generated inputs).
* **Decoder hardening** — arbitrary bytes, truncations of valid frames
  at *every* byte boundary, oversized declared lengths and trailing
  garbage all raise the typed
  :class:`~repro.core.errors.ProtocolError` — never another exception,
  never an over-read, never a hang.  The 10k-frame fuzzer here is the
  in-process half of the acceptance criterion; ``bench_server.py`` runs
  the same generator against a live socket.
"""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import ProtocolError
from repro.server import protocol
from repro.server.protocol import (
    MAX_FRAME_BYTES,
    CommitInfo,
    FrameDecoder,
    Op,
    Request,
    Response,
    Status,
    WireProof,
    decode_request,
    decode_response,
    encode_frame,
    encode_request,
    encode_response,
)

keys = st.binary(min_size=0, max_size=64)
values = st.binary(min_size=0, max_size=256)
versions = st.none() | st.integers(min_value=0, max_value=2**63)
names = st.text(min_size=0, max_size=32)


def roundtrip_request(request: Request) -> Request:
    return decode_request(encode_request(request))


def roundtrip_response(response: Response) -> Response:
    return decode_response(encode_response(response))


# ---------------------------------------------------------------------------
# Request round trips
# ---------------------------------------------------------------------------

@given(key=keys, version=versions, rid=st.integers(0, 2**32 - 1),
       op=st.sampled_from([Op.GET, Op.PROVE]))
def test_single_key_request_roundtrip(key, version, rid, op):
    out = roundtrip_request(Request(op=op, request_id=rid, key=key, version=version))
    assert (out.op, out.request_id, out.key, out.version) == (op, rid, key, version)


@given(ks=st.lists(keys, max_size=16), version=versions)
def test_get_many_request_roundtrip(ks, version):
    out = roundtrip_request(Request(op=Op.GET_MANY, keys=ks, version=version))
    assert out.keys == ks and out.version == version


@given(items=st.lists(st.tuples(keys, values), max_size=16))
def test_put_many_request_roundtrip(items):
    assert roundtrip_request(Request(op=Op.PUT_MANY, items=items)).items == items


@given(ks=st.lists(keys, max_size=16))
def test_remove_many_request_roundtrip(ks):
    assert roundtrip_request(Request(op=Op.REMOVE_MANY, keys=ks)).keys == ks


@given(start=st.none() | keys, stop=st.none() | keys, prefix=st.none() | keys,
       limit=st.integers(0, 2**32 - 1), version=versions)
def test_scan_request_roundtrip(start, stop, prefix, limit, version):
    out = roundtrip_request(Request(
        op=Op.SCAN, start=start, stop=stop, prefix=prefix,
        limit=limit, version=version))
    assert (out.start, out.stop, out.prefix, out.limit, out.version) == \
        (start, stop, prefix, limit, version)


@given(left=versions, right=versions)
def test_diff_request_roundtrip(left, right):
    out = roundtrip_request(Request(op=Op.DIFF, version=left, right_version=right))
    assert (out.version, out.right_version) == (left, right)


@given(message=names)
def test_commit_request_roundtrip(message):
    assert roundtrip_request(Request(op=Op.COMMIT, message=message)).message == message


@given(branch=names, from_branch=st.none() | names)
def test_branch_create_request_roundtrip(branch, from_branch):
    out = roundtrip_request(Request(
        op=Op.BRANCH_CREATE, branch=branch, from_branch=from_branch))
    assert (out.branch, out.from_branch) == (branch, from_branch)


@given(version=versions)
def test_snapshot_request_roundtrip(version):
    assert roundtrip_request(
        Request(op=Op.SNAPSHOT, version=version)).version == version


def test_empty_payload_requests_roundtrip():
    for op in (Op.PING, Op.BRANCHES):
        assert roundtrip_request(Request(op=op, request_id=9)).op is op


# ---------------------------------------------------------------------------
# Response round trips
# ---------------------------------------------------------------------------

commits = st.builds(
    CommitInfo,
    version=st.integers(0, 2**63),
    digest=st.binary(min_size=32, max_size=32),
    branch=names,
    parents=st.tuples() | st.tuples(st.integers(0, 2**63)),
    timestamp=st.floats(allow_nan=False, allow_infinity=False),
    message=names,
    roots=st.lists(st.none() | st.binary(min_size=32, max_size=32),
                   max_size=8).map(tuple),
)


@given(value=st.none() | values)
def test_get_response_roundtrip(value):
    out = roundtrip_response(Response(status=Status.OK, op=Op.GET, value=value))
    assert out.value == value


@given(vs=st.lists(st.none() | values, max_size=16))
def test_get_many_response_roundtrip(vs):
    out = roundtrip_response(Response(status=Status.OK, op=Op.GET_MANY, values=vs))
    assert out.values == vs


@given(items=st.lists(st.tuples(keys, values), max_size=16),
       truncated=st.booleans())
def test_scan_response_roundtrip(items, truncated):
    out = roundtrip_response(Response(
        status=Status.OK, op=Op.SCAN, items=items, truncated=truncated))
    assert out.items == items and out.truncated == truncated


@given(entries=st.lists(
    st.tuples(keys, st.none() | values, st.none() | values), max_size=16))
def test_diff_response_roundtrip(entries):
    out = roundtrip_response(Response(
        status=Status.OK, op=Op.DIFF, diff_entries=entries))
    assert out.diff_entries == entries


@given(commit=commits, op=st.sampled_from(
    [Op.COMMIT, Op.SNAPSHOT, Op.BRANCH_CREATE, Op.BRANCH_HEAD]))
def test_commit_response_roundtrip(commit, op):
    assert roundtrip_response(
        Response(status=Status.OK, op=op, commit=commit)).commit == commit


@given(branches=st.lists(names, max_size=8))
def test_branches_response_roundtrip(branches):
    out = roundtrip_response(Response(
        status=Status.OK, op=Op.BRANCHES, branches=branches))
    assert out.branches == branches


@given(key=keys, value=st.none() | values, index_name=names,
       shard=st.integers(0, 2**32 - 1), root=st.none() | st.binary(min_size=32, max_size=32),
       steps=st.lists(st.tuples(st.integers(0, 2**32 - 1), values), max_size=8))
def test_prove_response_roundtrip(key, value, index_name, shard, root, steps):
    proof = WireProof(key, value, index_name, shard, root, steps)
    out = roundtrip_response(Response(status=Status.OK, op=Op.PROVE, proof=proof))
    assert out.proof == proof


@given(code=names, message=names,
       status=st.sampled_from([Status.ERROR, Status.BUSY]),
       op=st.sampled_from(list(Op)))
def test_error_response_roundtrip(code, message, status, op):
    out = roundtrip_response(Response(
        status=status, op=op, request_id=7,
        error_code=code, error_message=message))
    assert (out.status, out.error_code, out.error_message) == (status, code, message)


@given(ack=st.integers(0, 2**32 - 1), op=st.sampled_from([Op.PUT_MANY, Op.REMOVE_MANY]))
def test_ack_response_roundtrip(ack, op):
    assert roundtrip_response(
        Response(status=Status.OK, op=op, ack_count=ack)).ack_count == ack


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------

def test_frame_decoder_reassembles_split_frames():
    bodies = [encode_request(Request(op=Op.GET, request_id=i, key=bytes([i])))
              for i in range(5)]
    stream = b"".join(encode_frame(b) for b in bodies)
    decoder = FrameDecoder()
    out = []
    for i in range(0, len(stream), 3):  # drip-feed 3 bytes at a time
        out.extend(decoder.feed(stream[i:i + 3]))
    assert out == bodies
    assert decoder.buffered_bytes == 0


def test_frame_too_large_rejected_before_buffering():
    decoder = FrameDecoder(max_frame_bytes=1024)
    with pytest.raises(ProtocolError):
        decoder.feed((1 << 20).to_bytes(4, "big"))


def test_frame_below_header_size_rejected():
    with pytest.raises(ProtocolError):
        FrameDecoder().feed((2).to_bytes(4, "big") + b"xx")


def test_encode_frame_enforces_limit():
    with pytest.raises(ProtocolError):
        encode_frame(b"x" * 100, max_frame_bytes=10)


def test_frames_completed_before_corruption_are_retrievable():
    """A corrupt length field must not discard already-parsed frames."""
    bodies = [encode_request(Request(op=Op.PING, request_id=i))
              for i in range(3)]
    stream = b"".join(encode_frame(b) for b in bodies)
    corrupt = (1).to_bytes(4, "big")  # below the message-header minimum
    decoder = FrameDecoder()
    with pytest.raises(ProtocolError):
        decoder.feed(stream + corrupt)
    assert decoder.take_completed() == bodies
    # take_completed drains: a second call yields nothing.
    assert decoder.take_completed() == []


def test_take_completed_empty_after_normal_feed():
    decoder = FrameDecoder()
    body = encode_request(Request(op=Op.PING, request_id=1))
    assert decoder.feed(encode_frame(body)) == [body]
    assert decoder.take_completed() == []


# ---------------------------------------------------------------------------
# Decoder hardening
# ---------------------------------------------------------------------------

def _sample_bodies():
    """One valid encoded body per message shape (requests + responses)."""
    commit = CommitInfo(3, b"\x01" * 32, "main", (1, 2), 12.5, "msg",
                        (None, b"\x02" * 32))
    proof = WireProof(b"k", b"v", "pos", 1, b"\x03" * 32, [(0, b"node")])
    reqs = [
        Request(op=Op.PING, request_id=1),
        Request(op=Op.GET, request_id=2, key=b"key", version=7),
        Request(op=Op.GET_MANY, request_id=3, keys=[b"a", b"b"]),
        Request(op=Op.PUT_MANY, request_id=4, items=[(b"a", b"1")]),
        Request(op=Op.REMOVE_MANY, request_id=5, keys=[b"a"]),
        Request(op=Op.SCAN, request_id=6, start=b"a", stop=b"z", limit=5),
        Request(op=Op.DIFF, request_id=7, version=1, right_version=2),
        Request(op=Op.COMMIT, request_id=8, message="m"),
        Request(op=Op.SNAPSHOT, request_id=9, version=1),
        Request(op=Op.BRANCHES, request_id=10),
        Request(op=Op.BRANCH_CREATE, request_id=11, branch="dev"),
        Request(op=Op.BRANCH_HEAD, request_id=12, branch="dev"),
        Request(op=Op.PROVE, request_id=13, key=b"key"),
    ]
    resps = [
        Response(status=Status.OK, op=Op.GET, value=b"v"),
        Response(status=Status.OK, op=Op.GET_MANY, values=[b"v", None]),
        Response(status=Status.OK, op=Op.SCAN, items=[(b"k", b"v")]),
        Response(status=Status.OK, op=Op.DIFF, diff_entries=[(b"k", b"l", None)]),
        Response(status=Status.OK, op=Op.COMMIT, commit=commit),
        Response(status=Status.OK, op=Op.BRANCHES, branches=["main"]),
        Response(status=Status.OK, op=Op.PROVE, proof=proof),
        Response(status=Status.ERROR, op=Op.GET, error_code="x", error_message="y"),
    ]
    return ([encode_request(r) for r in reqs],
            [encode_response(r) for r in resps])


def test_every_truncation_raises_protocol_error():
    """Cutting any valid body at any byte boundary must raise, not crash."""
    req_bodies, resp_bodies = _sample_bodies()
    for body in req_bodies:
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                decode_request(body[:cut])
    for body in resp_bodies:
        for cut in range(len(body)):
            with pytest.raises(ProtocolError):
                decode_response(body[:cut])


def test_trailing_garbage_raises():
    body = encode_request(Request(op=Op.GET, request_id=1, key=b"k"))
    with pytest.raises(ProtocolError):
        decode_request(body + b"\x00")


def test_unknown_opcode_and_version_raise():
    with pytest.raises(ProtocolError):
        decode_request(bytes([protocol.PROTOCOL_VERSION, 250]) + b"\x00" * 4)
    with pytest.raises(ProtocolError):
        decode_request(bytes([99, int(Op.PING)]) + b"\x00" * 4)


def test_hostile_count_field_rejected_without_allocation():
    # GET_MANY with a count claiming 2**32-1 keys in a tiny payload.
    body = bytes([protocol.PROTOCOL_VERSION, int(Op.GET_MANY)])
    body += (1).to_bytes(4, "big") + (0xFFFFFFFF).to_bytes(4, "big")
    with pytest.raises(ProtocolError):
        decode_request(body)


def _mutate(body: bytes, rng: random.Random) -> bytes:
    """One random corruption: bit flip, truncation, insertion, or deletion."""
    choice = rng.randrange(4)
    raw = bytearray(body)
    if choice == 0 and raw:
        raw[rng.randrange(len(raw))] ^= 1 << rng.randrange(8)
    elif choice == 1:
        del raw[rng.randrange(len(raw) + 1):]
    elif choice == 2:
        pos = rng.randrange(len(raw) + 1)
        raw[pos:pos] = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 5)))
    elif raw:
        pos = rng.randrange(len(raw))
        del raw[pos:pos + rng.randrange(1, 5)]
    return bytes(raw)


def test_fuzz_10k_frames_decode_or_protocol_error():
    """≥10k random and mutated bodies: decode cleanly or raise the typed error.

    This is the acceptance-criterion fuzzer.  Any other exception type
    (or an over-read past the body) fails the test immediately.
    """
    rng = random.Random(0xF0CACC1A)
    req_bodies, resp_bodies = _sample_bodies()
    survived = 0
    for i in range(10_000):
        if i % 2 == 0:
            body = bytes(rng.randrange(256)
                         for _ in range(rng.randrange(0, 128)))
        else:
            pool = req_bodies if i % 4 == 1 else resp_bodies
            body = _mutate(pool[rng.randrange(len(pool))], rng)
        for decode in (decode_request, decode_response):
            try:
                decode(body)
            except ProtocolError:
                pass
        survived += 1
    assert survived == 10_000


@settings(max_examples=200)
@given(data=st.binary(max_size=256))
def test_hypothesis_fuzz_decoders(data):
    """Hypothesis-driven variant of the fuzzer (shrinks on failure)."""
    for decode in (decode_request, decode_response):
        try:
            decode(data)
        except ProtocolError:
            pass


@given(data=st.binary(max_size=64))
def test_fuzzed_stream_never_over_reads_framer(data):
    decoder = FrameDecoder(max_frame_bytes=1024)
    try:
        frames = decoder.feed(data)
    except ProtocolError:
        return
    consumed = sum(len(f) + protocol.LENGTH_PREFIX_BYTES for f in frames)
    assert consumed + decoder.buffered_bytes == len(data)
