"""Backpressure under load: BUSY frames, no deadlock, queues drain to zero.

The server's admission invariant: every request either enters a bounded
queue or is refused *immediately* with a ``BUSY`` frame — the server
never buffers beyond ``queue_capacity`` per queue, so a slow storage
backend shows up as client-visible backpressure, not memory growth.

The slow consumer here is real: shard stores are wrapped in
:class:`~repro.storage.metered.MeteredNodeStore` with ``realtime=True``
put cost and the service runs with ``batch_size=1``, so every write
request pays a genuine (GIL-releasing) sleep inside the worker.  Fast
writer threads then outrun the drain rate and must see BUSY.  After the
writers stop, the drained server must report ``depth == 0`` and
``admitted == completed`` on every queue — a leak here means a request
was admitted and never answered (the deadlock shape this suite exists
to catch).

``scripts/run_stress.py`` runs this file (and the fault suite) many
times over to shake out scheduling-dependent interleavings.
"""

from __future__ import annotations

import threading

import pytest

from tests.server.conftest import make_index, wait_drained

from repro.core.errors import ServerBusyError
from repro.server.client import RemoteRepository
from repro.server.server import RepositoryServer, ServerThread
from repro.service import VersionedKVService
from repro.storage.metered import MeteredNodeStore
from repro.storage.memory import InMemoryNodeStore

WRITERS = 4
OPS_PER_WRITER = 30


def make_slow_service(put_cost_seconds: float) -> VersionedKVService:
    """4 shards over realtime-metered stores: every flush genuinely sleeps."""

    def slow_store():
        return MeteredNodeStore(InMemoryNodeStore(),
                                put_cost_seconds=put_cost_seconds,
                                realtime=True)

    return VersionedKVService(
        make_index, store_factory=slow_store,
        num_shards=4, batch_size=1)  # batch_size=1: every put flushes


@pytest.fixture
def slow_server():
    server = RepositoryServer(make_slow_service(put_cost_seconds=0.01),
                              queue_capacity=2)
    thread = ServerThread(server)
    thread.start()
    yield server
    thread.stop()
    server.service.close()


def test_slow_consumer_triggers_busy_without_deadlock(slow_server):
    """N fast writers vs a slow disk: BUSY frames observed, nothing wedges."""
    host, port = slow_server.address
    busy_counts = [0] * WRITERS
    done_counts = [0] * WRITERS
    errors = []
    barrier = threading.Barrier(WRITERS)

    def writer(worker: int):
        try:
            with RemoteRepository(host, port, pool_size=1,
                                  busy_retries=0) as remote:
                barrier.wait()
                for i in range(OPS_PER_WRITER):
                    key = b"w%d-%d" % (worker, i)
                    try:
                        remote.put(key, b"x" * 64)
                        done_counts[worker] += 1
                    except ServerBusyError:
                        busy_counts[worker] += 1
        except Exception as exc:  # noqa: BLE001 - surfaced in the main thread
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive(), "writer deadlocked against the server"
    assert not errors, errors

    # The bounded queue really pushed back...
    assert sum(busy_counts) > 0, "slow consumer never produced a BUSY frame"
    # ...while plenty of writes still landed.
    assert sum(done_counts) > 0

    # After drain every queue returns to rest: nothing admitted was lost.
    total = wait_drained(slow_server, timeout=60)
    assert total.depth == 0
    assert total.admitted == total.completed
    assert total.rejected_busy == sum(busy_counts)
    for counters in slow_server.metrics.queue_counters():
        assert counters.depth == 0
        assert counters.admitted == counters.completed


def test_busy_retries_eventually_succeed(slow_server):
    """With backoff retries the same overload resolves without caller errors."""
    host, port = slow_server.address
    errors = []
    barrier = threading.Barrier(WRITERS)

    def writer(worker: int):
        try:
            with RemoteRepository(host, port, pool_size=1, busy_retries=50,
                                  busy_backoff=0.01) as remote:
                barrier.wait()
                for i in range(10):
                    remote.put(b"r%d-%d" % (worker, i), b"y" * 64)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=writer, args=(w,)) for w in range(WRITERS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
        assert not thread.is_alive()
    assert not errors, errors

    total = wait_drained(slow_server, timeout=60)
    assert total.depth == 0
    assert total.admitted == total.completed
    # Every write eventually landed despite the BUSY rejections.
    assert total.admitted >= WRITERS * 10


def test_queue_depth_metrics_track_load_and_recovery(slow_server):
    host, port = slow_server.address
    with RemoteRepository(host, port, pool_size=2) as remote:
        for i in range(10):
            try:
                remote.put(b"m%d" % i, b"z")
            except ServerBusyError:
                pass
        total = wait_drained(slow_server, timeout=60)
        assert total.depth == 0
        # Queueing genuinely happened at some point under batch_size=1 load.
        assert total.peak_depth >= 1


def test_graceful_shutdown_answers_admitted_requests():
    """Requests admitted before shutdown are answered, not dropped."""
    server = RepositoryServer(make_slow_service(put_cost_seconds=0.005),
                              queue_capacity=8)
    thread = ServerThread(server)
    host, port = thread.start()
    remote = RemoteRepository(host, port, pool_size=1)
    results = []

    def hammer():
        with remote.pipeline() as pipe:
            handles = [pipe.put(b"g%d" % i, b"v") for i in range(8)]
            results.extend(handle.result() for handle in handles)

    worker = threading.Thread(target=hammer)
    worker.start()
    worker.join(timeout=60)
    assert not worker.is_alive()
    thread.stop()  # graceful drain
    remote.close()
    server.service.close()
    assert results == [1] * 8
    total = server.metrics.total_queue_counters()
    assert total.depth == 0
    assert total.admitted == total.completed
