"""Shared fixtures for the test suite.

The most important fixture is ``index_factory``/``any_index``: most
behavioural tests are parameterized over all four index candidates so
every structure is exercised by the same scenarios (the same discipline
the paper applies in its evaluation).
"""

from __future__ import annotations

import random

import pytest

from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, MVMBTree, POSTree
from repro.storage.memory import InMemoryNodeStore


def build_index(index_class, store=None, **overrides):
    """Construct an index with small, test-friendly parameters."""
    # An empty store is falsy (len() == 0), so test identity, not truth.
    store = store if store is not None else InMemoryNodeStore()
    if index_class is MerkleBucketTree:
        params = {"capacity": 64, "fanout": 4}
        params.update(overrides)
        return index_class(store, **params)
    if index_class is POSTree:
        params = {"target_node_size": 512, "estimated_entry_size": 64}
        params.update(overrides)
        return index_class(store, **params)
    if index_class is MVMBTree:
        params = {"leaf_capacity": 8, "internal_capacity": 8}
        params.update(overrides)
        return index_class(store, **params)
    return index_class(store, **overrides)


ALL_INDEXES = [MerklePatriciaTrie, MerkleBucketTree, POSTree, MVMBTree]
SIRI_INDEXES = [MerklePatriciaTrie, MerkleBucketTree, POSTree]


@pytest.fixture(params=ALL_INDEXES, ids=lambda cls: cls.name)
def index_class(request):
    """Every index candidate, one at a time."""
    return request.param


@pytest.fixture(params=SIRI_INDEXES, ids=lambda cls: cls.name)
def siri_index_class(request):
    """Only the three SIRI candidates (excludes the MVMB+-Tree baseline)."""
    return request.param


@pytest.fixture
def store():
    return InMemoryNodeStore()


@pytest.fixture
def any_index(index_class, store):
    """A freshly-built index of the parameterized class."""
    return build_index(index_class, store)


@pytest.fixture
def small_dataset():
    """A deterministic 300-record dataset with mixed key/value lengths."""
    rng = random.Random(1234)
    dataset = {}
    for i in range(300):
        key = f"k{i:04d}-{rng.randrange(1000):03d}".encode()
        value = bytes(rng.getrandbits(8) for _ in range(rng.randint(5, 120)))
        dataset[key] = value
    return dataset


@pytest.fixture
def tiny_dataset():
    """A 20-record dataset for tests that inspect structures in detail."""
    return {f"key{i:02d}".encode(): f"value{i}".encode() for i in range(20)}
