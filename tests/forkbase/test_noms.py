"""Tests for the Noms-style Prolly Tree and its cost model."""

from repro.forkbase.engine import forkbase_remote_cost_model
from repro.forkbase.noms import NomsProllyTree, noms_remote_cost_model
from repro.indexes import POSTree
from repro.storage.memory import InMemoryNodeStore


def make_items(count):
    return {f"key{i:05d}".encode(): (b"value-%05d" % i) * 3 for i in range(count)}


class TestNomsProllyTree:
    def test_is_a_correct_index(self):
        tree = NomsProllyTree(InMemoryNodeStore(), target_node_size=512, estimated_entry_size=48)
        items = make_items(500)
        snapshot = tree.from_items(items)
        assert snapshot.to_dict() == items
        v2 = snapshot.put(b"key00100", b"changed")
        assert v2[b"key00100"] == b"changed"
        assert snapshot[b"key00100"] == items[b"key00100"]

    def test_structurally_invariant_like_pos_tree(self):
        items = list(make_items(400).items())
        a = NomsProllyTree(InMemoryNodeStore(), target_node_size=512,
                           estimated_entry_size=48).from_items(dict(items))
        tree_b = NomsProllyTree(InMemoryNodeStore(), target_node_size=512, estimated_entry_size=48)
        b = tree_b.empty_snapshot()
        for start in range(0, len(items), 150):
            b = b.update(dict(items[start : start + 150]))
        assert a.root_digest == b.root_digest

    def test_rolling_hash_work_accounted(self):
        """The Prolly Tree pays rolling-hash work POS-Tree avoids in internal
        layers — the mechanism behind the Figure 22 write gap."""
        store = InMemoryNodeStore()
        noms = NomsProllyTree(store, target_node_size=512, estimated_entry_size=48)
        assert noms.rolling_hash_bytes == 0
        noms.from_items(make_items(500))
        assert noms.rolling_hash_bytes > 0

    def test_pos_tree_does_not_pay_rolling_hash_on_internal_layers(self):
        pos = POSTree(InMemoryNodeStore(), target_node_size=512, estimated_entry_size=48)
        assert not hasattr(pos, "rolling_hash_bytes") or pos.rolling_hash_bytes == 0

    def test_different_structure_than_pos_tree(self):
        items = make_items(300)
        pos = POSTree(InMemoryNodeStore(), target_node_size=512,
                      estimated_entry_size=48).from_items(items)
        noms = NomsProllyTree(InMemoryNodeStore(), target_node_size=512,
                              estimated_entry_size=48).from_items(items)
        assert pos.to_dict() == noms.to_dict()
        assert pos.root_digest != noms.root_digest  # different chunking decisions

    def test_default_node_size_matches_noms(self):
        tree = NomsProllyTree(InMemoryNodeStore())
        assert tree.target_node_size == 4096
        assert tree.window_size == 67


class TestRemoteCostModels:
    def test_noms_protocol_slower_than_forkbase(self):
        noms = noms_remote_cost_model()
        forkbase = forkbase_remote_cost_model()
        assert noms.request_latency > forkbase.request_latency
        assert noms.request_cost(1000) > forkbase.request_cost(1000)
