"""Tests for the Forkbase-style engine (servlet side)."""

import pytest

from repro.forkbase.engine import ForkbaseEngine, RemoteCostModel, UnknownDatasetError
from repro.indexes import POSTree
from repro.storage.memory import InMemoryNodeStore


@pytest.fixture
def engine():
    engine = ForkbaseEngine()
    engine.create_dataset("data", lambda store: POSTree(store))
    return engine


class TestDatasets:
    def test_create_and_list(self, engine):
        assert engine.datasets() == ["data"]
        engine.create_dataset("other", lambda store: POSTree(store))
        assert engine.datasets() == ["data", "other"]

    def test_duplicate_creation_rejected(self, engine):
        with pytest.raises(ValueError):
            engine.create_dataset("data", lambda store: POSTree(store))

    def test_unknown_dataset_rejected(self, engine):
        with pytest.raises(UnknownDatasetError):
            engine.head_root("missing")

    def test_initial_head_is_empty(self, engine):
        assert engine.head_root("data") is None
        assert engine.snapshot("data").is_empty()


class TestWritesAndBranches:
    def test_write_advances_head_and_history(self, engine):
        root = engine.write("data", {b"a": b"1"}, message="first")
        assert engine.head_root("data") == root
        assert engine.snapshot("data")[b"a"] == b"1"
        messages = [commit.message for commit in engine.history("data")]
        assert messages[0] == "first"

    def test_successive_writes_accumulate(self, engine):
        engine.write("data", {b"a": b"1"})
        engine.write("data", {b"b": b"2"}, removes=[b"a"])
        snapshot = engine.snapshot("data")
        assert b"a" not in snapshot
        assert snapshot[b"b"] == b"2"

    def test_branching_isolated_heads(self, engine):
        engine.write("data", {b"shared": b"base"})
        engine.branch("data", "experiment")
        engine.write("data", {b"only-exp": b"1"}, branch="experiment")
        assert b"only-exp" not in engine.snapshot("data")
        assert engine.snapshot("data", "experiment")[b"only-exp"] == b"1"
        assert engine.branches("data") == ["experiment", "master"]

    def test_commit_external_root(self, engine):
        root = engine.write("data", {b"a": b"1"})
        engine.branch("data", "copy")
        engine.commit_root("data", root, branch="copy", message="adopt root")
        assert engine.snapshot("data", "copy")[b"a"] == b"1"


class TestCostAccounting:
    def test_requests_and_costs_accumulate(self, engine):
        engine.reset_meters()
        engine.write("data", {b"a": b"1" * 100})
        engine.head_root("data")
        digest = engine.snapshot("data").root_digest
        engine.fetch_node(digest)
        assert engine.requests_served == 3
        assert engine.simulated_seconds > 0

    def test_cost_model_scales_with_payload(self):
        model = RemoteCostModel(request_latency=1e-3, per_byte=1e-6)
        assert model.request_cost(0) == pytest.approx(1e-3)
        assert model.request_cost(1000) == pytest.approx(2e-3)

    def test_reset_meters(self, engine):
        engine.write("data", {b"a": b"1"})
        engine.reset_meters()
        assert engine.requests_served == 0
        assert engine.simulated_seconds == 0.0


class TestRepositoryAccessor:
    def test_with_repository_does_not_close_the_dataset(self, engine):
        """The handed-out repository must not own the dataset's lifecycle:
        a `with` block over it leaves the dataset fully usable."""
        with engine.repository("data") as repo:
            assert repo.default_branch.name == "master"
        engine.write("data", {b"after": b"1"})
        assert engine.snapshot("data")[b"after"] == b"1"
        assert engine.head_root("data") is not None
