"""Tests for the caching Forkbase client."""

import pytest

from repro.forkbase.client import ForkbaseClient
from repro.forkbase.engine import ForkbaseEngine
from repro.indexes import MerkleBucketTree, POSTree
from repro.storage.memory import InMemoryNodeStore


def make_engine_and_client(index_factory=None, cache_capacity_bytes=1 << 20):
    index_factory = index_factory or (lambda store: POSTree(store))
    engine = ForkbaseEngine()
    engine.create_dataset("kv", index_factory)
    client = ForkbaseClient(engine, "kv", index_factory,
                            cache_capacity_bytes=cache_capacity_bytes)
    return engine, client


class TestClientReadsAndWrites:
    def test_write_then_read(self):
        _, client = make_engine_and_client()
        client.write({b"alpha": b"1", b"beta": b"2"})
        assert client.get(b"alpha") == b"1"
        assert client.get(b"missing") is None
        assert client.get(b"missing", b"default") == b"default"

    def test_put_single_key(self):
        _, client = make_engine_and_client()
        client.put("key", "value")
        assert client.get("key") == b"value"

    def test_snapshot_and_proof(self):
        engine, client = make_engine_and_client()
        client.write({f"k{i}".encode(): b"v" for i in range(200)})
        snapshot = client.snapshot()
        assert snapshot[b"k42"] == b"v"
        proof = client.prove(b"k42")
        assert proof.verify(engine.head_root("kv"))

    def test_writes_visible_to_other_clients_after_invalidate(self):
        engine, writer = make_engine_and_client()
        reader = ForkbaseClient(engine, "kv", lambda store: POSTree(store))
        writer.write({b"x": b"1"})
        reader.invalidate()
        assert reader.get(b"x") == b"1"
        writer.write({b"x": b"2"})
        # The reader still sees the head it resolved before (stale cache)...
        assert reader.get(b"x") == b"1"
        # ...until it invalidates its cached root.
        reader.invalidate()
        assert reader.get(b"x") == b"2"


class TestClientCacheEffects:
    def test_repeated_reads_hit_cache(self):
        engine, client = make_engine_and_client()
        client.write({f"k{i:04d}".encode(): b"v" * 50 for i in range(500)})
        engine.reset_meters()
        for _ in range(20):
            client.get(b"k0100")
        # Only the first traversal should fetch nodes remotely.
        first_round_requests = engine.requests_served
        for _ in range(100):
            client.get(b"k0100")
        assert engine.requests_served == first_round_requests
        assert client.cache_hit_ratio > 0.5

    def test_cold_cache_pays_remote_cost(self):
        engine, client = make_engine_and_client(cache_capacity_bytes=1)
        client.write({f"k{i:04d}".encode(): b"v" * 50 for i in range(300)})
        engine.reset_meters()
        client.get(b"k0000")
        client.get(b"k0299")
        assert engine.requests_served > 0
        assert client.simulated_read_seconds() > 0

    def test_cache_serves_hot_working_set_for_every_index_type(self):
        """Once a working set has been traversed, re-reading it is served
        almost entirely from the client cache (the mechanism behind the
        Figure 21 read results; the cross-index comparison itself is done at
        proper scale by the Figure 21 benchmark)."""

        for index_factory in (
            lambda store: POSTree(store),
            lambda store: MerkleBucketTree(store, capacity=512, fanout=4),
        ):
            engine, client = make_engine_and_client(index_factory)
            client.write({f"k{i:05d}".encode(): b"v" * 60 for i in range(2_000)})
            hot_keys = [f"k{i:05d}".encode() for i in range(0, 2_000, 7)]
            for key in hot_keys:
                client.get(key)
            engine.reset_meters()
            for key in hot_keys:
                client.get(key)
            assert engine.requests_served == 0
            assert client.cache_hit_ratio > 0.5

    def test_client_cannot_write_nodes_directly(self):
        _, client = make_engine_and_client()
        with pytest.raises(NotImplementedError):
            client.cache.backing.put_bytes(None, b"data")
