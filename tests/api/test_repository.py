"""Tests for the Repository/Branch public surface."""

import warnings

import pytest

from repro.api import Repository
from repro.core.errors import (
    InvalidParameterError,
    NodeNotFoundError,
    ServiceClosedError,
)
from repro.core.version import UnknownBranchError
from repro.indexes import POSTree
from repro.service import VersionedKVService
from repro.storage.file import FileNodeStore


class TestOpenBackends:
    def test_in_memory_roundtrip(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"k", b"v")
            main.commit("c0")
            assert main.get(b"k") == b"v"
        assert not repo.is_open

    def test_durable_directory_backend(self, tmp_path):
        with Repository.open(str(tmp_path), num_shards=2) as repo:
            repo.default_branch.put(b"k", b"v")
            repo.default_branch.commit("c0")
        with Repository.open(str(tmp_path), num_shards=2) as repo:
            assert repo.default_branch.get(b"k") == b"v"

    def test_store_factory_backend(self, tmp_path):
        counter = [0]

        def factory():
            counter[0] += 1
            return FileNodeStore(str(tmp_path / f"shard-{counter[0]}"))

        with Repository.open(store_factory=factory, num_shards=2) as repo:
            repo.default_branch.put(b"k", b"v")
            repo.default_branch.commit("c0")
            assert repo.default_branch.get(b"k") == b"v"
        assert counter[0] == 2

    def test_context_manager_closes_on_error(self, tmp_path):
        with pytest.raises(RuntimeError, match="boom"):
            with Repository.open(str(tmp_path), num_shards=2) as repo:
                repo.default_branch.put(b"k", b"v")
                repo.default_branch.commit("before the error")
                raise RuntimeError("boom")
        assert not repo.is_open
        with pytest.raises(ServiceClosedError):
            repo.default_branch.snapshot()
        # The committed state survived the error path.
        with Repository.open(str(tmp_path), num_shards=2) as reopened:
            assert reopened.default_branch.get(b"k") == b"v"

    def test_from_service_does_not_own_lifecycle(self):
        service = VersionedKVService(POSTree, num_shards=2)
        with Repository.from_service(service) as repo:
            repo.default_branch.put(b"k", b"v")
            repo.default_branch.commit("c0")
        assert service.is_open  # not owned: close() left it alone
        assert service.get(b"k") == b"v"  # flat API sees branch commits
        service.close()

    def test_flat_service_state_is_the_default_branch(self):
        service = VersionedKVService(POSTree, num_shards=2)
        service.put(b"flat", b"1")
        service.commit("flat commit")
        repo = Repository.from_service(service)
        assert repo.default_branch.get(b"flat") == b"1"
        service.close()

    def test_branch_commit_preserves_flushed_flat_writes(self):
        """Flat-API writes flushed (but not committed) into the working
        heads must survive a repository commit on the default branch —
        journalled as an implicit parent commit and carried into the new
        head."""
        service = VersionedKVService(POSTree, num_shards=2, batch_size=1)
        service.put(b"flat-key", b"flat-value")
        service.flush()  # in the working heads, never committed
        repo = Repository.from_service(service)
        main = repo.default_branch
        main.put(b"repo-key", b"x")
        commit = main.commit("repository commit")
        # Both writes are in the head, on both surfaces.
        assert service.get(b"flat-key") == b"flat-value"
        assert main.get(b"flat-key") == b"flat-value"
        assert main.get(b"repo-key") == b"x"
        # The flat state was journalled as the commit's parent.
        messages = [c.message for c in main.history()]
        assert messages[0] == "repository commit"
        assert messages[1] == "flat-API writes (implicit commit)"
        assert commit.parents[0] == main.history()[1].version
        service.close()

    def test_buffered_flat_writes_survive_branch_commit(self):
        """Still-buffered (unflushed) flat writes reapply on the new head."""
        service = VersionedKVService(POSTree, num_shards=2, batch_size=1024)
        repo = Repository.from_service(service)
        main = repo.default_branch
        main.put(b"repo-key", b"x")
        service.put(b"buffered", b"pending")  # below the batch threshold
        main.commit("repository commit")
        assert service.get(b"buffered") == b"pending"
        service.flush()
        assert service.get(b"buffered") == b"pending"
        assert service.get(b"repo-key") == b"x"
        service.close()


class TestBranching:
    def test_fork_is_isolated(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"shared", b"base")
            main.commit("base")
            fork = main.fork("fork")
            fork.put(b"only-fork", b"1")
            fork.commit("fork edit")
            assert b"only-fork" not in main
            assert fork.get(b"shared") == b"base"
            assert repo.branches() == ["fork", "main"]

    def test_fork_records_dag_parent(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"k", b"v")
            base = main.commit("base")
            fork = main.fork("fork")
            assert fork.head.parents == (base.version,)
            assert repo.merge_base("main", "fork").version == base.version

    def test_unknown_branch_raises(self):
        with Repository.open(num_shards=2) as repo:
            with pytest.raises(UnknownBranchError):
                repo.branch("ghost")

    def test_duplicate_branch_rejected(self):
        with Repository.open(num_shards=2) as repo:
            repo.default_branch.commit("c0", allow_empty=True)
            repo.create_branch("twin")
            with pytest.raises(InvalidParameterError):
                repo.create_branch("twin")

    def test_fork_with_staged_operations_rejected(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"staged", b"1")
            with pytest.raises(InvalidParameterError):
                main.fork("fork")
            main.commit("now clean")
            assert main.fork("fork").get(b"staged") == b"1"

    def test_branch_history_walks_first_parents(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"a", b"1")
            main.commit("one")
            main.put(b"a", b"2")
            main.commit("two")
            messages = [commit.message for commit in main.history()]
            assert messages == ["two", "one"]

    def test_scan_ranges_and_prefix(self):
        with Repository.open(num_shards=4) as repo:
            main = repo.default_branch
            main.put_many({b"app:1": b"a", b"app:2": b"b", b"web:1": b"c"})
            main.commit("load")
            main.put(b"app:3", b"staged")          # staged overlay included
            main.remove(b"app:1")                   # staged removal excluded
            assert [k for k, _ in main.scan(prefix=b"app:")] == [b"app:2", b"app:3"]
            assert [k for k, _ in main.scan(start=b"app:2", stop=b"web:1")] == [
                b"app:2", b"app:3"]
            assert main.to_dict() == {b"app:2": b"b", b"app:3": b"staged", b"web:1": b"c"}

    def test_diff_between_branches(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put_many({b"a": b"1", b"b": b"2"})
            main.commit("base")
            fork = main.fork("fork")
            fork.put(b"a", b"10")
            fork.remove(b"b")
            fork.commit("edit")
            diff = main.diff(fork)
            assert {e.key: e.kind for e in diff} == {b"a": "changed", b"b": "removed"}
            assert repo.diff("fork", "main").keys() == diff.keys()


class TestGCAndBranches:
    def test_gc_keeps_every_branch_head_live(self):
        with Repository.open(num_shards=2, retain_versions=1, cache_bytes=0) as repo:
            main = repo.default_branch
            main.put_many({f"k{i:03d}".encode(): b"v0" * 8 for i in range(80)})
            main.commit("base")
            old = main.fork("old-branch")
            # Churn main far past the retention window.
            for round_number in range(6):
                main.put_many({f"k{i:03d}".encode(): f"v{round_number + 1}".encode() * 8
                               for i in range(80)})
                main.commit(f"churn {round_number}")
            report = repo.collect_garbage()
            assert report.swept_nodes > 0
            # The old branch head predates the retention window but must
            # stay fully readable: GC marks from every branch head.
            assert old.get(b"k007") == b"v0" * 8
            assert len(old.snapshot()) == 80
            # Expired interior main versions are actually gone (version 3
            # is a churn commit inside the expired window; versions 0/1
            # share the protected old-branch head's roots).
            with pytest.raises(NodeNotFoundError):
                dict(repo.snapshot(3).items())

    def test_gc_keeps_open_transaction_base_pinned(self):
        """An open transaction's pinned base view survives GC even when
        the branch churns past the retention window (snapshot isolation)."""
        with Repository.open(num_shards=2, retain_versions=1, cache_bytes=0) as repo:
            main = repo.default_branch
            main.put_many({f"k{i:03d}".encode(): b"base" * 8 for i in range(60)})
            main.commit("base")
            txn = main.transaction()
            for round_number in range(4):
                main.put_many({f"k{i:03d}".encode(): f"r{round_number}".encode() * 8
                               for i in range(60)})
                main.commit(f"churn {round_number}")
            repo.collect_garbage()
            # Snapshot-isolated reads still resolve against the pinned base.
            assert txn.get(b"k003") == b"base" * 8
            assert dict(txn.scan(start=b"k000", stop=b"k002")) == {
                b"k000": b"base" * 8, b"k001": b"base" * 8}
            # The conflict check also still works against the GC'd window.
            txn.put(b"k003", b"mine")
            with pytest.raises(Exception) as excinfo:
                txn.commit()
            from repro.core.errors import TransactionConflictError
            assert isinstance(excinfo.value, TransactionConflictError)
            txn.abort()
            # Resolved transactions release their pin: the base becomes
            # collectable on the next run.
            report = repo.collect_garbage()
            assert report.swept_nodes >= 0  # runs cleanly, nothing pinned


class TestDAGIdentity:
    def test_same_tick_forks_get_distinct_dag_nodes(self, monkeypatch):
        """Two forks journalled in the same clock tick must not collapse
        to one commit-DAG node (commit ids are salted by version)."""
        import repro.service.service as service_module

        monkeypatch.setattr(service_module.time, "time", lambda: 1234.5)
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"k", b"v")
            base = main.commit("base")
            main.fork("a")
            main.fork("b")
            service = repo.service
            assert len(service.version_graph) == len(service.commits) == 3
            assert (service._graph_ids[1] != service._graph_ids[2])
            # Merge base resolves to the true fork point, not a collapsed
            # sibling fork commit.
            assert repo.merge_base("a", "b").version == base.version


class TestDeprecatedSurface:
    def test_top_level_service_access_warns(self):
        import repro

        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            service_class = repro.VersionedKVService
        assert service_class is VersionedKVService
        assert any(issubclass(w.category, DeprecationWarning) for w in caught)
        assert any("Repository" in str(w.message) for w in caught)

    def test_internal_service_import_does_not_warn(self):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            from repro.service import VersionedKVService as _  # noqa: F401
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]


class TestBulkImport:
    """Repository.import_data / Branch.load (the ISSUE 5 ingest surface)."""

    ITEMS = {b"row%04d" % i: b"payload%04d" % i for i in range(500)}

    def test_import_data_is_one_journalled_commit(self):
        with Repository.open(num_shards=4) as repo:
            before = len(repo.commits)
            commit = repo.import_data(self.ITEMS, message="seed dataset")
            assert len(repo.commits) == before + 1
            assert commit.message == "seed dataset"
            assert repo.default_branch.head.version == commit.version
            assert repo.default_branch.get(b"row0042") == b"payload0042"
            assert repo.default_branch.record_count() == len(self.ITEMS)

    def test_import_matches_staged_commit_digest(self):
        with Repository.open(num_shards=4) as repo:
            imported = repo.import_data(self.ITEMS)
        with Repository.open(num_shards=4) as repo:
            branch = repo.default_branch
            branch.put_many(self.ITEMS)
            staged = branch.commit("same content")
            assert staged.digest == imported.digest

    def test_import_into_new_branch_creates_it(self):
        with Repository.open(num_shards=2) as repo:
            commit = repo.import_data(self.ITEMS, branch="ingest")
            assert "ingest" in repo.branches()
            assert repo.branch("ingest").head.version == commit.version
            # the default branch is untouched
            assert repo.default_branch.get(b"row0000") is None

    def test_branch_load_on_top_of_existing_data(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"pre-existing", b"1")
            main.commit("before")
            main.load(self.ITEMS, message="bulk")
            assert main.get(b"pre-existing") == b"1"
            assert main.get(b"row0001") == b"payload0001"
            assert main.record_count() == len(self.ITEMS) + 1

    def test_branch_load_leaves_staged_buffer_alone(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            main.put(b"staged-key", b"staged-value")
            main.load(self.ITEMS)
            assert main.staged_count == 1
            assert main.get(b"staged-key") == b"staged-value"
            # the staged op is not part of the committed head
            assert main.snapshot().get(b"staged-key") is None

    def test_empty_import_returns_current_head(self):
        with Repository.open(num_shards=2) as repo:
            assert repo.import_data({}) is None  # unborn branch stays unborn
            first = repo.import_data(self.ITEMS)
            assert repo.import_data({}) == first

    def test_import_last_writer_wins_duplicates(self):
        with Repository.open(num_shards=2) as repo:
            repo.import_data([(b"dup", b"first"), (b"dup", b"final")])
            assert repo.default_branch.get(b"dup") == b"final"

    def test_import_accepts_non_dict_mappings(self):
        from types import MappingProxyType
        with Repository.open(num_shards=2) as repo:
            repo.import_data(MappingProxyType({b"ab": b"v1", b"cd": b"v2"}))
            assert repo.default_branch.get(b"ab") == b"v1"
            assert repo.default_branch.get(b"cd") == b"v2"
            assert repo.default_branch.record_count() == 2

    def test_imported_branch_forks_and_merges(self):
        with Repository.open(num_shards=2) as repo:
            main = repo.default_branch
            repo.import_data(self.ITEMS)
            fork = main.fork("edit")
            fork.put(b"row0000", b"edited")
            fork.commit("edit one row")
            outcome = repo.merge("main", "edit", message="merge edits")
            assert outcome.commit is not None
            assert main.get(b"row0000") == b"edited"

    def test_import_survives_crash_recovery(self, tmp_path):
        directory = str(tmp_path / "repo")
        repo = Repository.open(directory, num_shards=2)
        commit = repo.import_data(self.ITEMS, message="durable import")
        # abandon without close(): recovery must restore the imported head
        repo.service._opened = False
        recovered = Repository.open(directory, num_shards=2)
        assert recovered.default_branch.head.digest == commit.digest
        assert recovered.default_branch.get(b"row0499") == b"payload0499"
        recovered.close()
