"""Tests for Transaction: isolation, atomicity, optimistic conflicts."""

import pytest

from repro.api import Repository
from repro.core.errors import TransactionClosedError, TransactionConflictError


@pytest.fixture
def repo():
    with Repository.open(num_shards=2) as repository:
        main = repository.default_branch
        main.put_many({b"alice": b"100", b"bob": b"50"})
        main.commit("open accounts")
        yield repository


class TestIsolation:
    def test_reads_are_snapshot_isolated(self, repo):
        main = repo.default_branch
        txn = main.transaction()
        main.put(b"alice", b"999")
        main.commit("concurrent write")
        # The transaction still reads the head it began on.
        assert txn.get(b"alice") == b"100"
        txn.abort()

    def test_read_your_writes(self, repo):
        main = repo.default_branch
        txn = main.transaction()
        txn.put(b"carol", b"7")
        txn.remove(b"bob")
        assert txn.get(b"carol") == b"7"
        assert txn.get(b"bob") is None
        assert b"bob" not in txn
        # ...but nothing leaked to the branch before commit.
        assert main.get(b"carol") is None
        assert main.get(b"bob") == b"50"
        txn.abort()

    def test_scan_overlays_staged_ops(self, repo):
        txn = repo.default_branch.transaction()
        txn.put(b"carol", b"7")
        txn.remove(b"alice")
        assert dict(txn.scan()) == {b"bob": b"50", b"carol": b"7"}
        assert dict(txn.scan(start=b"c")) == {b"carol": b"7"}
        txn.abort()


class TestAtomicity:
    def test_commit_applies_all_or_nothing(self, repo):
        main = repo.default_branch
        with main.transaction("transfer") as txn:
            alice = int(txn[b"alice"])
            bob = int(txn[b"bob"])
            txn.put(b"alice", str(alice - 10))
            txn.put(b"bob", str(bob + 10))
        assert main.get(b"alice") == b"90"
        assert main.get(b"bob") == b"60"
        assert main.history()[0].message == "transfer"

    def test_exception_discards_everything(self, repo):
        main = repo.default_branch
        with pytest.raises(RuntimeError, match="boom"):
            with main.transaction() as txn:
                txn.put(b"alice", b"0")
                raise RuntimeError("boom")
        assert main.get(b"alice") == b"100"
        assert not txn.is_open

    def test_explicit_abort_inside_block(self, repo):
        main = repo.default_branch
        with main.transaction() as txn:
            txn.put(b"alice", b"0")
            txn.abort()
        assert main.get(b"alice") == b"100"

    def test_empty_transaction_commits_nothing(self, repo):
        main = repo.default_branch
        head = main.head
        with main.transaction():
            pass
        assert main.head.version == head.version


class TestOptimisticConcurrency:
    def test_overlapping_concurrent_commit_conflicts(self, repo):
        main = repo.default_branch
        txn = main.transaction()
        txn.put(b"alice", b"0")
        main.put(b"alice", b"777")
        main.commit("raced")
        with pytest.raises(TransactionConflictError) as excinfo:
            txn.commit()
        assert excinfo.value.keys == [b"alice"]
        # The conflict did not close the transaction: re-read and retry.
        assert txn.is_open
        txn.abort()

    def test_disjoint_concurrent_commit_rebases(self, repo):
        main = repo.default_branch
        txn = main.transaction()
        txn.put(b"carol", b"7")
        main.put(b"alice", b"777")
        main.commit("raced elsewhere")
        commit = txn.commit("rebased")
        assert commit.parents == (main.history()[1].version,)
        # Both the concurrent write and the transaction landed.
        assert main.get(b"alice") == b"777"
        assert main.get(b"carol") == b"7"

    def test_conflict_rebases_so_retry_works(self, repo):
        """After a conflict the transaction reads the *current* head, so a
        re-read/re-stage/retry loop genuinely converges."""
        main = repo.default_branch
        txn = main.transaction()
        txn.put(b"alice", str(int(txn[b"alice"]) - 10))  # 100 -> 90
        main.put(b"alice", b"200")
        main.commit("raced")
        with pytest.raises(TransactionConflictError):
            txn.commit()
        # The contended staged entry was dropped; a re-read sees the
        # concurrent value, not the stale base or the stale staging...
        assert txn.get(b"alice") == b"200"
        # ...re-stage from it and retry successfully.
        txn.put(b"alice", str(int(txn[b"alice"]) - 10))
        txn.commit()
        assert main.get(b"alice") == b"190"

    def test_conflicting_implicit_commit_releases_the_pin(self, repo):
        """A conflict raised from the context manager's implicit commit
        must abort the transaction (no open handle, no leaked GC pin)."""
        main = repo.default_branch
        service = repo.service
        pins_before = len(service._pinned_roots)
        with pytest.raises(TransactionConflictError):
            with main.transaction() as txn:
                txn.put(b"alice", b"0")
                main.put(b"alice", b"777")
                main.commit("raced")
        assert not txn.is_open
        assert len(service._pinned_roots) == pins_before
        # Explicit resolution paths release the pin too.
        txn2 = main.transaction()
        txn2.put(b"x", b"1")
        txn2.commit()
        txn3 = main.transaction()
        txn3.abort()
        assert len(service._pinned_roots) == pins_before

    def test_remove_conflicts_are_detected_too(self, repo):
        main = repo.default_branch
        txn = main.transaction()
        txn.remove(b"bob")
        main.put(b"bob", b"51")
        main.commit("raced")
        with pytest.raises(TransactionConflictError):
            txn.commit()


class TestLifecycleGuards:
    def test_operations_after_commit_raise(self, repo):
        txn = repo.default_branch.transaction()
        txn.put(b"x", b"1")
        txn.commit()
        for operation in (
            lambda: txn.put(b"y", b"2"),
            lambda: txn.remove(b"x"),
            lambda: txn.get(b"x"),
            lambda: list(txn.scan()),
            lambda: txn.commit(),
            lambda: txn.abort(),
        ):
            with pytest.raises(TransactionClosedError):
                operation()

    def test_operations_after_abort_raise(self, repo):
        txn = repo.default_branch.transaction()
        txn.abort()
        with pytest.raises(TransactionClosedError):
            txn.put(b"x", b"1")

    def test_commit_result_is_recorded(self, repo):
        txn = repo.default_branch.transaction()
        txn.put(b"x", b"1")
        commit = txn.commit()
        assert txn.commit_result is commit
        assert commit.branch == "main"
