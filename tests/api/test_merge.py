"""Tests for three-way merge semantics (repro.api.merge)."""

import functools

import pytest

from repro.api import Repository
from repro.api.merge import MergeConflict
from repro.core.errors import InvalidParameterError, MergeConflictError
from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, POSTree

INDEX_FACTORIES = {
    "MPT": MerklePatriciaTrie,
    "MBT": functools.partial(MerkleBucketTree, capacity=64, fanout=4),
    "POS-Tree": functools.partial(POSTree, target_node_size=512,
                                  estimated_entry_size=64),
}


@pytest.fixture(params=sorted(INDEX_FACTORIES), ids=lambda name: name)
def index_factory(request):
    return INDEX_FACTORIES[request.param]


def forked_repo(index_factory, base):
    repo = Repository.open(index_factory=index_factory, num_shards=2)
    main = repo.default_branch
    main.put_many(base)
    main.commit("base")
    return repo, main


class TestMergeSemantics:
    def test_take_theirs_changes(self, index_factory):
        repo, main = forked_repo(index_factory, {b"a": b"1", b"b": b"2"})
        other = main.fork("other")
        other.put(b"a", b"10")
        other.put(b"new", b"n")
        other.remove(b"b")
        other.commit("their edits")
        outcome = repo.merge("main", "other")
        assert main.to_dict() == {b"a": b"10", b"new": b"n"}
        assert outcome.merged_keys == [b"a", b"b", b"new"]
        assert outcome.fast_forward  # main had no exclusive changes
        repo.close()

    def test_ours_changes_survive(self, index_factory):
        repo, main = forked_repo(index_factory, {b"a": b"1", b"b": b"2"})
        other = main.fork("other")
        main.put(b"a", b"ours")
        main.commit("our edit")
        other.put(b"b", b"theirs")
        other.commit("their edit")
        outcome = repo.merge("main", "other")
        assert main.to_dict() == {b"a": b"ours", b"b": b"theirs"}
        assert not outcome.fast_forward
        assert outcome.commit.parents == (
            outcome.commit.parents[0], other.head.version)
        repo.close()

    def test_identical_changes_do_not_conflict(self, index_factory):
        repo, main = forked_repo(index_factory, {b"a": b"1"})
        other = main.fork("other")
        main.put(b"a", b"same")
        main.commit("ours")
        other.put(b"a", b"same")
        other.commit("theirs")
        outcome = repo.merge("main", "other")
        assert outcome.conflicts_resolved == []
        assert main.get(b"a") == b"same"
        repo.close()

    def test_up_to_date_merge_is_a_no_op(self, index_factory):
        repo, main = forked_repo(index_factory, {b"a": b"1"})
        other = main.fork("other")
        main.put(b"a", b"2")
        main.commit("advance main")
        head = main.head
        outcome = repo.merge("main", "other")
        assert outcome.up_to_date
        assert outcome.commit is None
        assert main.head.version == head.version
        repo.close()

    def test_merge_base_advances_after_merge(self, index_factory):
        """Repeated merges use the previous merge commit as the base."""
        repo, main = forked_repo(index_factory, {b"a": b"1"})
        other = main.fork("other")
        other.put(b"b", b"2")
        other.commit("their 1")
        repo.merge("main", "other")
        other.put(b"c", b"3")
        other.commit("their 2")
        # The merge commit's second parent makes "their 1" the new base.
        assert repo.merge_base("main", "other").message == "their 1"
        outcome = repo.merge("main", "other")
        # Only the post-first-merge change is merged the second time.
        assert outcome.merged_keys == [b"c"]
        repo.close()

    def test_staged_operations_block_merge(self, index_factory):
        repo, main = forked_repo(index_factory, {b"a": b"1"})
        other = main.fork("other")
        other.put(b"b", b"2")
        other.commit("their edit")
        main.put(b"staged", b"x")
        with pytest.raises(InvalidParameterError):
            repo.merge("main", "other")
        repo.close()

    def test_merge_into_itself_rejected(self, index_factory):
        repo, main = forked_repo(index_factory, {b"a": b"1"})
        with pytest.raises(InvalidParameterError):
            repo.merge("main", "main")
        repo.close()


class TestConflicts:
    def test_conflicts_raise_without_resolver(self, index_factory):
        repo, main = forked_repo(index_factory, {b"k": b"base", b"other": b"x"})
        fork = main.fork("fork")
        main.put(b"k", b"ours")
        main.commit("ours")
        fork.put(b"k", b"theirs")
        fork.commit("theirs")
        head_before = main.head
        with pytest.raises(MergeConflictError) as excinfo:
            repo.merge("main", "fork")
        (conflict,) = excinfo.value.conflicts
        assert isinstance(conflict, MergeConflict)
        assert (conflict.key, conflict.base, conflict.ours, conflict.theirs) == (
            b"k", b"base", b"ours", b"theirs")
        # Nothing was applied: the failed merge left the branch untouched.
        assert main.head.version == head_before.version
        assert main.get(b"k") == b"ours"
        repo.close()

    def test_change_vs_remove_is_a_conflict(self, index_factory):
        repo, main = forked_repo(index_factory, {b"k": b"base"})
        fork = main.fork("fork")
        main.remove(b"k")
        main.commit("ours removes")
        fork.put(b"k", b"theirs")
        fork.commit("theirs changes")
        with pytest.raises(MergeConflictError):
            repo.merge("main", "fork")
        # ...in both directions.
        with pytest.raises(MergeConflictError):
            repo.merge("fork", "main")
        repo.close()

    def test_resolver_strings(self, index_factory):
        repo, main = forked_repo(index_factory, {b"k": b"base"})
        fork = main.fork("fork")
        main.put(b"k", b"ours")
        main.commit("ours")
        fork.put(b"k", b"theirs")
        fork.commit("theirs")
        outcome = repo.merge("main", "fork", resolver="theirs")
        assert main.get(b"k") == b"theirs"
        assert [c.key for c in outcome.conflicts_resolved] == [b"k"]
        repo.close()

    def test_resolver_callable_and_remove_resolution(self, index_factory):
        repo, main = forked_repo(index_factory, {b"k": b"base", b"j": b"base"})
        fork = main.fork("fork")
        main.put(b"k", b"ours")
        main.put(b"j", b"ours")
        main.commit("ours")
        fork.put(b"k", b"theirs")
        fork.put(b"j", b"theirs")
        fork.commit("theirs")

        def resolver(conflict):
            # Keep ours for j, drop k entirely.
            return None if conflict.key == b"k" else conflict.ours

        repo.merge("main", "fork", resolver=resolver)
        assert main.get(b"k") is None
        assert main.get(b"j") == b"ours"
        repo.close()


class TestRootIdentity:
    def test_merge_order_independent_roots(self, index_factory):
        """Acceptance: non-conflicting forks merge to identical roots in
        either order, on every index type."""
        base = {f"k{i:03d}".encode(): f"v{i}".encode() for i in range(60)}

        def build():
            repo, main = forked_repo(index_factory, dict(base))
            left = main.fork("left")
            right = main.fork("right")
            left.put_many({f"k{i:03d}".encode(): b"left" for i in range(0, 20)})
            left.remove(b"k040")
            left.commit("left edits")
            right.put_many({f"k{i:03d}".encode(): b"right" for i in range(20, 40)})
            right.put(b"new", b"right-only")
            right.commit("right edits")
            return repo

        repo_a = build()
        outcome_a = repo_a.merge("left", "right")
        repo_b = build()
        outcome_b = repo_b.merge("right", "left")
        assert outcome_a.commit.roots == outcome_b.commit.roots
        assert (repo_a.branch("left").to_dict()
                == repo_b.branch("right").to_dict())
        repo_a.close()
        repo_b.close()
