"""Property tests for merge semantics (hypothesis).

Two properties the acceptance criteria demand, checked across all three
SIRI index types (MPT, MBT, POS-Tree):

* **Determinism and order independence** — two forks whose edits do not
  conflict merge to the *same shard roots* (not just the same content)
  whichever branch merges into which, and the merged content equals the
  model prediction ``base + Δleft + Δright``.
* **Conflicts are always surfaced, never silently resolved** — whenever
  the two forks changed any key to different outcomes, the merge raises
  :class:`MergeConflictError` listing exactly the conflicting keys, and
  applies nothing.
"""

import functools

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.api import Repository
from repro.core.errors import MergeConflictError
from repro.indexes import MerkleBucketTree, MerklePatriciaTrie, POSTree

INDEX_FACTORIES = {
    "MPT": MerklePatriciaTrie,
    "MBT": functools.partial(MerkleBucketTree, capacity=16, fanout=4),
    "POS-Tree": functools.partial(POSTree, target_node_size=256,
                                  estimated_entry_size=32),
}

keys = st.binary(min_size=1, max_size=6)
values = st.binary(min_size=0, max_size=12)

#: An edit is a put (bytes value) or a removal (None).
edits = st.dictionaries(keys, st.one_of(values, st.none()), max_size=12)

base_datasets = st.dictionaries(keys, values, max_size=25)


def effective_outcome(base, edit_value):
    """The post-edit value of a key: None = absent."""
    return edit_value  # puts carry bytes, removals carry None


def split_conflicts(base, left_edits, right_edits):
    """Partition the two edit dicts into (conflict keys, expected content).

    A key conflicts when both sides touched it and their outcomes differ
    (put-vs-put with different values, or put-vs-remove).  Edits that
    repeat the base value still count as "changes" only if they actually
    change the stored outcome — mirroring the structural diff the merge
    computes, which cannot see no-op writes.
    """
    def real_changes(edit_dict):
        changes = {}
        for key, value in edit_dict.items():
            before = base.get(key)
            if value != before:
                changes[key] = value
        return changes

    left_changes = real_changes(left_edits)
    right_changes = real_changes(right_edits)
    conflicts = sorted(
        key for key in set(left_changes) & set(right_changes)
        if left_changes[key] != right_changes[key])
    expected = dict(base)
    for changes in (left_changes, right_changes):
        for key, value in changes.items():
            if value is None:
                expected.pop(key, None)
            else:
                expected[key] = value
    return conflicts, expected, left_changes, right_changes


def build_forks(index_factory, base, left_edits, right_edits):
    """A repository with two forks of ``base`` carrying the given edits."""
    repo = Repository.open(index_factory=index_factory, num_shards=2,
                           cache_bytes=0)
    main = repo.default_branch
    if base:
        main.put_many(base)
    main.commit("base", allow_empty=True)
    left = main.fork("left")
    right = main.fork("right")
    for branch, branch_edits in ((left, left_edits), (right, right_edits)):
        for key, value in branch_edits.items():
            if value is None:
                branch.remove(key)
            else:
                branch.put(key, value)
        branch.commit("edits", allow_empty=True)
    return repo, left, right


@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(base=base_datasets, left_edits=edits, right_edits=edits)
def test_non_conflicting_merges_are_deterministic_and_order_independent(
        index_name, base, left_edits, right_edits):
    index_factory = INDEX_FACTORIES[index_name]
    conflicts, expected, left_changes, right_changes = split_conflicts(
        base, left_edits, right_edits)
    # Make the example conflict-free: drop contended keys from the right.
    for key in conflicts:
        right_edits = dict(right_edits)
        del right_edits[key]
    conflicts, expected, _, _ = split_conflicts(base, left_edits, right_edits)
    assert conflicts == []

    repo_a, left_a, right_a = build_forks(index_factory, base, left_edits, right_edits)
    outcome_a = repo_a.merge(left_a, right_a)
    repo_b, left_b, right_b = build_forks(index_factory, base, left_edits, right_edits)
    outcome_b = repo_b.merge(right_b, left_b)

    merged_a = left_a.to_dict()
    merged_b = right_b.to_dict()
    # Content matches the model in both directions.
    assert merged_a == expected
    assert merged_b == expected
    # Structural invariance: identical roots regardless of merge order.
    assert left_a.roots == right_b.roots
    # Determinism: re-running the same merge reproduces the same roots.
    repo_c, left_c, right_c = build_forks(index_factory, base, left_edits, right_edits)
    outcome_c = repo_c.merge(left_c, right_c)
    assert left_c.roots == left_a.roots
    if outcome_a.commit is not None and outcome_c.commit is not None:
        assert outcome_c.commit.roots == outcome_a.commit.roots
    repo_a.close()
    repo_b.close()
    repo_c.close()


@pytest.mark.parametrize("index_name", sorted(INDEX_FACTORIES))
@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(base=base_datasets, left_edits=edits, right_edits=edits)
def test_conflicts_always_surface_and_apply_nothing(
        index_name, base, left_edits, right_edits):
    index_factory = INDEX_FACTORIES[index_name]
    conflicts, _, left_changes, right_changes = split_conflicts(
        base, left_edits, right_edits)
    repo, left, right = build_forks(index_factory, base, left_edits, right_edits)
    head_before = left.head
    content_before = left.to_dict()
    if conflicts:
        with pytest.raises(MergeConflictError) as excinfo:
            repo.merge(left, right)
        assert sorted(c.key for c in excinfo.value.conflicts) == conflicts
        # A conflicting merge is all-or-nothing: nothing was applied.
        assert left.head.version == head_before.version
        assert left.to_dict() == content_before
    else:
        repo.merge(left, right)  # must not raise
    repo.close()
