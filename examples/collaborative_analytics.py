#!/usr/bin/env python3
"""Collaborative analytics example: branching, merging, and deduplication.

The paper motivates SIRI indexes with collaborative data workflows: several
teams work on copies of the same dataset, and the storage system should
(a) keep every team's versions cheaply thanks to page-level sharing and
(b) support diff/merge without reconstructing versions from deltas.

This example uses the mini Forkbase engine to

* load a base dataset on the ``master`` branch,
* fork two team branches that clean different parts of the data,
* inspect the storage shared between the branches,
* three-way merge the two branches back together, resolving a conflict.

Run with ``python examples/collaborative_analytics.py``.
"""

from repro import POSTree, deduplication_ratio, node_sharing_ratio, three_way_merge
from repro.core.errors import MergeConflictError
from repro.forkbase import ForkbaseEngine
from repro.workloads import YCSBConfig, YCSBWorkload


def main():
    engine = ForkbaseEngine()
    engine.create_dataset("measurements", lambda store: POSTree(store))

    # The shared base dataset.
    workload = YCSBWorkload(YCSBConfig(record_count=5_000, seed=17))
    base_records = workload.initial_dataset()
    engine.write("measurements", base_records, message="initial import")
    base = engine.snapshot("measurements")
    print(f"base version: {len(base)} records, root {base.root_hex[:12]}")

    # Two teams branch off and clean different (mostly disjoint) slices.
    engine.branch("measurements", "team-alpha")
    engine.branch("measurements", "team-beta")

    alpha_changes = {key: b"cleaned-by-alpha:" + value[:32]
                     for key, value in list(base_records.items())[:400]}
    beta_changes = {key: b"cleaned-by-beta:" + value[:32]
                    for key, value in list(base_records.items())[350:700]}

    engine.write("measurements", alpha_changes, branch="team-alpha", message="alpha cleanup")
    engine.write("measurements", beta_changes, branch="team-beta", message="beta cleanup")

    alpha = engine.snapshot("measurements", "team-alpha")
    beta = engine.snapshot("measurements", "team-beta")

    print(f"alpha changed {len(base.diff(alpha))} records, "
          f"beta changed {len(base.diff(beta))} records")
    print(f"storage sharing across [base, alpha, beta]: "
          f"dedup ratio = {deduplication_ratio([base, alpha, beta]):.3f}, "
          f"node sharing = {node_sharing_ratio([base, alpha, beta]):.3f}")

    # Merging: the overlapping slice (records 350..400) conflicts.
    try:
        three_way_merge(base, alpha, beta)
    except MergeConflictError as exc:
        print(f"merge reported {len(exc.conflicts)} conflicting keys (expected)")

    # Resolve conflicts by preferring team beta's cleanup.
    result = three_way_merge(base, alpha, beta,
                             resolver=lambda key, ours, theirs: theirs)
    merged = result.snapshot
    engine.commit_root("measurements", merged.root_digest, message="merge alpha+beta")
    print(f"merged version: {len(merged)} records, "
          f"{len(result.merged_keys)} keys taken from beta, "
          f"{len(result.conflicts_resolved)} conflicts resolved")

    # Every version stays readable and the merge picked the right values.
    sample_conflict_key = list(base_records.keys())[360]
    print(f"value of a conflicted key in merged version starts with: "
          f"{merged[sample_conflict_key][:16]!r}")
    print(f"history on master: {[c.message for c in engine.history('measurements')]}")


if __name__ == "__main__":
    main()
