#!/usr/bin/env python3
"""Quickstart: versioned, tamper-evident key-value indexing with SIRI indexes.

This walks through the core API shared by all four index structures:

1. build an index over a content-addressed node store,
2. create immutable versions with batched updates,
3. read any historical version,
4. diff and merge versions,
5. produce and verify Merkle proofs,
6. measure how much storage page-level deduplication saves.

Run with ``python examples/quickstart.py``.
"""

from repro import (
    InMemoryNodeStore,
    MerkleBucketTree,
    MerklePatriciaTrie,
    MVMBTree,
    POSTree,
    deduplication_ratio,
    node_sharing_ratio,
)


def demo_one_index(index_class, **kwargs):
    """Exercise the full snapshot API of one index class."""
    print(f"\n=== {index_class.name} ===")
    store = InMemoryNodeStore()
    index = index_class(store, **kwargs)

    # Version 1: the initial dataset (one batched, bottom-up load).
    accounts = {f"account:{i:04d}": f"balance={1000 + i}" for i in range(2_000)}
    v1 = index.from_items(accounts)
    print(f"v1 root = {v1.root_digest.short()}  records = {len(v1)}  height = {v1.height()}")

    # Version 2: a batch of updates. v1 is untouched and still readable.
    v2 = v1.update({"account:0042": "balance=0", "account:9999": "balance=42"})
    assert v1["account:0042"] == b"balance=1042"
    assert v2["account:0042"] == b"balance=0"
    print(f"v2 root = {v2.root_digest.short()}  (v1 still readable)")

    # Diff: which records differ between the two versions?
    differences = v1.diff(v2)
    print(f"diff(v1, v2): {len(differences)} records differ "
          f"({[entry.key.decode() for entry in differences]})")

    # Merkle proof: convince a third party that v2 binds the key to the value,
    # given only v2's root digest.
    proof = v2.prove("account:9999")
    assert proof.verify(v2.root_digest)
    print(f"proof for account:9999 verified ({len(proof)} nodes, {proof.proof_size_bytes()} bytes)")

    # Deduplication: the two versions share almost all of their pages.
    print(f"deduplication ratio over [v1, v2] = {deduplication_ratio([v1, v2]):.3f}")
    print(f"node sharing ratio over [v1, v2]  = {node_sharing_ratio([v1, v2]):.3f}")
    print(f"unique nodes stored = {len(store)}")


def main():
    demo_one_index(POSTree)
    demo_one_index(MerklePatriciaTrie)
    demo_one_index(MerkleBucketTree, capacity=256, fanout=4)
    demo_one_index(MVMBTree)


if __name__ == "__main__":
    main()
