#!/usr/bin/env python3
"""Quickstart for the sharded versioned-KV service layer.

This walks through the serving API built on top of the index structures:

1. stand a service up over N index shards (POS-Tree here, any
   :class:`~repro.core.interfaces.SIRIIndex` works),
2. write through the coalescing batcher and read your own writes,
3. commit cross-shard versions and read any historical version,
4. diff two committed versions,
5. inspect cache, coalescing and node-I/O metrics.

Run with ``PYTHONPATH=src python examples/service_quickstart.py``.
"""

from repro.indexes import POSTree
from repro.service import VersionedKVService


def main():
    # A service over 4 POS-Tree shards.  Each shard gets its own
    # content-addressed store fronted by a 16 MB read-through LRU cache;
    # writes buffer per shard and flush in batches of 1 000.
    service = VersionedKVService(POSTree, num_shards=4, batch_size=1_000)
    print(service)

    # --- write through the batcher -------------------------------------
    for account in range(5_000):
        service.put(f"account:{account:05d}", f"balance={1_000 + account}")
    v0 = service.commit("initial balances")
    print(f"\ncommit v{v0.version} ({v0.short_id()}): {service.record_count()} records "
          f"across {service.num_shards} shards")

    # --- read-your-writes ----------------------------------------------
    service.put("account:00042", "balance=0")
    assert service.get("account:00042") == b"balance=0"      # pending, not yet flushed
    v1 = service.commit("zero out account 42")
    print(f"commit v{v1.version} ({v1.short_id()})")

    # --- multi-version reads -------------------------------------------
    print(f"\naccount:00042 latest  = {service.get('account:00042').decode()}")
    print(f"account:00042 at v{v0.version}   = "
          f"{service.get('account:00042', version=v0.version).decode()}")

    # --- cross-shard diff ----------------------------------------------
    differences = service.diff(v0, v1)
    print(f"\ndiff(v0, v1): {len(differences)} record(s) differ, "
          f"{differences.comparisons} comparison(s) performed")
    for entry in differences:
        print(f"  {entry.kind}: {entry.key.decode()}  "
              f"{entry.left.decode()} -> {entry.right.decode()}")

    # --- metrics --------------------------------------------------------
    # Hot-key coalescing: hammer one key; the batcher absorbs every write
    # but the last one per flush.
    for i in range(1_000):
        service.put("account:00007", f"balance={i}")
    service.flush()

    metrics = service.metrics(include_records=True)
    print(f"\nmetrics after hot-key burst:")
    print(f"  puts={metrics.puts}  gets={metrics.gets}  flushes={metrics.flushes}")
    print(f"  coalesced ops={metrics.coalesced_ops} "
          f"(coalescing ratio {metrics.coalescing_ratio:.2%})")
    print(f"  nodes written={metrics.nodes_written}  nodes read={metrics.nodes_read}")
    print(f"  cache hit ratio={metrics.cache.hit_ratio:.2%} "
          f"({metrics.cache.hits} hits / {metrics.cache.misses} misses)")
    for shard in metrics.shards:
        print(f"    shard {shard.shard_id}: {shard.records} records, "
              f"{shard.flushes} flushes, {shard.nodes_written} nodes written")


if __name__ == "__main__":
    main()
