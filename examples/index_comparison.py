#!/usr/bin/env python3
"""Index comparison example: pick the right structure for your workload.

Runs the same versioned workload against MPT, MBT, POS-Tree and the
MVMB+-Tree baseline, then prints a side-by-side comparison of

* lookup and batched-update timings,
* tree heights and node counts,
* storage consumption and deduplication across versions,
* empirical SIRI property checks,

mirroring (at laptop scale) the analysis the paper uses to conclude that
POS-Tree is the most balanced choice.  Run with
``python examples/index_comparison.py``.
"""

import time

from repro import (
    ALL_INDEX_CLASSES,
    InMemoryNodeStore,
    check_siri_properties,
    deduplication_ratio,
)
from repro.analysis import format_table
from repro.workloads import YCSBConfig, YCSBWorkload


def build_index(index_class, store):
    if index_class.__name__ == "MerkleBucketTree":
        return index_class(store, capacity=512, fanout=4)
    return index_class(store)


def main():
    workload = YCSBWorkload(YCSBConfig(record_count=8_000, operation_count=2_000,
                                       write_ratio=1.0, batch_size=1_000, seed=5))
    dataset = workload.initial_dataset()
    read_keys = workload.keys[:2_000]

    rows = []
    for index_class in ALL_INDEX_CLASSES:
        store = InMemoryNodeStore()
        index = build_index(index_class, store)

        start = time.perf_counter()
        snapshot = index.empty_snapshot()
        for batch in workload.load_batches():
            snapshot = snapshot.update(batch)
        load_seconds = time.perf_counter() - start

        start = time.perf_counter()
        for key in read_keys:
            snapshot.get(key)
        read_seconds = time.perf_counter() - start

        versions = [snapshot]
        start = time.perf_counter()
        for batch in workload.operation_batches():
            puts = {op.key: op.value for op in batch if op.is_write}
            snapshot = snapshot.update(puts)
            versions.append(snapshot)
        write_seconds = time.perf_counter() - start

        properties = check_siri_properties(
            lambda cls=index_class: build_index(cls, InMemoryNodeStore()),
            list(dataset.items())[:300],
        )

        rows.append([
            index.name,
            round(len(dataset) / load_seconds),
            round(len(read_keys) / read_seconds),
            round(workload.config.operation_count / write_seconds),
            snapshot.height(),
            len(store),
            f"{store.total_bytes() / 1e6:.1f}",
            f"{deduplication_ratio(versions):.3f}",
            "yes" if properties.is_siri else "no",
        ])

    print(format_table(
        ["index", "load rec/s", "read ops/s", "write ops/s", "height",
         "nodes", "MB stored", "dedup(vers)", "SIRI"],
        rows,
        title="Index comparison on a YCSB-style workload (8k records, 2k write ops)",
    ))


if __name__ == "__main__":
    main()
