#!/usr/bin/env python3
"""Repository API quickstart: branches, transactions, three-way merge.

The executable version of the tour in ``docs/API.md``:

* open a durable repository, load a dataset, commit;
* fork two branches in O(1) and edit them independently;
* run an atomic transaction with snapshot-isolated reads;
* three-way merge the branches — including a surfaced, resolved conflict;
* crash-recover: reopen the directory and find every branch head intact.

Run with ``python examples/repository_quickstart.py``.
"""

import shutil
import tempfile

from repro import MergeConflictError, Repository


def main():
    directory = tempfile.mkdtemp(prefix="repro-repo-")
    try:
        with Repository.open(directory, num_shards=4) as repo:
            main_branch = repo.default_branch
            main_branch.put_many(
                {f"sensor-{i:04d}".encode(): f"reading-{i}".encode()
                 for i in range(2_000)})
            main_branch.commit("initial import")
            print(f"loaded {main_branch.record_count()} records on "
                  f"{main_branch.name!r} ({repo.storage_bytes() / 1024:.0f} KiB)")

            # Forks copy only root digests; the trees are fully shared.
            bytes_before = repo.storage_bytes()
            alpha = main_branch.fork("team-alpha")
            beta = main_branch.fork("team-beta")
            print(f"two forks cost {repo.storage_bytes() - bytes_before} "
                  f"bytes of tree storage")

            # Independent edits: mostly disjoint, one overlapping key.
            alpha.put_many({f"sensor-{i:04d}".encode(): b"alpha-cleaned"
                            for i in range(0, 300)})
            alpha.commit("alpha cleanup")
            beta.put_many({f"sensor-{i:04d}".encode(): b"beta-cleaned"
                           for i in range(299, 600)})
            beta.commit("beta cleanup")

            # A transaction: atomic, isolated, conflict-checked.
            with main_branch.transaction("recalibrate") as txn:
                current = txn[b"sensor-1000"]
                txn.put(b"sensor-1000", current + b"+calibrated")
                txn.put(b"calibration-run", b"2026-07-26")
            print(f"transaction committed: {main_branch.get(b'sensor-1000')!r}")

            # Merge alpha into main: fast path, no conflicts.
            outcome = repo.merge("main", "team-alpha")
            print(f"merged team-alpha: {len(outcome.merged_keys)} keys taken")

            # Merge beta: sensor-0299 was changed by both teams.
            try:
                repo.merge("main", "team-beta")
            except MergeConflictError as exc:
                print(f"beta merge conflicts on "
                      f"{[c.key for c in exc.conflicts]} (expected)")
            outcome = repo.merge("main", "team-beta", resolver="theirs")
            print(f"resolved merge: {len(outcome.merged_keys)} keys, "
                  f"{len(outcome.conflicts_resolved)} conflict(s) resolved, "
                  f"sensor-0299 = {main_branch.get(b'sensor-0299')!r}")
            print(f"main history: "
                  f"{[c.message for c in main_branch.history()][:4]} ...")

        # Crash-recovery drill: a fresh open restores every branch head.
        with Repository.open(directory, num_shards=4) as repo:
            print(f"recovered branches: {repo.branches()}")
            assert repo.branch("team-alpha").get(b"sensor-0001") == b"alpha-cleaned"
            assert repo.default_branch.get(b"sensor-0299") == b"beta-cleaned"
            print(f"merge base of the teams is still "
                  f"{repo.merge_base('team-alpha', 'team-beta').message!r}")
    finally:
        shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
