#!/usr/bin/env python3
"""Network front door quickstart: serve a repository, talk to it remotely.

The executable version of the tour in ``docs/SERVER.md``:

* start a :class:`RepositoryServer` on a background thread;
* connect a pooled :class:`RemoteRepository` client and run the whole
  surface — puts, scans, commits, branches, diffs — over real sockets;
* pipeline a burst of requests on one connection;
* verify a Merkle proof client-side and catch a forged answer;
* watch a malformed frame earn an error frame, not a dead server.

Run with ``PYTHONPATH=src python examples/remote_quickstart.py``.
"""

import socket

from repro import Repository
from repro.server import RemoteRepository, protocol
from repro.server.server import RepositoryServer, ServerThread


def main():
    repo = Repository.open(num_shards=4)
    server = RepositoryServer(repo)
    with ServerThread(server) as (host, port):
        print(f"serving on {host}:{port}")
        with RemoteRepository(host, port) as remote:
            # The remote client mirrors the repository surface.
            remote.put_many([(f"sensor-{i:04d}".encode(),
                              f"reading-{i}".encode()) for i in range(500)])
            first = remote.commit("initial import")
            print(f"committed version {first.version} "
                  f"({len(remote.scan(prefix=b'sensor-02'))} keys match "
                  f"prefix 'sensor-02')")

            remote.put(b"sensor-0007", b"recalibrated")
            second = remote.commit("recalibration")
            changed = remote.diff(first.version, second.version)
            print(f"diff {first.version}->{second.version}: "
                  f"{[(e.key, e.kind) for e in changed]}")
            print(f"time travel: sensor-0007 was "
                  f"{remote.get(b'sensor-0007', version=first.version)!r}")

            fork = remote.create_branch("audit")
            print(f"branches: {remote.branches()} "
                  f"(audit forked at version {fork.parents[0]})")

            # Pipelining: many requests in flight on one connection.
            with remote.pipeline() as pipe:
                handles = [pipe.get(f"sensor-{i:04d}".encode())
                           for i in range(100)]
                answers = [h.result() for h in handles]
            print(f"pipelined 100 gets, first/last = "
                  f"{answers[0]!r}/{answers[-1]!r}")

            # Verified reads: don't trust the server, check the proof.
            proof = remote.prove(b"sensor-0007")
            assert proof.root == second.roots[proof.shard_id]
            print(f"proof for sensor-0007 verifies against shard "
                  f"{proof.shard_id}'s committed root")
            proof.value = b"forged"
            try:
                proof.verify()
            except Exception as exc:
                print(f"tampered proof rejected: {exc}")

        # Hostile bytes get an error frame and a hangup — never a crash.
        with socket.create_connection((host, port)) as sock:
            sock.sendall(protocol.encode_frame(b"\xff" * 32))
            reply = protocol.decode_response(
                protocol.FrameDecoder().feed(sock.recv(65536))[0])
            print(f"garbage frame answered with status "
                  f"{reply.status.name}, code {reply.error_code!r}")
        with RemoteRepository(host, port) as again:
            assert again.get(b"sensor-0001") == b"reading-1"
            print("server still healthy after the protocol error")
    repo.close()


if __name__ == "__main__":
    main()
