#!/usr/bin/env python3
"""Blockchain ledger example: per-block transaction indexes with tamper detection.

Reproduces the storage model of the paper's Ethereum experiment: every
block's transactions are indexed by transaction hash, the index root is
committed to the block header, and headers are hash-linked.  The example

* appends synthetic RLP-encoded blocks to the ledger,
* looks transactions up by hash (scan blocks, then traverse the index),
* produces a Merkle proof a light client could verify with only the header,
* tampers with a stored node and shows that verification catches it.

Run with ``python examples/blockchain_ledger.py``.
"""

from repro import InMemoryNodeStore, POSTree, deduplication_ratio
from repro.blockchain import Ledger
from repro.blockchain.ledger import TamperDetectedError
from repro.workloads import EthereumDatasetGenerator


def main():
    generator = EthereumDatasetGenerator(blocks=8, transactions_per_block=150, seed=3)
    store = InMemoryNodeStore(verify_on_read=False)
    ledger = Ledger(index_factory=lambda: POSTree(store, estimated_entry_size=600))

    print("Appending blocks...")
    blocks = generator.all_blocks()
    for block in blocks:
        header = ledger.append_block(block.records())
        print(f"  block {header.number}: {header.transaction_count} txs, "
              f"index root {header.index_root.short()}")

    # Look up a transaction by hash (the paper's read path: scan + traverse).
    sample_tx = blocks[3].transactions[7]
    located = ledger.get_transaction_with_block(sample_tx.key)
    assert located is not None
    block_number, raw = located
    print(f"\nlookup {sample_tx.key[:16].decode()}…: found in block {block_number}, "
          f"{len(raw)} raw bytes")

    # A Merkle proof against the block's committed root.
    proof = ledger.prove_transaction(block_number, sample_tx.key)
    trusted_root = ledger.headers[block_number].index_root
    assert proof.verify(trusted_root)
    print(f"membership proof verified: {len(proof)} nodes, {proof.proof_size_bytes()} bytes")

    # The whole chain verifies...
    assert ledger.verify_chain()
    print("header chain verified")

    # ...until somebody tampers with a stored node.
    victim_snapshot = ledger.block_snapshot(block_number)
    victim_digest = next(iter(victim_snapshot.node_digests()))
    original = store.get_bytes(victim_digest)
    store.corrupt(victim_digest, original[:-1] + bytes([original[-1] ^ 0xFF]))
    try:
        ledger.verify_block_contents(block_number)
        print("ERROR: tampering went undetected!")
    except TamperDetectedError as exc:
        print(f"tampering detected as expected: {exc}")
    finally:
        store.corrupt(victim_digest, original)

    # Identical transactions across blocks share pages through the common store.
    snapshots = [ledger.block_snapshot(i) for i in range(len(ledger))]
    print(f"\ndeduplication ratio across {len(snapshots)} block indexes: "
          f"{deduplication_ratio(snapshots):.3f}")
    print(f"unique nodes stored: {len(store)}")


if __name__ == "__main__":
    main()
