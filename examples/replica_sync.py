#!/usr/bin/env python3
"""Anti-entropy replication walkthrough: partition, diverge, heal.

The executable version of the tour in ``docs/SYNC.md``:

* catch a blank replica up from a populated one and watch the second
  sync transfer nothing (idempotence);
* see delta syncs move nodes proportional to the change, not the data;
* partition two replicas, let both take conflicting writes, watch the
  conflict surface loudly, then settle it with a symmetric resolver and
  verify both replicas converged to the same content digest;
* run the same session over real sockets against a wire server.

Run with ``PYTHONPATH=src python examples/replica_sync.py``.
"""

from repro import MergeConflictError, Repository
from repro.server import RemoteRepository
from repro.server.server import RepositoryServer, ServerThread

ACCOUNTS = {f"account-{i:04d}".encode(): f"balance-{i}".encode()
            for i in range(500)}


def greater_value_wins(conflict):
    """A deterministic, symmetric resolver: replicas converge under it."""
    candidates = [v for v in (conflict.ours, conflict.theirs) if v is not None]
    return max(candidates) if candidates else None


def main():
    primary = Repository.open(num_shards=4)
    replica = Repository.open(num_shards=4)
    primary.import_data(ACCOUNTS, message="open accounts")

    # -- catch-up, then idempotence -------------------------------------
    first = replica.sync(primary)
    print(f"catch-up: {first.nodes_pulled} nodes / "
          f"{first.bytes_pulled} bytes pulled "
          f"({[r.action for r in first.branches]})")
    again = replica.sync(primary)
    print(f"second sync: {again.total_nodes} nodes moved "
          f"(both heads already equal)")

    # -- a delta sync pays for the divergence, not the dataset ----------
    primary.default_branch.put(b"account-0007", b"balance-frozen")
    primary.default_branch.commit("freeze one account")
    delta = replica.sync(primary)
    print(f"after touching 1 of {len(ACCOUNTS)} keys: "
          f"{delta.nodes_pulled} nodes pulled "
          f"(full catch-up was {first.nodes_pulled})")

    # -- partition: both sides write the same key -----------------------
    primary.default_branch.put(b"account-0100", b"balance-900")
    primary.default_branch.commit("deposit on the primary")
    replica.default_branch.put(b"account-0100", b"balance-250")
    replica.default_branch.put(b"account-9999", b"balance-new")
    replica.default_branch.commit("withdrawal on the partitioned replica")

    try:
        replica.sync(primary)
    except MergeConflictError as exc:
        print(f"conflict surfaced, nothing moved: {exc}")

    report = replica.sync(primary, resolver=greater_value_wins)
    branch = report.branches[0]
    print(f"healed: action={branch.action}, "
          f"{branch.conflicts_resolved} conflict(s) resolved")
    assert (replica.service.branch_head("main").digest
            == primary.service.branch_head("main").digest)
    assert replica.branch("main").get(b"account-0100") == b"balance-900"
    assert primary.branch("main").get(b"account-9999") == b"balance-new"
    print("both replicas now hold the same content digest")

    # -- the same session over real sockets -----------------------------
    server = RepositoryServer(primary)
    with ServerThread(server) as (host, port):
        primary.default_branch.put(b"account-0042", b"balance-audited")
        primary.default_branch.commit("audit adjustment")
        with RemoteRepository(host, port) as remote:
            wire = replica.sync(remote)
        print(f"over the wire: {wire.nodes_pulled} nodes pulled, "
              f"actions {[r.action for r in wire.branches]}")
        snapshot = server.metrics.snapshot()
        print(f"server counted {snapshot['sync_nodes_sent']} nodes / "
              f"{snapshot['sync_bytes_sent']} bytes sent")
    assert replica.branch("main").get(b"account-0042") == b"balance-audited"

    replica.close()
    primary.close()


if __name__ == "__main__":
    main()
