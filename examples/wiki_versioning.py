#!/usr/bin/env python3
"""Wiki versioning example: storing hundreds of dataset versions cheaply.

Models the paper's WIKI workload: a corpus of page abstracts receives a
stream of edit batches, each producing a new immutable version.  The
example shows how the storage grows with and without page-level
deduplication (the paper's Figure 1 motivation), how old versions remain
directly readable, and how two arbitrary versions can be diffed without
reconstructing either.

Run with ``python examples/wiki_versioning.py``.
"""

from repro import InMemoryNodeStore, POSTree
from repro.core.metrics import incremental_version_growth
from repro.workloads import WikiDatasetGenerator


def main():
    generator = WikiDatasetGenerator(page_count=3_000, versions=25,
                                     edits_per_version=120, new_pages_per_version=15, seed=9)
    store = InMemoryNodeStore()
    index = POSTree(store, estimated_entry_size=160)

    print("Loading initial corpus...")
    versions = [index.from_items(generator.initial_dataset())]
    print(f"  v0: {len(versions[0])} pages")

    for version in generator.version_stream():
        versions.append(versions[-1].update(version.changes))

    growth = incremental_version_growth(versions)
    last_version, raw_bytes, dedup_bytes = growth[-1]
    print(f"\nafter {last_version + 1} versions:")
    print(f"  raw storage (every version stored separately): {raw_bytes / 1e6:8.1f} MB")
    print(f"  deduplicated storage (shared pages stored once): {dedup_bytes / 1e6:8.1f} MB")
    print(f"  saving: {1 - dedup_bytes / raw_bytes:.1%}")

    # Any historical version is directly readable — no delta reconstruction.
    some_page = generator.keys[42]
    print(f"\npage {some_page[:48].decode()}…")
    print(f"  in v0:  {len(versions[0][some_page])} bytes")
    print(f"  in v{len(versions) - 1}: {len(versions[-1][some_page])} bytes")

    # Diff two non-adjacent versions directly (structural pruning applies).
    differences = versions[5].diff(versions[20])
    print(f"\ndiff(v5, v20): {len(differences)} pages differ "
          f"({len(differences.added)} added, {len(differences.changed)} changed)")

    print(f"\nunique nodes in store: {len(store)}; "
          f"store bytes: {store.total_bytes() / 1e6:.1f} MB")


if __name__ == "__main__":
    main()
