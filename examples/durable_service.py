#!/usr/bin/env python3
"""Durability walkthrough: segment storage, crash recovery, version GC.

This demonstrates the durable deployment mode of the service layer
(``docs/STORAGE.md``):

1. stand a service up over append-only segment-file shards
   (``directory=``) with a 4-version retention policy,
2. commit versions and shut down cleanly — then recover everything from
   disk in a fresh instance,
3. *crash* (abandon the instance without ``close()``) after flushed but
   uncommitted writes, and watch recovery rewind to the last commit,
4. churn many versions and reclaim their space with the mark-and-sweep
   garbage collector, while every retained version stays readable.

Run with ``PYTHONPATH=src python examples/durable_service.py``.
"""

import shutil
import tempfile

from repro.core.errors import NodeNotFoundError
from repro.indexes import POSTree
from repro.service import VersionedKVService


def open_service(directory):
    """(Re)construct the durable service — also the crash-recovery path."""
    return VersionedKVService(
        POSTree, num_shards=4, directory=directory,
        batch_size=500, retain_versions=4,
    )


def main():
    directory = tempfile.mkdtemp(prefix="repro-durable-")
    print(f"durable service under {directory}")

    # --- 1. write, commit, close cleanly --------------------------------
    service = open_service(directory)
    for account in range(2_000):
        service.put(f"account:{account:05d}", f"balance={1_000 + account}")
    v0 = service.commit("initial balances").version
    for account in range(0, 2_000, 2):
        service.put(f"account:{account:05d}", f"balance={2_000 + account}")
    v1 = service.commit("even accounts doubled").version
    service.close()
    print(f"committed versions {v0} and {v1}, closed cleanly")

    # --- 2. recover from disk -------------------------------------------
    service = open_service(directory)
    assert service.get("account:00002", version=v0) == b"balance=1002"
    assert service.get("account:00002", version=v1) == b"balance=2002"
    print(f"recovered {len(service.commits)} commits, "
          f"{service.record_count()} records")

    # --- 3. crash: flushed but uncommitted writes are rewound ------------
    for account in range(100):
        service.put(f"ephemeral:{account:04d}", "never committed")
    service.flush()          # durable at the store level...
    del service              # ...but no commit: simulate a crash
    service = open_service(directory)
    assert service.get("ephemeral:0000") is None
    assert service.get("account:00002") == b"balance=2002"
    print("crash recovery rewound to the last commit, as specified")

    # --- 4. churn versions, then reclaim them ----------------------------
    for round_number in range(12):
        for account in range(0, 2_000, 3):
            service.put(f"account:{account:05d}",
                        f"balance={round_number}-{account}")
        service.commit(f"churn round {round_number}")
    report = service.collect_garbage()
    print(f"GC: reclaimed {report.bytes_reclaimed:,} of "
          f"{report.bytes_before:,} segment bytes "
          f"({report.reclaimed_fraction:.0%}), swept {report.swept_nodes} nodes")

    retained = service.retained_commits()
    for commit in retained:
        assert service.get("account:00003", version=commit.version) is not None
    print(f"all {len(retained)} retained versions still readable")
    try:
        dict(service.snapshot(v0).items())
        print("note: v0 still materializes (its nodes are shared with "
              "retained versions at this churn level)")
    except NodeNotFoundError:
        print(f"version {v0} is outside the retention window and was collected")

    print("cumulative GC counters:", service.metrics().gc)
    service.close()
    shutil.rmtree(directory, ignore_errors=True)


if __name__ == "__main__":
    main()
