"""Packaging for the `repro` library.

Kept as a plain ``setup.py`` (no ``pyproject.toml``) so the legacy
editable-install path works on environments without the ``wheel``
package: ``pip install -e .`` from the repository root puts ``repro``
on the import path, as the README documents.
"""

import os

from setuptools import find_packages, setup


def _read_long_description() -> str:
    readme = os.path.join(os.path.dirname(__file__), "README.md")
    with open(readme, encoding="utf-8") as handle:
        return handle.read()


setup(
    name="repro-siri-indexes",
    version="0.1.0",
    description=(
        "Reproduction of 'Analysis of Indexing Structures for Immutable "
        "Data' (SIGMOD 2020): MPT, Merkle Bucket Tree, POS-Tree and an "
        "MVMB+-Tree baseline on content-addressed storage, plus a sharded "
        "versioned-KV service layer"
    ),
    long_description=_read_long_description(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    # The library itself is standard-library only; tests and benchmarks
    # need pytest/pytest-benchmark.
    install_requires=[],
    extras_require={
        "dev": ["pytest", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 3 - Alpha",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3 :: Only",
        "Topic :: Database",
        "Topic :: System :: Distributed Computing",
    ],
)
