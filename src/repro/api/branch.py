"""Branch handles: staged writes, reads, history and O(1) forks.

A :class:`Branch` is a named line of development inside a
:class:`~repro.api.repository.Repository`.  Its *committed* state is the
tuple of per-shard root digests recorded by the branch's head commit;
because roots address immutable copy-on-write trees, two branches share
every node they have in common and forking costs one journal append.

Writes stage in a small in-memory buffer (last-writer-wins per key) and
become durable — and visible to other readers of the branch — only at
:meth:`Branch.commit`, which applies the whole buffer as one batched
copy-on-write update and journals the new roots atomically across all
shards.  Reads are *read-your-writes*: :meth:`Branch.get` and
:meth:`Branch.scan` overlay the staged buffer on the committed state.

For isolated multi-step updates use :meth:`Branch.transaction`, which
snapshots the branch head on entry and detects conflicting concurrent
commits at commit time (:mod:`repro.api.transaction`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.diff import DiffResult
from repro.core.errors import InvalidParameterError, KeyNotFoundError, TransactionConflictError
from repro.core.interfaces import KeyLike, ValueLike, coerce_key, coerce_value
from repro.core.proof import MerkleProof
from repro.hashing.digest import Digest
from repro.query.definition import IndexDefinition, encode_posting_key
from repro.service.service import ServiceCommit, ServiceSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.repository import Repository
    from repro.api.transaction import Transaction

#: Sentinel distinguishing "no expectation" from "expected no head".
_UNSET = object()

#: A staging buffer: key -> value, or None for a staged removal.
StagedOps = Dict[bytes, Optional[bytes]]


def route_staged_ops(service, staged: StagedOps):
    """Partition a staging buffer into per-shard put/remove batches.

    ``None`` values are removals — the one convention shared by branch
    commits and merges, kept in a single place so both surfaces always
    route an operation identically.  Returns ``(puts_by_shard,
    removes_by_shard)`` sized to the service's shard count.
    """
    num_shards = service.num_shards
    puts_by_shard: List[Dict[bytes, bytes]] = [{} for _ in range(num_shards)]
    removes_by_shard: List[List[bytes]] = [[] for _ in range(num_shards)]
    for key, value in staged.items():
        shard_id = service.shard_of(key)
        if value is None:
            removes_by_shard[shard_id].append(key)
        else:
            puts_by_shard[shard_id][key] = value
    return puts_by_shard, removes_by_shard


def prefix_upper_bound(prefix: bytes) -> Optional[bytes]:
    """The smallest key greater than every key starting with ``prefix``.

    Used to turn a prefix constraint into an exclusive ``stop`` bound for
    range-pruned scans.  ``None`` when no such key exists (the prefix is
    empty or all ``0xFF`` bytes — the range is unbounded above).
    """
    for position in range(len(prefix) - 1, -1, -1):
        if prefix[position] != 0xFF:
            return prefix[:position] + bytes([prefix[position] + 1])
    return None


def committed_postings(service, commit: Optional[ServiceCommit],
                       definition: IndexDefinition,
                       index_key: bytes) -> Optional[List[Tuple[bytes, bytes]]]:
    """``(primary_key, value)`` pairs under ``index_key`` in ``commit``.

    Answered entirely from the commit's covering posting trees — one
    pruned contiguous scan, no primary-tree reads.  Returns ``None``
    when the commit has no posting roots for the index (it predates
    registration) — the caller falls back to a scan-filter.  An unborn
    branch (``commit is None``) has no records, so ``[]``.
    """
    if commit is None:
        return []
    roots = commit.index_root_map().get(definition.name)
    if roots is None:
        return None
    return service.index_lookup(roots, index_key)


def committed_posting_triples(
        service, commit: Optional[ServiceCommit],
        definition: IndexDefinition,
        lo: Optional[bytes],
        hi: Optional[bytes]) -> Optional[List[Tuple[bytes, bytes, bytes]]]:
    """``(index_key, primary_key, value)`` triples with ``lo <= index_key < hi``.

    Same fallback contract as :func:`committed_postings`: ``None`` means
    the commit carries no posting roots for this index.
    """
    if commit is None:
        return []
    roots = commit.index_root_map().get(definition.name)
    if roots is None:
        return None
    return service.index_range(roots, lo, hi)


def lookup_with_overlay(service, definition: IndexDefinition, index_key: bytes,
                        commit: Optional[ServiceCommit], snapshot: ServiceSnapshot,
                        staged: StagedOps) -> List[Tuple[bytes, bytes]]:
    """Secondary-index lookup over a committed view plus a staging buffer.

    Committed matches come straight from the commit's covering posting
    trees (or, for commits predating the index, a scan-filter over the
    snapshot); the staging buffer then overlays them exactly like
    primary reads: staged removals and overwrites drop the committed
    match, staged values whose extracted keys include ``index_key`` add
    one.  Returns sorted ``(primary_key, value)`` pairs.
    """
    committed = committed_postings(service, commit, definition, index_key)
    if committed is None:
        committed = [(key, value) for key, value in snapshot.items()
                     if index_key in definition.keys_for(value)]
    results = [(key, value) for key, value in committed if key not in staged]
    for key, value in staged.items():
        if value is not None and index_key in definition.keys_for(value):
            results.append((key, value))
    results.sort()
    return results


def range_with_overlay(service, definition: IndexDefinition,
                       lo: Optional[bytes], hi: Optional[bytes],
                       commit: Optional[ServiceCommit], snapshot: ServiceSnapshot,
                       staged: StagedOps) -> List[Tuple[bytes, bytes, bytes]]:
    """Secondary-index range query with staged overlay.

    Returns sorted ``(index_key, primary_key, value)`` triples for every
    effective record whose extracted keys intersect ``[lo, hi)`` —
    committed covering postings first (one pruned range scan), then the
    staging buffer's adds/overrides, mirroring
    :func:`lookup_with_overlay`.
    """
    triples = committed_posting_triples(service, commit, definition, lo, hi)
    if triples is None:
        triples = []
        for key, value in snapshot.items():
            for index_key in definition.keys_for(value):
                if lo is not None and index_key < lo:
                    continue
                if hi is not None and index_key >= hi:
                    continue
                triples.append((index_key, key, value))
        triples.sort()
    results = [(index_key, key, value) for index_key, key, value in triples
               if key not in staged]
    for key, value in staged.items():
        if value is None:
            continue
        for index_key in definition.keys_for(value):
            if lo is not None and index_key < lo:
                continue
            if hi is not None and index_key >= hi:
                continue
            results.append((index_key, key, value))
    results.sort()
    return results


def overlay_items(committed: Iterator[Tuple[bytes, bytes]],
                  staged: StagedOps) -> Iterator[Tuple[bytes, bytes]]:
    """Merge-join a committed (key, value) stream with a staging buffer.

    Staged puts override committed values, staged removals (``None``)
    suppress them, and both streams stay in ascending key order.
    """
    pending = sorted(staged.items())
    position = 0
    for key, value in committed:
        while position < len(pending) and pending[position][0] < key:
            staged_key, staged_value = pending[position]
            if staged_value is not None:
                yield staged_key, staged_value
            position += 1
        if position < len(pending) and pending[position][0] == key:
            staged_value = pending[position][1]
            if staged_value is not None:
                yield key, staged_value
            position += 1
        else:
            yield key, value
    for staged_key, staged_value in pending[position:]:
        if staged_value is not None:
            yield staged_key, staged_value


class Branch:
    """One named branch of a repository (obtain via the repository).

    All methods are safe to call from any thread; staged writes and
    commits on the *same* branch serialize on the branch's lock, while
    different branches proceed in parallel.
    """

    def __init__(self, repository: "Repository", name: str):
        """Bind a handle to ``name``; use the repository's accessors instead."""
        self.repository = repository
        self.name = name
        self._service = repository.service
        self._staged: StagedOps = {}
        self._lock = threading.RLock()
        #: (head version, snapshot) cache for committed-state reads.
        self._snapshot_cache: Optional[Tuple[Optional[int], ServiceSnapshot]] = None

    # -- committed state ---------------------------------------------------

    @property
    def head(self) -> Optional[ServiceCommit]:
        """The branch's newest commit (``None`` before the first commit)."""
        if self._service.has_branch(self.name):
            return self._service.branch_head(self.name)
        return None

    @property
    def roots(self) -> Tuple[Optional[Digest], ...]:
        """Per-shard root digests of the committed head (all-empty if none)."""
        head = self.head
        if head is None:
            return (None,) * self._service.num_shards
        return head.roots

    def snapshot(self) -> ServiceSnapshot:
        """An immutable view of the committed head (staged writes excluded)."""
        head = self.head
        version = head.version if head is not None else None
        cached = self._snapshot_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        snapshot = self._service.snapshot_roots(self.roots, commit=head)
        self._snapshot_cache = (version, snapshot)
        return snapshot

    def record_count(self) -> int:
        """Records in the committed head (staged writes excluded)."""
        return len(self.snapshot())

    # -- staged writes -----------------------------------------------------

    def put(self, key: KeyLike, value: ValueLike) -> None:
        """Stage a write of ``key = value`` (visible to this branch's reads)."""
        with self._lock:
            self._staged[coerce_key(key)] = coerce_value(value)

    def remove(self, key: KeyLike) -> None:
        """Stage a removal of ``key`` (absent keys are ignored at commit)."""
        with self._lock:
            self._staged[coerce_key(key)] = None

    def put_many(self, items) -> None:
        """Stage many writes at once (dict or iterable of pairs)."""
        pairs = items.items() if isinstance(items, Mapping) else items
        with self._lock:
            for key, value in pairs:
                self._staged[coerce_key(key)] = coerce_value(value)

    @property
    def staged_count(self) -> int:
        """Number of staged-but-uncommitted operations."""
        return len(self._staged)

    def discard(self) -> None:
        """Drop every staged operation without committing."""
        with self._lock:
            self._staged.clear()

    # -- reads (read-your-writes) ------------------------------------------

    def get(self, key: KeyLike, default: Optional[bytes] = None) -> Optional[bytes]:
        """Read ``key``: staged value if any, else the committed head's."""
        key_bytes = coerce_key(key)
        with self._lock:
            if key_bytes in self._staged:
                value = self._staged[key_bytes]
                return value if value is not None else default
        value = self.snapshot().get(key_bytes)
        return value if value is not None else default

    def __getitem__(self, key: KeyLike) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def scan(self, start: Optional[KeyLike] = None, stop: Optional[KeyLike] = None,
             prefix: Optional[KeyLike] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in ascending key order.

        Bound contract (pinned — every index family and both shard
        backends behave identically): ``start`` is **inclusive**,
        ``stop`` is **exclusive** — keys satisfy ``start <= key < stop``
        — and ``None`` leaves that end open.  ``prefix`` restricts to
        keys beginning with those bytes and composes with the bounds
        (it is folded into them: ``prefix <= key < prefix+1``).

        Staged operations are overlaid on the committed state, like
        :meth:`get`.  The committed stream is range-pruned per shard
        (:meth:`~repro.core.interfaces.SIRIIndex.iterate_range`), so a
        narrow scan costs the range, not the dataset.
        """
        lo = coerce_key(start) if start is not None else None
        hi = coerce_key(stop) if stop is not None else None
        if prefix is not None:
            prefix_bytes = coerce_key(prefix)
            if lo is None or lo < prefix_bytes:
                lo = prefix_bytes
            upper = prefix_upper_bound(prefix_bytes)
            if upper is not None and (hi is None or upper < hi):
                hi = upper
        with self._lock:
            staged = dict(self._staged)
        for key, value in overlay_items(self.snapshot().items_range(lo, hi), staged):
            # The committed stream honours the bounds already; re-checking
            # here filters the staged overlay (whose keys are unbounded).
            if lo is not None and key < lo:
                continue
            if hi is not None and key >= hi:
                return
            yield key, value

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate every record (staged overlay included), keys ascending."""
        return self.scan()

    def keys(self) -> Iterator[bytes]:
        """Iterate every key (staged overlay included), ascending."""
        for key, _ in self.scan():
            yield key

    def to_dict(self) -> Dict[bytes, bytes]:
        """Materialize the branch's effective content as a dictionary."""
        return dict(self.scan())

    # -- secondary-index queries -------------------------------------------

    def _resolve_index(self, index) -> IndexDefinition:
        """Map an index name (or definition) to its registered definition."""
        name = index.name if isinstance(index, IndexDefinition) else index
        definition = self._service.index_definitions().get(name)
        if definition is None:
            raise InvalidParameterError(
                f"no secondary index named {name!r} is registered "
                "(Repository.register_index)")
        return definition

    def lookup(self, index, key: KeyLike) -> List[Tuple[bytes, bytes]]:
        """Records filed under index key ``key`` by secondary index ``index``.

        Returns sorted ``(primary_key, value)`` pairs.  Committed matches
        are answered from the head commit's posting trees — a pruned
        range scan, no primary-data walk — and the staging buffer is
        overlaid exactly like primary reads (:meth:`get`): staged
        removals and overwrites hide committed matches, staged values
        whose extracted keys include ``key`` appear.  Head commits
        predating the index registration fall back to a scan-filter, so
        the answer is always exact.
        """
        definition = self._resolve_index(index)
        index_key = coerce_key(key)
        with self._lock:
            staged = dict(self._staged)
        return lookup_with_overlay(self._service, definition, index_key,
                                   self.head, self.snapshot(), staged)

    def range(self, index, lo: Optional[KeyLike] = None,
              hi: Optional[KeyLike] = None) -> List[Tuple[bytes, bytes, bytes]]:
        """Records whose index keys fall in ``[lo, hi)`` under ``index``.

        Bound contract matches :meth:`scan`: ``lo`` inclusive, ``hi``
        exclusive, ``None`` = open end — over *index* keys, not primary
        keys.  Returns sorted ``(index_key, primary_key, value)`` triples
        with the staged overlay applied (see :meth:`lookup`).
        """
        definition = self._resolve_index(index)
        lo_bytes = coerce_key(lo) if lo is not None else None
        hi_bytes = coerce_key(hi) if hi is not None else None
        with self._lock:
            staged = dict(self._staged)
        return range_with_overlay(self._service, definition, lo_bytes, hi_bytes,
                                  self.head, self.snapshot(), staged)

    def prove_posting(self, index, key: KeyLike, primary_key: KeyLike) -> MerkleProof:
        """A Merkle proof that ``primary_key`` is posted under index key ``key``.

        The proof anchors to the branch's **committed head**: its top
        step hashes to the posting root recorded (and digest-mixed) by
        the head commit —
        ``head.index_root_map()[name][service.shard_of(primary_key)]`` —
        so a verifier holding the commit can check the posting without
        trusting this process.  Staged operations are unprovable (raise
        after :meth:`commit`); a head predating the index registration
        has no posting roots and raises
        :class:`~repro.core.errors.InvalidParameterError`.
        """
        definition = self._resolve_index(index)
        index_key = coerce_key(key)
        primary = coerce_key(primary_key)
        head = self.head
        roots = (head.index_root_map().get(definition.name)
                 if head is not None else None)
        if roots is None:
            raise InvalidParameterError(
                f"branch {self.name!r} has no committed posting roots for "
                f"index {definition.name!r}; commit first")
        shard_id = self._service.shard_of(primary)
        view = self._service.snapshot_roots(roots).shards[shard_id]
        return view.prove(encode_posting_key(index_key, primary))

    # -- committing --------------------------------------------------------

    def commit(self, message: str = "", allow_empty: bool = False) -> Optional[ServiceCommit]:
        """Apply the staged buffer as one atomic cross-shard commit.

        Returns the new head commit — or the current head unchanged when
        nothing is staged (pass ``allow_empty=True`` to journal an empty
        commit anyway, e.g. as a marker).  The journal append is the
        atomicity point: a crash before it loses only the staged buffer, a
        crash after it recovers the new head on reopen.
        """
        with self._lock:
            if not self._staged and not allow_empty:
                return self.head
            staged = dict(self._staged)
            commit = self._apply(staged, message)
            self._staged.clear()
            return commit

    def _apply(self, staged: StagedOps, message: str,
               expected_head_version=_UNSET) -> ServiceCommit:
        """Commit ``staged`` on top of the branch head (branch lock held).

        ``expected_head_version`` is the optimistic-concurrency check used
        by transactions: if the head moved past it, the staged keys are
        compared against everything the intervening commits changed —
        disjoint updates are rebased onto the new head, overlapping ones
        raise :class:`~repro.core.errors.TransactionConflictError`.
        """
        with self._lock:
            head = self.head
            head_version = head.version if head is not None else None
            if expected_head_version is not _UNSET and head_version != expected_head_version:
                self._check_rebase(staged, expected_head_version)
            puts_by_shard, removes_by_shard = route_staged_ops(self._service, staged)
            parents = (head_version,) if head_version is not None else ()
            commit = self._service.commit_update(
                self.name, self.roots, puts_by_shard, removes_by_shard,
                message=message, parents=parents)
            self._snapshot_cache = None
            return commit

    def load(self, items, message: str = "bulk load") -> Optional[ServiceCommit]:
        """Bulk-import ``items`` into this branch as **one** journalled commit.

        The records (dict or iterable of pairs; duplicates coalesce
        last-writer-wins) are routed per shard once and applied as a
        single batched copy-on-write update per shard — on an empty or
        unborn branch that update is the index's O(N) bottom-up bulk
        builder — and the resulting roots are journalled atomically as
        one commit.  This is the ingest path for seeding a branch with a
        large dataset; for streaming writes keep using :meth:`put` /
        :meth:`commit`.

        The staging buffer is untouched: operations staged before the
        load stay staged (and keep overlaying reads) until their own
        :meth:`commit`, exactly as if another writer had committed to the
        branch.  Returns the new head commit, or the unchanged head when
        ``items`` is empty.
        """
        pairs = items.items() if isinstance(items, Mapping) else items
        puts: StagedOps = {coerce_key(k): coerce_value(v) for k, v in pairs}
        with self._lock:
            head = self.head
            if not puts:
                return head
            head_version = head.version if head is not None else None
            puts_by_shard, removes_by_shard = route_staged_ops(self._service, puts)
            parents = (head_version,) if head_version is not None else ()
            commit = self._service.commit_update(
                self.name, self.roots, puts_by_shard, removes_by_shard,
                message=message, parents=parents)
            self._snapshot_cache = None
            return commit

    def _check_rebase(self, staged: StagedOps, expected_head_version) -> None:
        """Raise unless ``staged`` is disjoint from the intervening commits."""
        if expected_head_version is None:
            base = self._service.snapshot_roots((None,) * self._service.num_shards)
        else:
            base = self._service.snapshot(expected_head_version)
        intervening = base.diff(self.snapshot())
        contended = sorted({entry.key for entry in intervening} & set(staged))
        if contended:
            raise TransactionConflictError(contended)

    # -- forks, history, diffs ---------------------------------------------

    def fork(self, name: str) -> "Branch":
        """Create branch ``name`` at this branch's head (O(1), no data copied)."""
        if self._staged:
            raise InvalidParameterError(
                f"branch {self.name!r} has {len(self._staged)} staged "
                "operation(s); commit or discard before forking")
        return self.repository.create_branch(name, from_branch=self.name)

    def history(self) -> List[ServiceCommit]:
        """This branch's first-parent commit chain, newest first."""
        if not self._service.has_branch(self.name):
            return []
        return list(self._service.log(self.name))

    def diff(self, other) -> DiffResult:
        """Structural diff of committed heads: this branch vs ``other``.

        ``other`` may be a :class:`Branch`, a branch name, a commit, or a
        version number.  Entries are ordered by key; shared subtrees are
        pruned by digest, so the cost scales with the difference.
        """
        if isinstance(other, Branch):
            other_snapshot = other.snapshot()
        elif isinstance(other, str):
            other_snapshot = self.repository.branch(other).snapshot()
        else:
            other_snapshot = self._service.snapshot(other)
        return self.snapshot().diff(other_snapshot)

    def merge(self, theirs, message: str = "", resolver=None):
        """Merge ``theirs`` (branch or name) into this branch (three-way)."""
        return self.repository.merge(self, theirs, message=message, resolver=resolver)

    def transaction(self, message: str = "") -> "Transaction":
        """An isolated read-your-writes transaction over this branch.

        Use as a context manager: commits on clean exit, discards on
        exception.  See :class:`repro.api.transaction.Transaction`.
        """
        from repro.api.transaction import Transaction

        return Transaction(self, message=message)

    def __repr__(self) -> str:
        head = self.head
        at = f"v{head.version}" if head is not None else "unborn"
        return (f"Branch({self.name!r}, head={at}, "
                f"staged={len(self._staged)})")
