"""Branch handles: staged writes, reads, history and O(1) forks.

A :class:`Branch` is a named line of development inside a
:class:`~repro.api.repository.Repository`.  Its *committed* state is the
tuple of per-shard root digests recorded by the branch's head commit;
because roots address immutable copy-on-write trees, two branches share
every node they have in common and forking costs one journal append.

Writes stage in a small in-memory buffer (last-writer-wins per key) and
become durable — and visible to other readers of the branch — only at
:meth:`Branch.commit`, which applies the whole buffer as one batched
copy-on-write update and journals the new roots atomically across all
shards.  Reads are *read-your-writes*: :meth:`Branch.get` and
:meth:`Branch.scan` overlay the staged buffer on the committed state.

For isolated multi-step updates use :meth:`Branch.transaction`, which
snapshots the branch head on entry and detects conflicting concurrent
commits at commit time (:mod:`repro.api.transaction`).
"""

from __future__ import annotations

import threading
from typing import Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.core.diff import DiffResult
from repro.core.errors import InvalidParameterError, KeyNotFoundError, TransactionConflictError
from repro.core.interfaces import KeyLike, ValueLike, coerce_key, coerce_value
from repro.hashing.digest import Digest
from repro.service.service import ServiceCommit, ServiceSnapshot

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.repository import Repository
    from repro.api.transaction import Transaction

#: Sentinel distinguishing "no expectation" from "expected no head".
_UNSET = object()

#: A staging buffer: key -> value, or None for a staged removal.
StagedOps = Dict[bytes, Optional[bytes]]


def route_staged_ops(service, staged: StagedOps):
    """Partition a staging buffer into per-shard put/remove batches.

    ``None`` values are removals — the one convention shared by branch
    commits and merges, kept in a single place so both surfaces always
    route an operation identically.  Returns ``(puts_by_shard,
    removes_by_shard)`` sized to the service's shard count.
    """
    num_shards = service.num_shards
    puts_by_shard: List[Dict[bytes, bytes]] = [{} for _ in range(num_shards)]
    removes_by_shard: List[List[bytes]] = [[] for _ in range(num_shards)]
    for key, value in staged.items():
        shard_id = service.shard_of(key)
        if value is None:
            removes_by_shard[shard_id].append(key)
        else:
            puts_by_shard[shard_id][key] = value
    return puts_by_shard, removes_by_shard


def overlay_items(committed: Iterator[Tuple[bytes, bytes]],
                  staged: StagedOps) -> Iterator[Tuple[bytes, bytes]]:
    """Merge-join a committed (key, value) stream with a staging buffer.

    Staged puts override committed values, staged removals (``None``)
    suppress them, and both streams stay in ascending key order.
    """
    pending = sorted(staged.items())
    position = 0
    for key, value in committed:
        while position < len(pending) and pending[position][0] < key:
            staged_key, staged_value = pending[position]
            if staged_value is not None:
                yield staged_key, staged_value
            position += 1
        if position < len(pending) and pending[position][0] == key:
            staged_value = pending[position][1]
            if staged_value is not None:
                yield key, staged_value
            position += 1
        else:
            yield key, value
    for staged_key, staged_value in pending[position:]:
        if staged_value is not None:
            yield staged_key, staged_value


class Branch:
    """One named branch of a repository (obtain via the repository).

    All methods are safe to call from any thread; staged writes and
    commits on the *same* branch serialize on the branch's lock, while
    different branches proceed in parallel.
    """

    def __init__(self, repository: "Repository", name: str):
        """Bind a handle to ``name``; use the repository's accessors instead."""
        self.repository = repository
        self.name = name
        self._service = repository.service
        self._staged: StagedOps = {}
        self._lock = threading.RLock()
        #: (head version, snapshot) cache for committed-state reads.
        self._snapshot_cache: Optional[Tuple[Optional[int], ServiceSnapshot]] = None

    # -- committed state ---------------------------------------------------

    @property
    def head(self) -> Optional[ServiceCommit]:
        """The branch's newest commit (``None`` before the first commit)."""
        if self._service.has_branch(self.name):
            return self._service.branch_head(self.name)
        return None

    @property
    def roots(self) -> Tuple[Optional[Digest], ...]:
        """Per-shard root digests of the committed head (all-empty if none)."""
        head = self.head
        if head is None:
            return (None,) * self._service.num_shards
        return head.roots

    def snapshot(self) -> ServiceSnapshot:
        """An immutable view of the committed head (staged writes excluded)."""
        head = self.head
        version = head.version if head is not None else None
        cached = self._snapshot_cache
        if cached is not None and cached[0] == version:
            return cached[1]
        snapshot = self._service.snapshot_roots(self.roots, commit=head)
        self._snapshot_cache = (version, snapshot)
        return snapshot

    def record_count(self) -> int:
        """Records in the committed head (staged writes excluded)."""
        return len(self.snapshot())

    # -- staged writes -----------------------------------------------------

    def put(self, key: KeyLike, value: ValueLike) -> None:
        """Stage a write of ``key = value`` (visible to this branch's reads)."""
        with self._lock:
            self._staged[coerce_key(key)] = coerce_value(value)

    def remove(self, key: KeyLike) -> None:
        """Stage a removal of ``key`` (absent keys are ignored at commit)."""
        with self._lock:
            self._staged[coerce_key(key)] = None

    def put_many(self, items) -> None:
        """Stage many writes at once (dict or iterable of pairs)."""
        pairs = items.items() if isinstance(items, Mapping) else items
        with self._lock:
            for key, value in pairs:
                self._staged[coerce_key(key)] = coerce_value(value)

    @property
    def staged_count(self) -> int:
        """Number of staged-but-uncommitted operations."""
        return len(self._staged)

    def discard(self) -> None:
        """Drop every staged operation without committing."""
        with self._lock:
            self._staged.clear()

    # -- reads (read-your-writes) ------------------------------------------

    def get(self, key: KeyLike, default: Optional[bytes] = None) -> Optional[bytes]:
        """Read ``key``: staged value if any, else the committed head's."""
        key_bytes = coerce_key(key)
        with self._lock:
            if key_bytes in self._staged:
                value = self._staged[key_bytes]
                return value if value is not None else default
        value = self.snapshot().get(key_bytes)
        return value if value is not None else default

    def __getitem__(self, key: KeyLike) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def scan(self, start: Optional[KeyLike] = None, stop: Optional[KeyLike] = None,
             prefix: Optional[KeyLike] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in ascending key order.

        ``start`` (inclusive) / ``stop`` (exclusive) bound the range;
        ``prefix`` restricts to keys with that prefix.  Staged operations
        are overlaid on the committed state, like :meth:`get`.
        """
        start_bytes = coerce_key(start) if start is not None else None
        stop_bytes = coerce_key(stop) if stop is not None else None
        prefix_bytes = coerce_key(prefix) if prefix is not None else None
        with self._lock:
            staged = dict(self._staged)
        for key, value in overlay_items(self.snapshot().items(), staged):
            if start_bytes is not None and key < start_bytes:
                continue
            if stop_bytes is not None and key >= stop_bytes:
                return
            if prefix_bytes is not None:
                if key.startswith(prefix_bytes):
                    yield key, value
                elif key > prefix_bytes and not key.startswith(prefix_bytes):
                    # Keys are ordered: once past the prefix range, stop.
                    return
                continue
            yield key, value

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate every record (staged overlay included), keys ascending."""
        return self.scan()

    def keys(self) -> Iterator[bytes]:
        """Iterate every key (staged overlay included), ascending."""
        for key, _ in self.scan():
            yield key

    def to_dict(self) -> Dict[bytes, bytes]:
        """Materialize the branch's effective content as a dictionary."""
        return dict(self.scan())

    # -- committing --------------------------------------------------------

    def commit(self, message: str = "", allow_empty: bool = False) -> Optional[ServiceCommit]:
        """Apply the staged buffer as one atomic cross-shard commit.

        Returns the new head commit — or the current head unchanged when
        nothing is staged (pass ``allow_empty=True`` to journal an empty
        commit anyway, e.g. as a marker).  The journal append is the
        atomicity point: a crash before it loses only the staged buffer, a
        crash after it recovers the new head on reopen.
        """
        with self._lock:
            if not self._staged and not allow_empty:
                return self.head
            staged = dict(self._staged)
            commit = self._apply(staged, message)
            self._staged.clear()
            return commit

    def _apply(self, staged: StagedOps, message: str,
               expected_head_version=_UNSET) -> ServiceCommit:
        """Commit ``staged`` on top of the branch head (branch lock held).

        ``expected_head_version`` is the optimistic-concurrency check used
        by transactions: if the head moved past it, the staged keys are
        compared against everything the intervening commits changed —
        disjoint updates are rebased onto the new head, overlapping ones
        raise :class:`~repro.core.errors.TransactionConflictError`.
        """
        with self._lock:
            head = self.head
            head_version = head.version if head is not None else None
            if expected_head_version is not _UNSET and head_version != expected_head_version:
                self._check_rebase(staged, expected_head_version)
            puts_by_shard, removes_by_shard = route_staged_ops(self._service, staged)
            parents = (head_version,) if head_version is not None else ()
            commit = self._service.commit_update(
                self.name, self.roots, puts_by_shard, removes_by_shard,
                message=message, parents=parents)
            self._snapshot_cache = None
            return commit

    def load(self, items, message: str = "bulk load") -> Optional[ServiceCommit]:
        """Bulk-import ``items`` into this branch as **one** journalled commit.

        The records (dict or iterable of pairs; duplicates coalesce
        last-writer-wins) are routed per shard once and applied as a
        single batched copy-on-write update per shard — on an empty or
        unborn branch that update is the index's O(N) bottom-up bulk
        builder — and the resulting roots are journalled atomically as
        one commit.  This is the ingest path for seeding a branch with a
        large dataset; for streaming writes keep using :meth:`put` /
        :meth:`commit`.

        The staging buffer is untouched: operations staged before the
        load stay staged (and keep overlaying reads) until their own
        :meth:`commit`, exactly as if another writer had committed to the
        branch.  Returns the new head commit, or the unchanged head when
        ``items`` is empty.
        """
        pairs = items.items() if isinstance(items, Mapping) else items
        puts: StagedOps = {coerce_key(k): coerce_value(v) for k, v in pairs}
        with self._lock:
            head = self.head
            if not puts:
                return head
            head_version = head.version if head is not None else None
            puts_by_shard, removes_by_shard = route_staged_ops(self._service, puts)
            parents = (head_version,) if head_version is not None else ()
            commit = self._service.commit_update(
                self.name, self.roots, puts_by_shard, removes_by_shard,
                message=message, parents=parents)
            self._snapshot_cache = None
            return commit

    def _check_rebase(self, staged: StagedOps, expected_head_version) -> None:
        """Raise unless ``staged`` is disjoint from the intervening commits."""
        if expected_head_version is None:
            base = self._service.snapshot_roots((None,) * self._service.num_shards)
        else:
            base = self._service.snapshot(expected_head_version)
        intervening = base.diff(self.snapshot())
        contended = sorted({entry.key for entry in intervening} & set(staged))
        if contended:
            raise TransactionConflictError(contended)

    # -- forks, history, diffs ---------------------------------------------

    def fork(self, name: str) -> "Branch":
        """Create branch ``name`` at this branch's head (O(1), no data copied)."""
        if self._staged:
            raise InvalidParameterError(
                f"branch {self.name!r} has {len(self._staged)} staged "
                "operation(s); commit or discard before forking")
        return self.repository.create_branch(name, from_branch=self.name)

    def history(self) -> List[ServiceCommit]:
        """This branch's first-parent commit chain, newest first."""
        if not self._service.has_branch(self.name):
            return []
        return list(self._service.log(self.name))

    def diff(self, other) -> DiffResult:
        """Structural diff of committed heads: this branch vs ``other``.

        ``other`` may be a :class:`Branch`, a branch name, a commit, or a
        version number.  Entries are ordered by key; shared subtrees are
        pruned by digest, so the cost scales with the difference.
        """
        if isinstance(other, Branch):
            other_snapshot = other.snapshot()
        elif isinstance(other, str):
            other_snapshot = self.repository.branch(other).snapshot()
        else:
            other_snapshot = self._service.snapshot(other)
        return self.snapshot().diff(other_snapshot)

    def merge(self, theirs, message: str = "", resolver=None):
        """Merge ``theirs`` (branch or name) into this branch (three-way)."""
        return self.repository.merge(self, theirs, message=message, resolver=resolver)

    def transaction(self, message: str = "") -> "Transaction":
        """An isolated read-your-writes transaction over this branch.

        Use as a context manager: commits on clean exit, discards on
        exception.  See :class:`repro.api.transaction.Transaction`.
        """
        from repro.api.transaction import Transaction

        return Transaction(self, message=message)

    def __repr__(self) -> str:
        head = self.head
        at = f"v{head.version}" if head is not None else "unborn"
        return (f"Branch({self.name!r}, head={at}, "
                f"staged={len(self._staged)})")
