"""The public repository API: branches, three-way merge, transactions.

This package is the one surface applications program against.  It turns
the layers below — immutable SIRI indexes, the content-addressed node
stores, the sharded durable service — into the forked-data model the
paper's motivating systems (ForkBase, Noms) expose:

* :class:`Repository` — opens over memory, per-shard stores or the
  durable directory backend; owns the named branches and the commit DAG.
* :class:`Branch` — put/get/scan/diff/history on one line of
  development; :meth:`~Branch.fork` copies only root digests (O(1)).
* :class:`Transaction` — an isolated read-your-writes staging buffer
  committed atomically across all shards, usable as a context manager.
* :func:`merge_branches` — lowest-common-ancestor three-way structural
  merge with deterministic conflict detection and pluggable resolution
  (:class:`MergeConflict`, :class:`MergeOutcome`).

Quickstart::

    from repro.api import Repository

    with Repository.open("/tmp/ledger") as repo:       # durable backend
        main = repo.default_branch
        main.put_many({b"alice": b"100", b"bob": b"250"})
        main.commit("initial balances")

        audit = main.fork("audit")                     # O(1) fork
        audit.put(b"alice", b"95")
        audit.commit("correction")

        outcome = repo.merge("main", "audit")          # three-way merge
        assert main.get(b"alice") == b"95"
"""

from repro.api.branch import Branch
from repro.api.merge import MergeConflict, MergeOutcome, Resolver, merge_branches, three_way_roots
from repro.api.repository import Repository
from repro.api.transaction import Transaction

__all__ = [
    "Repository",
    "Branch",
    "Transaction",
    "MergeConflict",
    "MergeOutcome",
    "Resolver",
    "merge_branches",
    "three_way_roots",
]
