"""Transactions: isolated staging buffers with optimistic commit.

A :class:`Transaction` gives a multi-step update three guarantees the
bare branch staging buffer does not:

* **Snapshot isolation for reads** — the transaction pins the branch
  head's roots when it begins; its reads resolve against that frozen
  state (plus its own writes) no matter what commits land on the branch
  meanwhile.  Immutability makes this free: pinned roots never change.
* **All-or-nothing application** — :meth:`commit` applies the whole
  buffer as one batched copy-on-write update journalled in a single
  fsynced append across all shards; :meth:`abort` (or an exception when
  used as a context manager) drops it without a trace.
* **Conflict detection** — if other commits advanced the branch while
  the transaction ran, :meth:`commit` diffs the intervening history
  against the transaction's key set.  Disjoint updates are rebased onto
  the new head and applied; overlapping ones raise
  :class:`~repro.core.errors.TransactionConflictError` (optimistic
  concurrency — re-read and retry).

Example::

    with Repository.open() as repo:
        accounts = repo.default_branch
        accounts.put(b"alice", b"100")
        accounts.put(b"bob", b"50")
        accounts.commit("open accounts")
        with accounts.transaction("transfer") as txn:
            alice = int(txn[b"alice"])
            bob = int(txn[b"bob"])
            txn.put(b"alice", str(alice - 10))
            txn.put(b"bob", str(bob + 10))
        # committed atomically here; on exception: discarded
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Optional, Tuple

from repro.core.errors import (
    KeyNotFoundError,
    TransactionClosedError,
    TransactionConflictError,
)
from repro.core.interfaces import KeyLike, ValueLike, coerce_key, coerce_value
from repro.service.service import ServiceCommit

from repro.api.branch import (
    Branch,
    StagedOps,
    lookup_with_overlay,
    overlay_items,
    range_with_overlay,
)


class Transaction:
    """One isolated, atomically-committed batch of reads and writes.

    Obtain via :meth:`repro.api.branch.Branch.transaction`.  A transaction
    is single-shot: after :meth:`commit` or :meth:`abort` every operation
    raises :class:`~repro.core.errors.TransactionClosedError`.

    Transactions are *not* shared between threads; open one per worker
    (commits still serialize correctly on the branch lock underneath).

    The base view is pinned against :meth:`Repository.collect_garbage`
    for the transaction's lifetime, so snapshot-isolated reads cannot
    dangle; always resolve transactions (commit or abort — the context
    manager does) or the pin persists for the process lifetime.
    """

    def __init__(self, branch: Branch, message: str = ""):
        """Begin a transaction over ``branch``'s current committed head."""
        self.branch = branch
        self.message = message
        head = branch.head
        #: Version of the branch head this transaction read from (None =
        #: the branch was unborn); the optimistic check compares against it.
        self.base_version: Optional[int] = head.version if head is not None else None
        service = branch.repository.service
        base_roots = branch.roots
        #: The pinned base commit (None for an unborn branch); secondary
        #: -index reads resolve against its journalled posting roots.
        self._base_commit: Optional[ServiceCommit] = head
        self._base_snapshot = service.snapshot_roots(base_roots)
        # Pin the base view against GC: the snapshot-isolation promise
        # must hold even if the branch churns past the retention window
        # and collect_garbage() runs while this transaction is open.
        self._pin_id = service.pin_roots(base_roots)
        self._staged: StagedOps = {}
        self._outcome: Optional[str] = None
        #: Set by commit(): the commit that applied this transaction.
        self.commit_result: Optional[ServiceCommit] = None

    # -- state guards ------------------------------------------------------

    @property
    def is_open(self) -> bool:
        """Whether the transaction can still stage and commit."""
        return self._outcome is None

    def _require_open(self) -> None:
        if self._outcome is not None:
            raise TransactionClosedError(
                f"transaction already {self._outcome}; begin a new one")

    # -- reads (snapshot isolation + read-your-writes) ---------------------

    def get(self, key: KeyLike, default: Optional[bytes] = None) -> Optional[bytes]:
        """Read ``key`` from this transaction's view (own writes first)."""
        self._require_open()
        key_bytes = coerce_key(key)
        if key_bytes in self._staged:
            value = self._staged[key_bytes]
            return value if value is not None else default
        value = self._base_snapshot.get(key_bytes)
        return value if value is not None else default

    def __getitem__(self, key: KeyLike) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def scan(self, start: Optional[KeyLike] = None,
             stop: Optional[KeyLike] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate the transaction's view in ascending key order."""
        self._require_open()
        start_bytes = coerce_key(start) if start is not None else None
        stop_bytes = coerce_key(stop) if stop is not None else None
        for key, value in overlay_items(self._base_snapshot.items(), dict(self._staged)):
            if start_bytes is not None and key < start_bytes:
                continue
            if stop_bytes is not None and key >= stop_bytes:
                return
            yield key, value

    def lookup(self, index, key: KeyLike):
        """Secondary-index lookup inside the transaction's isolated view.

        Mirrors :meth:`repro.api.branch.Branch.lookup` — sorted
        ``(primary_key, value)`` pairs — but resolves against the pinned
        base commit's posting trees plus this transaction's own staged
        writes, so the answer is snapshot-isolated like every other read.
        """
        self._require_open()
        definition = self.branch._resolve_index(index)
        return lookup_with_overlay(
            self.branch.repository.service, definition, coerce_key(key),
            self._base_commit, self._base_snapshot, dict(self._staged))

    def range(self, index, lo: Optional[KeyLike] = None,
              hi: Optional[KeyLike] = None):
        """Secondary-index range query inside the transaction's view.

        Mirrors :meth:`repro.api.branch.Branch.range` (``lo`` inclusive,
        ``hi`` exclusive over index keys; sorted ``(index_key,
        primary_key, value)`` triples) against the pinned base plus this
        transaction's staged writes.
        """
        self._require_open()
        definition = self.branch._resolve_index(index)
        return range_with_overlay(
            self.branch.repository.service, definition,
            coerce_key(lo) if lo is not None else None,
            coerce_key(hi) if hi is not None else None,
            self._base_commit, self._base_snapshot, dict(self._staged))

    # -- writes ------------------------------------------------------------

    def put(self, key: KeyLike, value: ValueLike) -> None:
        """Stage a write (visible to this transaction's reads only)."""
        self._require_open()
        self._staged[coerce_key(key)] = coerce_value(value)

    def remove(self, key: KeyLike) -> None:
        """Stage a removal (visible to this transaction's reads only)."""
        self._require_open()
        self._staged[coerce_key(key)] = None

    def put_many(self, items) -> None:
        """Stage many writes at once (dict or iterable of pairs)."""
        self._require_open()
        pairs = items.items() if isinstance(items, Mapping) else items
        for key, value in pairs:
            self._staged[coerce_key(key)] = coerce_value(value)

    @property
    def staged_count(self) -> int:
        """Number of staged operations."""
        return len(self._staged)

    # -- outcome -----------------------------------------------------------

    def commit(self, message: Optional[str] = None) -> Optional[ServiceCommit]:
        """Apply the buffer atomically; optimistic conflict check first.

        Returns the new head commit (or the unchanged head for an empty
        transaction).  Raises
        :class:`~repro.core.errors.TransactionConflictError` when a
        concurrent commit changed any key this transaction staged.  The
        transaction then stays open **rebased onto the new head**: reads
        serve the branch's current committed values (plus this
        transaction's staged writes), and the *contended* staged
        operations are discarded — they were derived from stale reads —
        so the caller can re-read the contended keys, re-stage, and call
        :meth:`commit` again — or :meth:`abort`.
        """
        self._require_open()
        if not self._staged:
            self._close("committed")
            self.commit_result = self.branch.head
            return self.commit_result
        final_message = message if message is not None else self.message
        try:
            commit = self.branch._apply(dict(self._staged), final_message,
                                        expected_head_version=self.base_version)
        except TransactionConflictError as conflict:
            self._rebase_to_head(conflict.keys)
            raise
        self._close("committed")
        self.commit_result = commit
        return commit

    def _rebase_to_head(self, contended_keys) -> None:
        """Move the base view to the branch's current head after a conflict.

        The contended staged entries are dropped (their values came from
        reads the concurrent commit invalidated); the rest are kept.
        Reads now resolve against the fresh head, so "re-read and retry"
        genuinely observes the concurrent change that caused the
        conflict.  The old base's GC pin is swapped for one on the new
        base.
        """
        for key in contended_keys:
            self._staged.pop(key, None)
        service = self.branch.repository.service
        head = self.branch.head
        self.base_version = head.version if head is not None else None
        self._base_commit = head
        self._base_snapshot = service.snapshot_roots(self.branch.roots)
        new_pin = service.pin_roots(self.branch.roots)
        service.unpin_roots(self._pin_id)
        self._pin_id = new_pin

    def abort(self) -> None:
        """Discard every staged operation; the branch never sees them."""
        self._require_open()
        self._staged.clear()
        self._close("aborted")

    def _close(self, outcome: str) -> None:
        """Resolve the transaction and release its GC pin."""
        self._outcome = outcome
        self.branch.repository.service.unpin_roots(self._pin_id)

    def __enter__(self) -> "Transaction":
        self._require_open()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> None:
        if self._outcome is not None:
            return  # already resolved explicitly inside the block
        if exc_type is not None:
            self.abort()
            return
        try:
            self.commit()
        except BaseException:
            # The block is over — nobody can retry an implicit commit, so
            # a conflict (or any failure) must not leave the transaction
            # open holding its GC pin.
            if self._outcome is None:
                self.abort()
            raise

    def __repr__(self) -> str:
        state = self._outcome or "open"
        base = f"v{self.base_version}" if self.base_version is not None else "unborn"
        return (f"Transaction(branch={self.branch.name!r}, base={base}, "
                f"staged={len(self._staged)}, {state})")
