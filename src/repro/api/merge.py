"""Three-way structural merge of branches (lowest-common-ancestor based).

The merge the paper's collaborative scenarios need (and the semantics
ForkBase/Noms implement): given two branch heads and their lowest common
ancestor in the commit DAG, a key is

* **taken from theirs** when only their branch changed it since the base,
* **kept from ours** when only our branch changed it (or nobody did),
* **silently shared** when both branches made the *same* change,
* **a conflict** when both branches changed it to different values —
  including change-vs-remove.  Conflicts are never resolved silently:
  without a resolver the merge raises
  :class:`~repro.core.errors.MergeConflictError` carrying every
  :class:`MergeConflict` (deterministically ordered by key); with one,
  each conflict is resolved individually and recorded in the outcome.

Because the inputs are structural diffs against the base (pruned by
subtree digest), merge cost scales with the *changes*, not the dataset —
and because the result's content is the symmetric union
``base + Δours + Δtheirs``, structural invariance makes the merged roots
identical regardless of merge order for non-conflicting forks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union, TYPE_CHECKING

from repro.core.errors import InvalidParameterError, MergeConflictError
from repro.hashing.digest import Digest
from repro.service.service import ServiceCommit

from repro.api.branch import route_staged_ops

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.api.branch import Branch
    from repro.api.repository import Repository

#: A conflict resolver: called once per conflict, returns the surviving
#: value (``None`` = remove the key).  The strings ``"ours"`` and
#: ``"theirs"`` select the corresponding side for every conflict.
Resolver = Union[str, Callable[["MergeConflict"], Optional[bytes]]]


@dataclass(frozen=True)
class MergeConflict:
    """One key both branches changed to different values since the base.

    ``base``/``ours``/``theirs`` are the key's values in the three
    versions (``None`` = absent/removed in that version).
    """

    key: bytes
    base: Optional[bytes]
    ours: Optional[bytes]
    theirs: Optional[bytes]

    def pick(self, side: str) -> Optional[bytes]:
        """The value of ``side`` ("ours" or "theirs")."""
        if side == "ours":
            return self.ours
        if side == "theirs":
            return self.theirs
        raise InvalidParameterError(f"unknown resolution side: {side!r}")


@dataclass
class MergeOutcome:
    """What a merge did.

    Attributes
    ----------
    commit:
        The merge commit advancing ``ours`` (``None`` when the branches
        were already up to date and no commit was journalled).
    base:
        The lowest-common-ancestor commit the diffs were computed against
        (``None`` when the branches share no history — both diffs then run
        against the empty version).
    merged_keys:
        Keys taken from ``theirs`` (their exclusive changes), sorted.
    conflicts_resolved:
        Conflicts a resolver decided, in key order (empty without one).
    up_to_date:
        ``theirs`` contributed nothing new (its head is an ancestor).
    fast_forward:
        ``ours`` had no exclusive changes, so the merge simply adopted
        their roots (still journalled as a two-parent commit).
    """

    commit: Optional[ServiceCommit]
    base: Optional[ServiceCommit]
    merged_keys: List[bytes] = field(default_factory=list)
    conflicts_resolved: List[MergeConflict] = field(default_factory=list)
    up_to_date: bool = False
    fast_forward: bool = False


def _resolve(resolver: Resolver, conflict: MergeConflict) -> Optional[bytes]:
    """Apply a pluggable resolver to one conflict."""
    if isinstance(resolver, str):
        return conflict.pick(resolver)
    return resolver(conflict)


def three_way_roots(service, base_roots: Tuple[Optional[Digest], ...],
                    ours_roots: Tuple[Optional[Digest], ...],
                    theirs_roots: Tuple[Optional[Digest], ...]):
    """Per-shard three-way comparison of root tuples.

    Returns ``(takes, conflicts)`` where ``takes`` maps each shard id to
    the ``{key: value-or-None}`` changes exclusive to ``theirs`` (value
    ``None`` = removal), and ``conflicts`` is the key-sorted list of
    :class:`MergeConflict`.  Pure computation — nothing is written.
    """
    base_view = service.snapshot_roots(base_roots)
    ours_view = service.snapshot_roots(ours_roots)
    theirs_view = service.snapshot_roots(theirs_roots)
    takes: Dict[int, Dict[bytes, Optional[bytes]]] = {}
    conflicts: List[MergeConflict] = []
    for shard_id in range(service.num_shards):
        base_snap = base_view.shards[shard_id]
        ours_diff = {e.key: e for e in base_snap.diff(ours_view.shards[shard_id]).entries}
        theirs_diff = {e.key: e for e in base_snap.diff(theirs_view.shards[shard_id]).entries}
        shard_takes: Dict[bytes, Optional[bytes]] = {}
        for key, theirs_entry in theirs_diff.items():
            ours_entry = ours_diff.get(key)
            if ours_entry is None:
                # Only their branch touched the key: take their change.
                shard_takes[key] = theirs_entry.right
            elif ours_entry.right != theirs_entry.right:
                conflicts.append(MergeConflict(
                    key=key, base=theirs_entry.left,
                    ours=ours_entry.right, theirs=theirs_entry.right))
        if shard_takes:
            takes[shard_id] = shard_takes
    conflicts.sort(key=lambda conflict: conflict.key)
    return takes, conflicts


def merge_branches(repository: "Repository", ours: "Branch", theirs: "Branch",
                   message: str = "",
                   resolver: Optional[Resolver] = None) -> MergeOutcome:
    """Three-way merge ``theirs`` into ``ours``; returns a :class:`MergeOutcome`.

    The base is the branches' lowest common ancestor in the commit DAG
    (the fork point, or the previous merge).  Both branches must have no
    staged operations — merges are computed over committed state only, so
    the result is deterministic.  The merge commit carries both heads as
    parents, which makes repeated merges converge (the next merge's base
    is this commit) and keeps every head recoverable after a crash.
    """
    if ours.staged_count or theirs.staged_count:
        raise InvalidParameterError(
            "both branches must have no staged operations before a merge "
            f"(ours={ours.staged_count}, theirs={theirs.staged_count}); "
            "commit or discard first")
    if ours.name == theirs.name:
        raise InvalidParameterError("cannot merge a branch into itself")
    service = repository.service
    with ours._lock:
        ours_head = ours.head
        theirs_head = theirs.head
        if theirs_head is None:
            return MergeOutcome(commit=None, base=None, up_to_date=True)
        base = (service.merge_base(ours.name, theirs.name)
                if ours_head is not None else None)
        base_roots = (base.roots if base is not None
                      else (None,) * service.num_shards)
        if base is not None and base.roots == theirs_head.roots:
            return MergeOutcome(commit=None, base=base, up_to_date=True)

        ours_roots = ours.roots
        takes, conflicts = three_way_roots(
            service, base_roots, ours_roots, theirs_head.roots)
        resolved: List[MergeConflict] = []
        if conflicts:
            if resolver is None:
                raise MergeConflictError(
                    conflicts,
                    f"merging {theirs.name!r} into {ours.name!r} conflicts "
                    f"on {len(conflicts)} key(s); pass resolver= "
                    "('ours', 'theirs', or a callable)")
            for conflict in conflicts:
                resolution = _resolve(resolver, conflict)
                if resolution != conflict.ours:
                    shard_id = service.shard_of(conflict.key)
                    takes.setdefault(shard_id, {})[conflict.key] = resolution
                resolved.append(conflict)

        merged_keys = sorted(
            key for shard_takes in takes.values() for key in shard_takes)
        flat_takes = {key: value for shard_takes in takes.values()
                      for key, value in shard_takes.items()}
        puts_by_shard, removes_by_shard = route_staged_ops(service, flat_takes)

        fast_forward = (ours_head is None
                        or (base is not None and base.roots == ours_head.roots))
        parents: List[int] = []
        if ours_head is not None:
            parents.append(ours_head.version)
        parents.append(theirs_head.version)
        commit = service.commit_update(
            ours.name, ours_roots, puts_by_shard, removes_by_shard,
            message=message or f"merge {theirs.name} into {ours.name}",
            parents=parents)
        ours._snapshot_cache = None
        return MergeOutcome(
            commit=commit, base=base, merged_keys=merged_keys,
            conflicts_resolved=resolved,
            fast_forward=fast_forward)
