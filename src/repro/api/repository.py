"""The repository: named branches over one sharded, versioned store.

:class:`Repository` is the top of the public API.  It owns a
:class:`~repro.service.VersionedKVService` (or wraps one you already
have), names its branches, and hands out :class:`~repro.api.branch.Branch`
handles through which all reads and writes flow.  The design mirrors the
forked, immutable data model of the paper's motivating systems
(ForkBase/Noms): branches share every unmodified node through the
content-addressed store, so a fork copies only a tuple of root digests —
O(1) in the dataset size — and a merge is a structural three-way diff.

Backends
--------
``Repository.open()`` selects the storage backend:

* ``Repository.open()`` — in-memory shards (tests, notebooks);
* ``Repository.open("/data/repo")`` — the durable append-only segment
  engine with a fsynced commit journal; every branch head survives a
  crash (recovery restores *all* heads, not just the default branch's);
* ``Repository.open(store_factory=...)`` — any
  :class:`~repro.storage.store.NodeStore` per shard (e.g.
  :class:`~repro.storage.file.FileNodeStore` for simple persistence).

Example
-------
>>> from repro.api import Repository
>>> with Repository.open() as repo:                # in-memory backend
...     main = repo.default_branch
...     main.put(b"alice", b"100")
...     _ = main.commit("initial balances")
...     audit = main.fork("audit")                 # O(1): copies roots only
...     audit.put(b"alice", b"150")
...     _ = audit.commit("audited balance")
...     main.get(b"alice")                         # fork is isolated
b'100'
"""

from __future__ import annotations

import threading
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Union

from repro.core.diff import DiffResult
from repro.core.errors import InvalidParameterError
from repro.core.version import UnknownBranchError, VersionGraph
from repro.indexes.pos_tree import POSTree
from repro.query.definition import IndexDefinition
from repro.service.service import ServiceCommit, ServiceSnapshot, VersionedKVService
from repro.storage.store import NodeStore

from repro.api.branch import Branch
from repro.api.merge import MergeOutcome, Resolver, merge_branches


class Repository:
    """Named branches, three-way merges, and transactions over one store.

    Construct through :meth:`open` (which builds and owns the backing
    service) or :meth:`from_service` (which wraps a service you manage).
    All data access goes through :class:`Branch` handles obtained from
    :meth:`branch`, :meth:`create_branch` or :attr:`default_branch`.

    Thread safety: branch handles are cached and shared, commits on one
    branch serialize on that branch's lock, and cross-branch work runs in
    parallel (the underlying service entry points are thread-safe).
    """

    def __init__(self, service: VersionedKVService, *, owns_service: bool = True):
        """Wrap ``service``; prefer :meth:`open`/:meth:`from_service`."""
        self._service = service
        self._owns_service = owns_service
        self._branches: Dict[str, Branch] = {}
        self._lock = threading.Lock()

    # -- construction ------------------------------------------------------

    @classmethod
    def open(cls, directory: Optional[str] = None, *,
             index_factory: Callable[[NodeStore], object] = POSTree,
             num_shards: int = 4,
             store_factory: Optional[Callable[[], NodeStore]] = None,
             cache_bytes: int = 16 * 1024 * 1024,
             retain_versions: Optional[int] = None,
             default_branch: str = "main",
             **service_kwargs) -> "Repository":
        """Open a repository over memory, files, or the durable engine.

        Parameters
        ----------
        directory:
            ``None`` for in-memory shards; a path for the durable
            append-only segment backend (crash recovery restores every
            branch head).  Mutually exclusive with ``store_factory``.
        index_factory:
            Index class (or factory) used per shard —
            :class:`~repro.indexes.pos_tree.POSTree` by default; any
            :class:`~repro.core.interfaces.SIRIIndex` works (MPT, MBT, ...).
        num_shards / cache_bytes / retain_versions / service_kwargs:
            Forwarded to :class:`~repro.service.VersionedKVService`.
        store_factory:
            Builds one custom :class:`~repro.storage.store.NodeStore` per
            shard (e.g. ``FileNodeStore`` over a directory of your own).
        default_branch:
            Name of the branch :attr:`default_branch` returns.
        """
        service = VersionedKVService(
            index_factory,
            num_shards=num_shards,
            store_factory=store_factory,
            cache_bytes=cache_bytes,
            directory=directory,
            retain_versions=retain_versions,
            default_branch=default_branch,
            **service_kwargs,
        )
        return cls(service, owns_service=True)

    @classmethod
    def from_service(cls, service: VersionedKVService, *,
                     owns_service: bool = False) -> "Repository":
        """Wrap an existing service (its flat API keeps working alongside).

        With ``owns_service=False`` (default) :meth:`close` leaves the
        service open — you manage its lifecycle.
        """
        return cls(service, owns_service=owns_service)

    # -- lifecycle ---------------------------------------------------------

    @property
    def service(self) -> VersionedKVService:
        """The backing service (the deprecated flat surface wraps this)."""
        return self._service

    @property
    def is_open(self) -> bool:
        """Whether the backing service is accepting operations."""
        return self._service.is_open

    def close(self) -> None:
        """Close the backing service (if owned); staged branch writes drop.

        Committed branch heads are durable (directory backend) or parked
        (in-memory backend); *staged-but-uncommitted* branch operations
        are discarded, exactly like a transaction that never committed.
        """
        with self._lock:
            for branch in self._branches.values():
                branch.discard()
        if self._owns_service:
            self._service.close()

    def __enter__(self) -> "Repository":
        """Context-manager entry; reopens an owned, closed service."""
        if self._owns_service:
            self._service.open()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: always :meth:`close`, even on error paths."""
        self.close()

    # -- branches ----------------------------------------------------------

    @property
    def default_branch(self) -> Branch:
        """The branch flat writes and new forks default to (``main``)."""
        return self._get_branch(self._service.default_branch, create=True)

    def branch(self, name: str) -> Branch:
        """The existing branch ``name`` (:class:`UnknownBranchError` if absent)."""
        return self._get_branch(name, create=False)

    def _get_branch(self, name: str, create: bool) -> Branch:
        with self._lock:
            branch = self._branches.get(name)
            if branch is None:
                if not create and not self._service.has_branch(name):
                    raise UnknownBranchError(name)
                branch = Branch(self, name)
                self._branches[name] = branch
            return branch

    def create_branch(self, name: str, from_branch: Optional[str] = None) -> Branch:
        """Fork a new branch off ``from_branch`` (default branch if omitted).

        The fork is O(1): it journals one commit carrying the *same* shard
        roots as the source head (so the new head survives crashes and the
        commit DAG records where the fork happened) — no tree node is
        copied, ever.  Returns the new :class:`Branch`.
        """
        if from_branch is None:
            from_branch = self._service.default_branch
        with self._lock:
            if name in self._branches or self._service.has_branch(name):
                raise InvalidParameterError(f"branch {name!r} already exists")
            source_head = (self._service.branch_head(from_branch)
                           if self._service.has_branch(from_branch) else None)
            if source_head is None and from_branch != self._service.default_branch:
                raise UnknownBranchError(from_branch)
            roots = (source_head.roots if source_head is not None
                     else (None,) * self._service.num_shards)
            parents = (source_head.version,) if source_head is not None else ()
            self._service.commit_roots(
                name, roots, message=f"fork of {from_branch}", parents=parents)
            branch = Branch(self, name)
            self._branches[name] = branch
            return branch

    def branches(self) -> List[str]:
        """Every branch name, sorted (committed heads plus the default)."""
        names = set(self._service.branches())
        names.add(self._service.default_branch)
        with self._lock:
            names.update(self._branches.keys())
        return sorted(names)

    def import_data(self, items, branch: Optional[str] = None,
                    message: str = "bulk import") -> Optional[ServiceCommit]:
        """Bulk-import ``items`` into a branch as one journalled commit.

        ``items`` is a mapping or iterable of ``(key, value)`` pairs;
        ``branch`` defaults to the repository's default branch and is
        created on the fly when it does not exist yet (its first commit
        is the import).  Per shard, the records are applied as a single
        batched update — the bottom-up bulk builders when the branch is
        empty — so importing N records costs O(N) node writes and exactly
        one journal append.  Returns the new head commit (see
        :meth:`Branch.load`).
        """
        name = branch if branch is not None else self._service.default_branch
        return self._get_branch(name, create=True).load(items, message=message)

    # -- the query layer: secondary indexes and change feeds -----------------

    def register_index(self, definition: Union[IndexDefinition, str],
                       extractor=None) -> IndexDefinition:
        """Register a secondary index over every branch of this repository.

        Pass an :class:`~repro.query.definition.IndexDefinition`, or a
        name plus extractor (``register_index("author", by_author)``) to
        build one inline.  Existing content is bulk-indexed on the spot;
        from then on every commit maintains the index's posting trees
        incrementally from its own delta and journals their roots next to
        the primary roots — queries (:meth:`Branch.lookup`,
        :meth:`Branch.range`), forks, merges, crash recovery and garbage
        collection all follow the commits.

        Definitions are code, not data: a fresh process re-registers its
        indexes after opening (commits journalled while registered stay
        queryable through their recorded roots either way).  Returns the
        registered definition.
        """
        if not isinstance(definition, IndexDefinition):
            definition = IndexDefinition(definition, extractor)
        elif extractor is not None:
            raise InvalidParameterError(
                "pass either an IndexDefinition or (name, extractor), not both")
        self._service.register_index(definition)
        return definition

    def indexes(self) -> Dict[str, IndexDefinition]:
        """The registered secondary indexes, by name."""
        return self._service.index_definitions()

    def subscribe(self, branch: Optional[str] = None, *,
                  from_commit: Optional[int] = None,
                  filter=None):
        """A change feed over a branch's commit history.

        Returns a :class:`~repro.query.feed.Subscription` replaying the
        branch's first-parent chain as ordered key-level change events
        (one per changed key per commit, computed by structural diff),
        starting after ``from_commit`` (``None`` = from the branch's
        beginning).  ``filter`` narrows events to matching keys: a
        ``bytes``/``str`` prefix, or any callable ``key -> bool``.
        Consume with :meth:`~repro.query.feed.Subscription.poll` (or
        iterate); the cursor is explicit and resumable, so a reader can
        stop, restart — in a new process, or over the wire — and continue
        exactly-once from where it left off.
        """
        # Imported lazily: repro.query.feed types against this module's
        # classes in its annotations, so a module-level import would cycle.
        from repro.query.feed import Subscription
        name = branch if branch is not None else self._service.default_branch
        return Subscription(self, name, from_commit=from_commit, filter=filter)

    # -- history and merging -----------------------------------------------

    @property
    def commits(self) -> List[ServiceCommit]:
        """Every commit on every branch, oldest first (global versions)."""
        return self._service.commits

    def log(self, branch: Optional[str] = None) -> Iterator[ServiceCommit]:
        """Walk a branch's first-parent history, newest commit first."""
        name = branch if branch is not None else self._service.default_branch
        return self._service.log(name)

    def merge_base(self, ours: str, theirs: str) -> Optional[ServiceCommit]:
        """The lowest common ancestor of two branch heads (``None`` if disjoint)."""
        return self._service.merge_base(ours, theirs)

    def merge(self, ours: Union[str, Branch], theirs: Union[str, Branch],
              message: str = "", resolver: Optional[Resolver] = None) -> MergeOutcome:
        """Three-way merge branch ``theirs`` into branch ``ours``.

        See :func:`repro.api.merge.merge_branches` for the full semantics
        (lowest-common-ancestor base, deterministic conflict detection,
        pluggable resolution).
        """
        ours_branch = ours if isinstance(ours, Branch) else self.branch(ours)
        theirs_branch = theirs if isinstance(theirs, Branch) else self.branch(theirs)
        return merge_branches(self, ours_branch, theirs_branch,
                              message=message, resolver=resolver)

    def sync(self, remote, branch: Optional[str] = None, *,
             resolver: Optional[Resolver] = None, message: str = ""):
        """Anti-entropy sync with another replica; returns a ``SyncReport``.

        ``remote`` is the other replica in any of its forms: another
        :class:`Repository` (or bare service) in this process, a
        :class:`~repro.server.client.RemoteRepository` talking to a wire
        server, or a prepared :class:`~repro.sync.SyncSource`.  Per
        branch the session transfers only the nodes on the structural
        frontier — subtrees the receiver already holds are pruned by
        digest, so traffic scales with the divergence, not the dataset —
        then fast-forwards whichever head is behind, or three-way merges
        a true divergence (conflicts surface as
        :class:`~repro.core.errors.MergeConflictError` unless
        ``resolver`` settles them; a deterministic, symmetric resolver
        makes concurrently-written replicas converge).

        ``branch=None`` syncs the union of both replicas' branches.
        Nodes always land before any head moves and every landed batch
        is durable, so an interrupted sync resumes from the frontier
        without re-paying for transferred subtrees.  See ``docs/SYNC.md``.
        """
        # Imported lazily: repro.sync reaches back into repro.api for the
        # three-way merge, so a module-level import would cycle.
        from repro.sync.session import sync_service
        return sync_service(self._service, remote, branch,
                            resolver=resolver, message=message)

    def diff(self, left: Union[str, Branch, int, ServiceCommit],
             right: Union[str, Branch, int, ServiceCommit]) -> DiffResult:
        """Structural diff between two branches/commits (ordered by key)."""
        return self._snapshot_of(left).diff(self._snapshot_of(right))

    def snapshot(self, ref: Union[str, Branch, int, ServiceCommit]) -> ServiceSnapshot:
        """An immutable cross-shard view of a branch head or a commit."""
        return self._snapshot_of(ref)

    def _snapshot_of(self, ref) -> ServiceSnapshot:
        if isinstance(ref, Branch):
            return ref.snapshot()
        if isinstance(ref, str):
            return self._get_branch(ref, create=False).snapshot()
        return self._service.snapshot(ref)

    # -- maintenance -------------------------------------------------------

    def collect_garbage(self):
        """Reclaim expired interior versions; every branch head stays live."""
        return self._service.collect_garbage()

    def storage_bytes(self) -> int:
        """Physical bytes across all shard stores (shared nodes once)."""
        return self._service.storage_bytes()

    def metrics(self, include_records: bool = False):
        """The backing service's counters (see :meth:`VersionedKVService.metrics`)."""
        return self._service.metrics(include_records=include_records)

    def __repr__(self) -> str:
        return (f"Repository(branches={self.branches()}, "
                f"commits={len(self._service.commits)}, "
                f"shards={self._service.num_shards})")
