"""Materialized views maintained incrementally from a change feed.

:class:`MaterializedCountView` keeps per-group counts (e.g. revisions
per author in the wiki workload) continuously up to date by draining a
:class:`repro.query.feed.Subscription` instead of rescanning the
dataset: each change event retires the old value's group memberships and
admits the new value's, so the cost of a :meth:`refresh` is proportional
to the number of keys the intervening commits changed — the incremental
view maintenance (IVM) story the change feed exists to enable.
:meth:`MaterializedCountView.recompute` builds the same counts by brute
force from a full scan, both as the correctness oracle in tests and as
the baseline the benchmark compares against.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.core.errors import InvalidParameterError


class MaterializedCountView:
    """Per-group counts over a branch, maintained from its change feed.

    ``extractor`` maps a value to the list of group keys it belongs to
    (the same shape as :class:`repro.query.definition.IndexDefinition`
    extractors, so one function can drive both an index and a view).
    The view counts, for every group key, how many primary keys
    currently map to it.

    Usage::

        view = MaterializedCountView(repo.subscribe("main"), extract_author)
        view.refresh()              # drain new commits incrementally
        view.count(b"alice")        # -> current revision count

    Groups whose count drops to zero are pruned, so ``counts()`` equals
    a fresh :meth:`recompute` exactly.
    """

    def __init__(self, subscription, extractor: Callable[[bytes], List[bytes]]):
        """Wrap ``subscription`` (a fresh or resumed feed) with ``extractor``."""
        if not callable(extractor):
            raise InvalidParameterError("view extractor must be callable")
        self.subscription = subscription
        self.extractor = extractor
        self._counts: Dict[bytes, int] = {}
        #: Events applied since construction (for tests and benchmarks).
        self.events_applied = 0

    def refresh(self, limit: Optional[int] = None) -> int:
        """Drain the feed and fold the events in; returns events applied.

        ``limit`` bounds one poll batch (``None`` = drain to the branch
        head).  Each event decrements the groups extracted from the old
        value and increments those from the new one, so updates that
        move a key between groups are handled without any rescan.
        """
        applied = 0
        while True:
            events = self.subscription.poll(limit=limit)
            for event in events:
                if event.old is not None:
                    for group in self.extractor(event.old):
                        remaining = self._counts.get(group, 0) - 1
                        if remaining > 0:
                            self._counts[group] = remaining
                        else:
                            self._counts.pop(group, None)
                if event.new is not None:
                    for group in self.extractor(event.new):
                        self._counts[group] = self._counts.get(group, 0) + 1
                applied += 1
            if self.subscription.up_to_date or not events:
                break
        self.events_applied += applied
        return applied

    def count(self, group: bytes) -> int:
        """The current count for one group key (0 when absent)."""
        return self._counts.get(group, 0)

    def counts(self) -> Dict[bytes, int]:
        """A copy of the full group -> count mapping."""
        return dict(self._counts)

    @classmethod
    def recompute(cls, branch,
                  extractor: Callable[[bytes], List[bytes]]) -> Dict[bytes, int]:
        """Brute-force the counts from a full scan of ``branch``.

        The non-incremental baseline: O(dataset) regardless of how
        little changed.  Used as the oracle the incremental path must
        match and as the cost yardstick in ``bench_query.py``.
        """
        counts: Dict[bytes, int] = {}
        for _key, value in branch.scan():
            for group in extractor(value):
                counts[group] = counts.get(group, 0) + 1
        return counts

    def __repr__(self) -> str:
        return (f"MaterializedCountView(groups={len(self._counts)}, "
                f"events_applied={self.events_applied})")
