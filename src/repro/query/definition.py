"""Secondary-index definitions and the posting-key codec.

A secondary index is declared by an :class:`IndexDefinition`: a name plus
an *extractor* mapping a primary value to the list of index keys it
should be findable under (a value may appear under several keys — e.g. a
tag index — or none).  The materialized index is a plain SIRI index tree
("posting tree") living in the same content-addressed store as the
primary tree of its shard: postings therefore version, branch, diff,
merge, garbage-collect and *prove* with exactly the machinery the
primary data already uses.

Each posting is one record in the posting tree.  Its key encodes the
pair ``(index_key, primary_key)`` with :func:`encode_posting_key`, an
order-preserving escape encoding, so that

* all postings of one index key are a contiguous key range — a lookup is
  a pruned range scan, and
* posting keys sort by ``(index_key, primary_key)`` lexicographically —
  a range query over index keys is also one contiguous scan.

Postings are *covering*: the posting's value is a copy of the primary
record's value, so index reads are answered entirely from the posting
tree's contiguous range — cost proportional to the result, with no
per-result point reads back into the primary tree.  Commit-time
maintenance pays for this by refreshing the stored copy whenever a
record's value changes, even when its index keys do not.

The encoding escapes ``0x00`` bytes of the index key as ``0x00 0xFF``
and terminates it with ``0x00 0x00`` before appending the primary key
verbatim.  Because every escaped ``0x00`` is followed by ``0xFF``, the
first ``0x00 0x00`` in a posting key is unambiguously the terminator,
and for any index keys ``a < b`` every posting of ``a`` sorts strictly
before every posting of ``b``.

Extractors must be *pure* (the postings of a commit are a function of
its content only — this is what makes merged branches agree without
special merge logic) and, for the process shard backend, *picklable*:
define them as module-level functions, not lambdas or closures.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, Tuple

from repro.core.errors import InvalidParameterError

#: Separator terminating the escaped index key inside a posting key.
_TERMINATOR = b"\x00\x00"
#: Escape sequence replacing a literal 0x00 byte of the index key.
_ESCAPED_ZERO = b"\x00\xff"

#: An extractor maps a primary value to the index keys it files under.
Extractor = Callable[[bytes], Sequence[bytes]]


def _escape(index_key: bytes) -> bytes:
    return index_key.replace(b"\x00", _ESCAPED_ZERO)


def _unescape(escaped: bytes) -> bytes:
    return escaped.replace(_ESCAPED_ZERO, b"\x00")


def encode_posting_key(index_key: bytes, primary_key: bytes) -> bytes:
    """Encode one posting: order-preserving on ``(index_key, primary_key)``."""
    return _escape(index_key) + _TERMINATOR + primary_key


def decode_posting_key(posting_key: bytes) -> Tuple[bytes, bytes]:
    """Invert :func:`encode_posting_key` into ``(index_key, primary_key)``."""
    # Every 0x00 inside the escaped index key is followed by 0xFF, so the
    # first 0x00 0x00 is unambiguously the terminator (the primary key,
    # which may contain anything, only starts after it).
    position = posting_key.find(_TERMINATOR)
    if position < 0:
        raise InvalidParameterError(f"malformed posting key: {posting_key!r}")
    return _unescape(posting_key[:position]), posting_key[position + 2:]


def posting_prefix(index_key: bytes) -> bytes:
    """The common prefix of every posting filed under ``index_key``."""
    return _escape(index_key) + _TERMINATOR


def posting_range(
    lo: Optional[bytes],
    hi: Optional[bytes],
) -> Tuple[Optional[bytes], Optional[bytes]]:
    """Posting-key bounds covering index keys in ``[lo, hi)``.

    Returns ``(start, stop)`` suitable for a posting-tree range scan:
    ``start`` inclusive, ``stop`` exclusive, ``None`` for an open end.
    """
    start = posting_prefix(lo) if lo is not None else None
    stop = posting_prefix(hi) if hi is not None else None
    return start, stop


def lookup_range(index_key: bytes) -> Tuple[bytes, bytes]:
    """Posting-key bounds covering exactly ``index_key``'s postings.

    The upper bound replaces the ``0x00 0x00`` terminator by
    ``0x00 0x01``: no valid posting key of any other index key can fall
    between them (escaped keys continue with ``0x00 0xFF``).
    """
    escaped = _escape(index_key)
    return escaped + _TERMINATOR, escaped + b"\x00\x01"


class IndexDefinition:
    """A named secondary index: ``name`` plus a value-to-keys extractor.

    Parameters
    ----------
    name:
        Identifier used in queries, commit records and the manifest
        journal.  Non-empty ASCII without whitespace.
    extractor:
        Pure function ``value_bytes -> sequence of index key bytes``.
        Must be picklable (a module-level function) so the process shard
        backend can ship it to its workers; must never raise on any
        value stored in the branch (return ``[]`` to skip a value).
    """

    __slots__ = ("name", "extractor")

    def __init__(self, name: str, extractor: Extractor):
        """Validate and freeze the definition."""
        if not name or not isinstance(name, str):
            raise InvalidParameterError("index name must be a non-empty string")
        if any(ch.isspace() for ch in name) or not name.isascii():
            raise InvalidParameterError(
                f"index name must be ASCII without whitespace: {name!r}")
        if not callable(extractor):
            raise InvalidParameterError("index extractor must be callable")
        self.name = name
        self.extractor = extractor

    def keys_for(self, value: Optional[bytes]) -> List[bytes]:
        """Deduplicated index keys for ``value`` (``[]`` for ``None``)."""
        if value is None:
            return []
        seen = set()
        keys: List[bytes] = []
        for key in self.extractor(value):
            if not isinstance(key, bytes):
                raise InvalidParameterError(
                    f"extractor for index {self.name!r} returned "
                    f"{type(key).__name__}, expected bytes")
            if key not in seen:
                seen.add(key)
                keys.append(key)
        return keys

    def __repr__(self) -> str:
        return f"IndexDefinition({self.name!r})"
