"""The query layer: secondary indexes and incremental change feeds.

Everything above point ``get``/``scan`` access lives here:

* :mod:`repro.query.definition` — :class:`IndexDefinition` and the
  order-preserving posting-key codec.  Imported by the service layer
  (the engines maintain posting trees at commit time), so this module
  must not import :mod:`repro.service` or :mod:`repro.api`.
* :mod:`repro.query.feed` — :class:`Subscription` change feeds with
  exactly-once resumable cursors over the commit DAG.
* :mod:`repro.query.view` — :class:`MaterializedCountView`, the
  incremental-view-maintenance demo built on feeds.

The package ``__init__`` re-exports the user-facing names; it is safe
to import from anywhere because the submodules only depend downward
(core) or duck-type upward (feed/view against the repository surface).
"""

from repro.query.definition import (
    IndexDefinition,
    decode_posting_key,
    encode_posting_key,
)
from repro.query.feed import ChangeEvent, FeedCursor, Subscription, poll_feed
from repro.query.view import MaterializedCountView

__all__ = [
    "IndexDefinition",
    "ChangeEvent",
    "FeedCursor",
    "Subscription",
    "MaterializedCountView",
    "poll_feed",
    "encode_posting_key",
    "decode_posting_key",
]
