"""Change feeds: a branch's commit history as resumable key-level events.

A :class:`Subscription` (obtained from
:meth:`repro.api.repository.Repository.subscribe`) replays a branch's
first-parent commit chain as an ordered stream of :class:`ChangeEvent`
records — one per changed key per commit, computed by the same pruned
structural diff that powers merges, so the cost of producing a commit's
events scales with what the commit changed, not with the dataset.

The stream position is an explicit, serializable :class:`FeedCursor`
``(version, offset)``: the last fully-consumed commit plus the number of
raw diff entries already delivered from the commit after it.  Because
the diff of two immutable root tuples is deterministic and key-ordered,
re-computing a commit's entries after a crash or disconnect yields the
same list in the same order — resuming from a cursor is therefore
**exactly-once**: no event is skipped and none is delivered twice.  The
offset counts *pre-filter* entries, so a resumed subscription may change
its filter without corrupting its position.

Filters narrow the stream to matching keys: a ``bytes``/``str`` prefix
(the form the wire protocol ships — see
:class:`repro.server.client.RemoteSubscription`) or, in-process, any
``key -> bool`` callable.

This module deliberately does not import :mod:`repro.api` or
:mod:`repro.service` at module level (the service imports
:mod:`repro.query.definition`, so the package must stay import-cycle
free); it duck-types against the repository/service surface at runtime.
"""

from __future__ import annotations

from typing import Callable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import InvalidParameterError
from repro.core.interfaces import coerce_key
from repro.core.version import UnknownBranchError

#: A feed filter: a key prefix (bytes/str) or a ``key -> bool`` predicate.
FeedFilter = Union[bytes, str, Callable[[bytes], bool], None]


class ChangeEvent:
    """One key-level change produced by one commit.

    Attributes
    ----------
    version:
        Journal version of the commit that made the change.
    digest:
        That commit's content digest (the replica-independent identity).
    branch:
        Branch the subscription replays.
    key / old / new:
        The changed key, its value before the commit (``None`` when the
        key was absent) and after it (``None`` when the commit removed
        it).
    """

    __slots__ = ("version", "digest", "branch", "key", "old", "new")

    def __init__(self, version: int, digest, branch: str,
                 key: bytes, old: Optional[bytes], new: Optional[bytes]):
        self.version = version
        self.digest = digest
        self.branch = branch
        self.key = key
        self.old = old
        self.new = new

    @property
    def kind(self) -> str:
        """``"added"``, ``"removed"`` or ``"changed"`` (diff semantics)."""
        if self.old is None:
            return "added"
        if self.new is None:
            return "removed"
        return "changed"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ChangeEvent):
            return NotImplemented
        return (self.version == other.version and self.key == other.key
                and self.old == other.old and self.new == other.new
                and self.branch == other.branch)

    def __hash__(self) -> int:
        return hash((self.version, self.branch, self.key, self.old, self.new))

    def __repr__(self) -> str:
        return (f"ChangeEvent(v{self.version}, {self.kind}, "
                f"key={self.key!r})")


class FeedCursor:
    """A resumable position in a branch's change stream.

    ``version`` is the journal version of the last commit whose events
    were fully delivered (``None`` = nothing consumed yet, or the
    ``from_commit`` starting point); ``offset`` counts the raw
    (pre-filter) diff entries already delivered from the *next* commit
    on the chain.  Both are plain integers, so cursors serialize
    trivially (the wire protocol ships them verbatim).
    """

    __slots__ = ("version", "offset")

    def __init__(self, version: Optional[int] = None, offset: int = 0):
        if offset < 0:
            raise InvalidParameterError("cursor offset must be non-negative")
        self.version = version
        self.offset = offset

    def as_tuple(self) -> Tuple[Optional[int], int]:
        """``(version, offset)`` — the serializable form."""
        return (self.version, self.offset)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, FeedCursor):
            return NotImplemented
        return self.as_tuple() == other.as_tuple()

    def __hash__(self) -> int:
        return hash(self.as_tuple())

    def __repr__(self) -> str:
        return f"FeedCursor(version={self.version}, offset={self.offset})"


def compile_filter(filter: FeedFilter) -> Callable[[bytes], bool]:
    """Normalize a feed filter into a ``key -> bool`` predicate.

    ``None`` accepts everything; ``bytes``/``str`` match as a key prefix
    (the only form the wire protocol can ship); callables pass through.
    """
    if filter is None:
        return lambda key: True
    if isinstance(filter, (bytes, str)):
        prefix = coerce_key(filter)
        return lambda key: key.startswith(prefix)
    if callable(filter):
        return filter
    raise InvalidParameterError(
        f"feed filter must be a prefix or a callable, got {type(filter).__name__}")


def branch_chain(service, branch: str) -> List:
    """The branch's first-parent commit chain, oldest first.

    An unborn branch (no journalled commit yet) has an empty chain
    rather than raising — a subscription opened before the first commit
    simply reports itself up to date.
    """
    if not service.has_branch(branch):
        return []
    chain = list(service.log(branch))
    chain.reverse()
    return chain


def commit_entries(service, commit) -> Sequence:
    """The raw diff entries one commit introduced, ordered by key.

    The diff is taken against the commit's first parent (or the empty
    state for a root commit) — merge commits therefore report what they
    changed *relative to the branch being replayed*, matching the
    first-parent chain the subscription walks.  Deterministic: immutable
    roots in, key-sorted entries out — the exactly-once foundation.

    Recent commits usually answer from the service's captured change log
    (the write path's own delta, recorded at commit time), making a
    steady-state poll O(events); anything not captured — old commits,
    bulk loads, commits imported by sync — is recomputed by the pruned
    structural diff, which produces the identical list.
    """
    cached = service.feed_entries(commit.version)
    if cached is not None:
        return cached
    if commit.parents:
        base = service.snapshot(commit.parents[0])
    else:
        empty: Sequence = (None,) * service.num_shards
        base = service.snapshot_roots(empty)
    target = service.snapshot_roots(commit.roots, commit=commit)
    return base.diff(target).entries


def poll_feed(service, branch: str, cursor: FeedCursor,
              limit: Optional[int] = None,
              filter: FeedFilter = None) -> Tuple[List[ChangeEvent], FeedCursor, bool]:
    """Advance a cursor over a branch's change stream.

    The stateless core shared by in-process subscriptions and the wire
    server's POLL_FEED handler: everything it needs travels in the
    arguments, so any holder of a cursor can resume against any replica
    of the same journal.  Returns ``(events, next_cursor, up_to_date)``
    where ``up_to_date`` means the cursor reached the branch head as of
    this call; ``limit`` caps *delivered* (post-filter) events, while
    the cursor advances by raw entries so a filtered subscription still
    makes progress through large uninteresting commits.
    """
    if limit is not None and limit <= 0:
        raise InvalidParameterError("poll limit must be positive")
    predicate = compile_filter(filter)
    chain = branch_chain(service, branch)
    if cursor.version is None:
        position = 0
    else:
        position = None
        for index, commit in enumerate(chain):
            if commit.version == cursor.version:
                position = index + 1
                break
        if position is None:
            raise InvalidParameterError(
                f"cursor version {cursor.version} is not on branch "
                f"{branch!r}'s first-parent chain")
    events: List[ChangeEvent] = []
    last_done = cursor.version
    offset = cursor.offset
    while position < len(chain):
        commit = chain[position]
        entries = commit_entries(service, commit)
        while offset < len(entries):
            if limit is not None and len(events) >= limit:
                return events, FeedCursor(last_done, offset), False
            entry = entries[offset]
            offset += 1
            if predicate(entry.key):
                events.append(ChangeEvent(
                    commit.version, commit.digest, branch,
                    entry.key, entry.left, entry.right))
        last_done = commit.version
        offset = 0
        position += 1
    return events, FeedCursor(last_done, 0), True


class Subscription:
    """An in-process change feed over one branch (see module docstring).

    Obtain via :meth:`repro.api.repository.Repository.subscribe`.  Not
    thread-safe: one consumer per subscription (open several for fan-out
    — they are just cursors, there is no server-side state).
    """

    def __init__(self, repository, branch: str,
                 from_commit: Optional[int] = None,
                 filter: FeedFilter = None):
        """Open a feed on ``branch`` starting after ``from_commit``.

        ``from_commit=None`` replays from the branch's first commit.
        The filter is validated eagerly; the starting commit is checked
        against the branch chain on first :meth:`poll`.
        """
        self.repository = repository
        self.branch = branch
        self.filter = filter
        compile_filter(filter)  # validate now, not at first poll
        service = repository.service
        if not service.has_branch(branch) and branch != service.default_branch:
            raise UnknownBranchError(branch)
        if from_commit is not None:
            version = (from_commit.version
                       if hasattr(from_commit, "version") else int(from_commit))
            self.cursor = FeedCursor(version, 0)
        else:
            self.cursor = FeedCursor(None, 0)
        self.up_to_date = False

    def poll(self, limit: Optional[int] = None) -> List[ChangeEvent]:
        """Deliver the next events and advance the cursor.

        ``limit`` caps delivered events (``None`` = everything up to the
        current head).  After the call, :attr:`up_to_date` tells whether
        the cursor reached the head; new commits re-arm it — poll again
        to stream them.
        """
        events, self.cursor, self.up_to_date = poll_feed(
            self.repository.service, self.branch, self.cursor,
            limit=limit, filter=self.filter)
        return events

    def __iter__(self) -> Iterator[ChangeEvent]:
        """Iterate every event from the cursor to the current head."""
        while True:
            events = self.poll()
            for event in events:
                yield event
            if self.up_to_date:
                return

    def seek(self, cursor: FeedCursor) -> None:
        """Reposition the feed at an explicit cursor (e.g. a persisted one)."""
        if not isinstance(cursor, FeedCursor):
            raise InvalidParameterError(
                f"expected a FeedCursor, got {type(cursor).__name__}")
        self.cursor = cursor
        self.up_to_date = False

    def __repr__(self) -> str:
        return (f"Subscription(branch={self.branch!r}, cursor={self.cursor}, "
                f"up_to_date={self.up_to_date})")
