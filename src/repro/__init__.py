"""repro — reproduction of "Analysis of Indexing Structures for Immutable Data".

This library implements and benchmarks the index structures analysed in
the SIGMOD 2020 paper by Yue et al.:

* :class:`~repro.indexes.mpt.MerklePatriciaTrie` (MPT),
* :class:`~repro.indexes.mbt.MerkleBucketTree` (MBT),
* :class:`~repro.indexes.pos_tree.POSTree` (POS-Tree),
* :class:`~repro.indexes.mvmbt.MVMBTree` (the MVMB+-Tree baseline),

all built on a shared content-addressed, copy-on-write node store, plus
the SIRI framework utilities (deduplication metrics, diff/merge, Merkle
proofs, property checkers), the paper's workload generators (YCSB-like,
Wikipedia-like, Ethereum-like), a mini Forkbase-style versioned storage
engine with a Noms-style Prolly Tree for the system comparison, and a
benchmark harness regenerating every figure and table of the evaluation.

Quickstart::

    from repro import InMemoryNodeStore, POSTree

    store = InMemoryNodeStore()
    tree = POSTree(store)
    v1 = tree.from_items({b"alice": b"100", b"bob": b"250"})
    v2 = v1.put(b"carol", b"75")
    assert v1[b"alice"] == b"100"          # old versions stay readable
    assert v2.root_digest != v1.root_digest
    proof = v2.prove(b"carol")
    assert proof.verify(v2.root_digest)     # tamper-evident lookups
"""

from repro.core.diff import diff_snapshots, merge_snapshots, three_way_merge
from repro.core.errors import (
    CorruptNodeError,
    ImmutableWriteError,
    MergeConflictError,
    NodeNotFoundError,
    ProofVerificationError,
    ReproError,
)
from repro.core.interfaces import IndexSnapshot, SIRIIndex, WriteBatch
from repro.core.metrics import (
    StorageBreakdown,
    deduplication_ratio,
    node_sharing_ratio,
    storage_breakdown,
)
from repro.core.properties import check_siri_properties
from repro.core.proof import MerkleProof
from repro.core.version import Commit, VersionGraph
from repro.service import (
    ServiceCommit,
    ServiceMetrics,
    ServiceSnapshot,
    VersionedKVService,
)
from repro.hashing.digest import Digest
from repro.indexes import (
    ALL_INDEX_CLASSES,
    MVMBTree,
    MerkleBucketTree,
    MerklePatriciaTrie,
    POSTree,
)
from repro.storage import (
    CachingNodeStore,
    FileNodeStore,
    GarbageCollector,
    InMemoryNodeStore,
    MeteredNodeStore,
    RefCountingNodeStore,
    SegmentNodeStore,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "NodeNotFoundError",
    "CorruptNodeError",
    "MergeConflictError",
    "ProofVerificationError",
    "ImmutableWriteError",
    # core
    "SIRIIndex",
    "IndexSnapshot",
    "WriteBatch",
    "MerkleProof",
    "Digest",
    "VersionGraph",
    "Commit",
    "diff_snapshots",
    "merge_snapshots",
    "three_way_merge",
    "deduplication_ratio",
    "node_sharing_ratio",
    "storage_breakdown",
    "StorageBreakdown",
    "check_siri_properties",
    # indexes
    "MerklePatriciaTrie",
    "MerkleBucketTree",
    "POSTree",
    "MVMBTree",
    "ALL_INDEX_CLASSES",
    # storage
    "InMemoryNodeStore",
    "FileNodeStore",
    "SegmentNodeStore",
    "CachingNodeStore",
    "MeteredNodeStore",
    "RefCountingNodeStore",
    "GarbageCollector",
    # service
    "VersionedKVService",
    "ServiceSnapshot",
    "ServiceCommit",
    "ServiceMetrics",
]
