"""repro — reproduction of "Analysis of Indexing Structures for Immutable Data".

This library implements and benchmarks the index structures analysed in
the SIGMOD 2020 paper by Yue et al.:

* :class:`~repro.indexes.mpt.MerklePatriciaTrie` (MPT),
* :class:`~repro.indexes.mbt.MerkleBucketTree` (MBT),
* :class:`~repro.indexes.pos_tree.POSTree` (POS-Tree),
* :class:`~repro.indexes.mvmbt.MVMBTree` (the MVMB+-Tree baseline),

all built on a shared content-addressed, copy-on-write node store, plus
the SIRI framework utilities (deduplication metrics, diff/merge, Merkle
proofs, property checkers), the paper's workload generators (YCSB-like,
Wikipedia-like, Ethereum-like), a mini Forkbase-style versioned storage
engine with a Noms-style Prolly Tree for the system comparison, a
benchmark harness regenerating every figure and table of the evaluation,
and a network front door — :class:`RepositoryServer` plus the pooled
:class:`RemoteRepository` client (``docs/SERVER.md``) — serving the
repository over a length-prefixed binary wire protocol, and a query
layer (:mod:`repro.query`): versioned secondary indexes maintained in
the same commit as the primary data plus resumable exactly-once change
feeds (``docs/QUERY.md``).

The public surface — the repository API
---------------------------------------
Applications program against :class:`Repository`, :class:`Branch` and
:class:`Transaction` (:mod:`repro.api`): named branches over a sharded,
optionally durable store, O(1) forks, lowest-common-ancestor three-way
merges with deterministic conflict detection, and atomically-committed
transactions.  The full tour lives in ``docs/API.md``.

    from repro import Repository

    with Repository.open() as repo:              # or .open("/data/dir")
        main = repo.default_branch
        main.put(b"alice", b"100")
        main.commit("initial balances")
        audit = main.fork("audit")               # copies roots only
        audit.put(b"alice", b"95")
        audit.commit("correction")
        repo.merge("main", "audit")              # three-way merge
        assert main.get(b"alice") == b"95"

The index structures stay directly usable for experiments::

    from repro import InMemoryNodeStore, POSTree

    store = InMemoryNodeStore()
    tree = POSTree(store)
    v1 = tree.from_items({b"alice": b"100", b"bob": b"250"})
    v2 = v1.put(b"carol", b"75")
    assert v1[b"alice"] == b"100"          # old versions stay readable
    assert v2.root_digest != v1.root_digest
    proof = v2.prove(b"carol")
    assert proof.verify(v2.root_digest)     # tamper-evident lookups
"""

import warnings as _warnings

from repro.api import (
    Branch,
    MergeConflict,
    MergeOutcome,
    Repository,
    Transaction,
    merge_branches,
)
from repro.core.diff import diff_snapshots, merge_snapshots, three_way_merge
from repro.core.errors import (
    CorruptNodeError,
    ImmutableWriteError,
    MergeConflictError,
    NodeNotFoundError,
    ProofVerificationError,
    ProtocolError,
    RemoteServerError,
    ReproError,
    ServerBusyError,
    SyncError,
    SyncHeadMovedError,
    SyncIntegrityError,
    TransactionClosedError,
    TransactionConflictError,
)
from repro.core.interfaces import IndexSnapshot, SIRIIndex, WriteBatch
from repro.core.metrics import (
    StorageBreakdown,
    deduplication_ratio,
    node_sharing_ratio,
    storage_breakdown,
)
from repro.core.properties import check_siri_properties
from repro.core.proof import MerkleProof
from repro.core.version import Commit, UnknownBranchError, VersionGraph
from repro.server import RemoteRepository, RepositoryServer
from repro.service import (
    ServiceCommit,
    ServiceMetrics,
    ServiceSnapshot,
)
from repro.hashing.digest import Digest
from repro.query import (
    ChangeEvent,
    FeedCursor,
    IndexDefinition,
    MaterializedCountView,
    Subscription,
)
from repro.indexes import (
    ALL_INDEX_CLASSES,
    MVMBTree,
    MerkleBucketTree,
    MerklePatriciaTrie,
    POSTree,
)
from repro.storage import (
    CachingNodeStore,
    FileNodeStore,
    GarbageCollector,
    InMemoryNodeStore,
    MeteredNodeStore,
    RefCountingNodeStore,
    SegmentNodeStore,
)
from repro.sync import (
    BranchSyncReport,
    LocalSyncSource,
    RemoteSyncSource,
    SyncReport,
    SyncSource,
)

__version__ = "2.0.0"

#: Deprecated top-level names: accessing them still works but warns,
#: pointing at the repository-API replacement.  The implementing modules
#: (``repro.service`` and friends) stay warning-free — the service remains
#: the documented engine *under* the repository.
_DEPRECATED_ALIASES = {
    "VersionedKVService": (
        "repro.service", "VersionedKVService",
        "repro.Repository (Repository.open() wraps the service; "
        "Repository.from_service() adapts an existing instance)"),
}


def __getattr__(name):
    """PEP 562 hook resolving deprecated aliases with a DeprecationWarning."""
    alias = _DEPRECATED_ALIASES.get(name)
    if alias is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    module_name, attribute, replacement = alias
    _warnings.warn(
        f"repro.{name} is deprecated as a top-level entry point; "
        f"use {replacement} instead",
        DeprecationWarning,
        stacklevel=2,
    )
    import importlib

    return getattr(importlib.import_module(module_name), attribute)


__all__ = [
    "__version__",
    # the repository API — the public surface
    "Repository",
    "Branch",
    "Transaction",
    "MergeConflict",
    "MergeOutcome",
    "merge_branches",
    # errors
    "ReproError",
    "NodeNotFoundError",
    "CorruptNodeError",
    "MergeConflictError",
    "ProofVerificationError",
    "ImmutableWriteError",
    "TransactionConflictError",
    "TransactionClosedError",
    "UnknownBranchError",
    "ProtocolError",
    "ServerBusyError",
    "RemoteServerError",
    "SyncError",
    "SyncIntegrityError",
    "SyncHeadMovedError",
    # core
    "SIRIIndex",
    "IndexSnapshot",
    "WriteBatch",
    "MerkleProof",
    "Digest",
    "VersionGraph",
    "Commit",
    "diff_snapshots",
    "merge_snapshots",
    "three_way_merge",
    "deduplication_ratio",
    "node_sharing_ratio",
    "storage_breakdown",
    "StorageBreakdown",
    "check_siri_properties",
    # indexes
    "MerklePatriciaTrie",
    "MerkleBucketTree",
    "POSTree",
    "MVMBTree",
    "ALL_INDEX_CLASSES",
    # storage
    "InMemoryNodeStore",
    "FileNodeStore",
    "SegmentNodeStore",
    "CachingNodeStore",
    "MeteredNodeStore",
    "RefCountingNodeStore",
    "GarbageCollector",
    # service layer (the engine under the repository)
    "ServiceSnapshot",
    "ServiceCommit",
    "ServiceMetrics",
    # query layer (secondary indexes and change feeds)
    "IndexDefinition",
    "Subscription",
    "ChangeEvent",
    "FeedCursor",
    "MaterializedCountView",
    # network front door
    "RepositoryServer",
    "RemoteRepository",
    # replication
    "SyncSource",
    "LocalSyncSource",
    "RemoteSyncSource",
    "SyncReport",
    "BranchSyncReport",
    # deprecated aliases (access warns, see _DEPRECATED_ALIASES)
    "VersionedKVService",
]
