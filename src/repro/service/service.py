"""The sharded versioned key-value service.

:class:`VersionedKVService` is the serving layer the benchmarks and
examples use to drive the index structures the way an online system
would, rather than as bare library classes:

* **Sharding** — keys are hash-partitioned (:mod:`repro.service.sharding`)
  across N independent index instances, each with its own node store and
  its own root-version history.  Shards keep every tree a factor N
  smaller, which shortens root→leaf paths for both lookups and
  copy-on-write rewrites, and they are the unit of both parallelism
  (:mod:`repro.service.process` forks one worker per shard) and
  replication (anti-entropy sync — :mod:`repro.sync` — walks each
  shard's structural frontier independently through the node
  export/import entry points below).
* **Write coalescing** — puts/removes buffer per shard
  (:mod:`repro.service.batcher`) and flush through the index's batched
  :meth:`~repro.core.interfaces.SIRIIndex.write` path, amortizing node
  rewrites exactly as the paper's batched write workloads do.
* **Read-through caching** — each shard's store can be wrapped in a
  :class:`~repro.storage.cache.CachingNodeStore`; hit/miss counters are
  reported as :class:`~repro.core.metrics.CacheCounters`.
* **Versioning and branches** — :meth:`VersionedKVService.commit` captures
  a cross-shard snapshot (one root digest per shard, rolled up into a
  single service-level digest) and :meth:`get` accepts ``version=`` to
  read any committed version.  :meth:`diff` merges the per-shard
  structural diffs (:mod:`repro.core.diff`) into one result.  Every
  commit is *branch-qualified*: it records its branch name and parent
  versions, the journal persists them, and the commit DAG
  (:class:`~repro.core.version.VersionGraph`, exposed as
  :attr:`version_graph`) is rebuilt identically on every open — so
  recovery restores **every** branch head and merge bases survive
  crashes.  The flat entry points operate on the *default branch*; the
  repository API (:mod:`repro.api`) drives other branches through
  :meth:`commit_roots`/:meth:`commit_update`.

* **Durability** — constructed with ``directory=``, the service shards
  over :class:`~repro.storage.segment.SegmentNodeStore` backends and
  keeps a fsynced commit manifest: :meth:`commit` is the durability
  point, :meth:`close`/:meth:`reopen` (or a crash and a fresh
  construction over the same directory) recover exactly the last
  committed cross-shard roots.  A ``retain_versions=N`` policy plus
  :meth:`collect_garbage` reclaims the space of expired versions by
  mark-and-sweep segment compaction (:mod:`repro.storage.gc`); the
  protocol is specified in ``docs/STORAGE.md``.

* **Concurrency** — every public entry point is safe to call from any
  thread.  Each shard is guarded by its own lock (recorded in per-shard
  :class:`~repro.core.metrics.ContentionCounters`), versioned reads
  against committed roots are lock-free, and :meth:`commit` /
  :meth:`snapshot` capture an atomic cross-shard cut by briefly holding
  all shard locks.  :class:`repro.service.executor.ServiceExecutor` adds
  a worker pool that fans multi-key operations out over the shards.  The
  full model is documented in ``docs/ARCHITECTURE.md`` ("The concurrency
  model").  The *lifecycle* methods (:meth:`close`, :meth:`reopen`) are
  the one exception: call them on a quiesced service, not concurrently
  with in-flight operations.

The service works with any index class implementing
:class:`~repro.core.interfaces.SIRIIndex` and any
:class:`~repro.storage.store.NodeStore` backend.
"""

from __future__ import annotations

import heapq
import json
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.diff import DiffEntry, DiffResult
from repro.core.errors import CorruptNodeError, InvalidParameterError, KeyNotFoundError, ServiceClosedError, ShardExecutionError, SyncHeadMovedError
from repro.core.interfaces import IndexSnapshot, KeyLike, SIRIIndex, ValueLike, coerce_key, coerce_value
from repro.core.metrics import CacheCounters, ContentionCounters, GCCounters
from repro.core.version import UnknownBranchError, VersionGraph
from repro.hashing.digest import Digest, default_hash_function
from repro.query.definition import (
    IndexDefinition,
    decode_posting_key,
    lookup_range,
    posting_range,
)
from repro.service.batcher import ShardWriteBatcher
from repro.service.engine import ShardEngine, ShardMetrics, ThreadShardHandle
from repro.service.process import ProcessShardBackend
from repro.service.sharding import ShardRouter
from repro.storage.cache import CachingNodeStore
from repro.storage.memory import InMemoryNodeStore
from repro.storage.segment import SegmentNodeStore, fsync_directory
from repro.storage.store import NodeStore

IndexFactory = Callable[[NodeStore], SIRIIndex]
StoreFactory = Callable[[], NodeStore]

#: Shard backends the service can run on: ``"thread"`` keeps every shard
#: engine in-process behind its shard mutex; ``"process"`` forks one
#: worker per shard (:mod:`repro.service.process`), escaping the GIL.
BACKENDS = ("thread", "process")


@dataclass(frozen=True)
class ServiceCommit:
    """One committed cross-shard version of the service.

    Attributes
    ----------
    version:
        Dense sequence number (0 for the first commit), global across all
        branches.  This is the value :meth:`VersionedKVService.get`
        accepts as ``version=``.
    roots:
        The root digest of every shard at commit time (``None`` = empty
        shard), in shard-id order.
    digest:
        Service-level digest over the shard roots — a single value that
        identifies the entire cross-shard state, tamper-evident in the
        same way as each shard's own Merkle root.
    branch:
        Name of the branch this commit advanced.  Flat-API commits land on
        the service's default branch; the repository layer
        (:mod:`repro.api`) commits on arbitrary branches.
    parents:
        Versions of the parent commits (empty for a branch's first commit,
        two for a merge commit).  Together with ``branch`` this is enough
        to rebuild the commit DAG — and therefore merge bases — from the
        journal alone.
    index_roots:
        Per-secondary-index posting-tree roots at commit time, as a
        name-sorted tuple of ``(index_name, per-shard root tuple)`` pairs
        (a tuple, not a dict, so the dataclass stays hashable).  Empty
        when no secondary index is registered — and then absent from the
        journal line and the commit digest, keeping pre-index journals
        and digests byte-identical.
    """

    version: int
    roots: Tuple[Optional[Digest], ...]
    digest: Digest
    message: str = ""
    timestamp: float = 0.0
    branch: str = "main"
    parents: Tuple[int, ...] = ()
    index_roots: Tuple[Tuple[str, Tuple[Optional[Digest], ...]], ...] = ()

    def short_id(self) -> str:
        """Truncated hex of the service-level digest (for logs)."""
        return self.digest.short()

    def is_merge(self) -> bool:
        """Whether this commit joined two branch histories."""
        return len(self.parents) > 1

    def index_root_map(self) -> Dict[str, Tuple[Optional[Digest], ...]]:
        """The commit's posting roots as ``{index name: per-shard roots}``."""
        return dict(self.index_roots)

    def shard_postings(self, shard_id: int) -> Dict[str, Optional[Digest]]:
        """Posting roots of every index on one shard (``{name: root}``)."""
        return {name: roots[shard_id] for name, roots in self.index_roots}


@dataclass
class ServiceMetrics:
    """Aggregated service counters returned by :meth:`VersionedKVService.metrics`."""

    shards: List[ShardMetrics] = field(default_factory=list)
    gets: int = 0
    puts: int = 0
    removes: int = 0
    buffered_ops: int = 0
    coalesced_ops: int = 0
    flushes: int = 0
    commits: int = 0
    #: Garbage-collection/compaction counters merged across shard stores.
    gc: GCCounters = field(default_factory=GCCounters)

    @property
    def nodes_written(self) -> int:
        """Node (page) writes summed over all shards."""
        return sum(s.nodes_written for s in self.shards)

    @property
    def nodes_read(self) -> int:
        """Node (page) reads summed over all shards."""
        return sum(s.nodes_read for s in self.shards)

    @property
    def cache(self) -> CacheCounters:
        """Cache hit/miss counters merged across shards."""
        merged = CacheCounters()
        for shard in self.shards:
            merged = merged.merge(shard.cache)
        return merged

    @property
    def coalescing_ratio(self) -> float:
        """Fraction of buffered write operations absorbed by coalescing."""
        writes = self.puts + self.removes
        return self.coalesced_ops / writes if writes else 0.0

    @property
    def contention(self) -> ContentionCounters:
        """Shard-lock contention counters merged across shards."""
        merged = ContentionCounters()
        for shard in self.shards:
            merged = merged.merge(shard.contention)
        return merged


class ServiceSnapshot:
    """An immutable cross-shard view: one per-shard snapshot view each.

    Obtained from :meth:`VersionedKVService.snapshot`.  Reads route by the
    same hash partitioning the service uses; iteration merge-joins the
    shards' ordered record streams so keys come out globally sorted.  The
    per-shard views are :class:`~repro.core.interfaces.IndexSnapshot`
    instances on the thread backend and
    :class:`~repro.service.process.RemoteShardView` command proxies on the
    process backend — both speak the same read protocol, so everything
    above this class is backend-agnostic.
    """

    __slots__ = ("shards", "router", "commit")

    def __init__(self, shards: Sequence[IndexSnapshot], commit: Optional[ServiceCommit] = None):
        self.shards = list(shards)
        self.router = ShardRouter(len(self.shards))
        self.commit = commit

    @property
    def roots(self) -> Tuple[Optional[Digest], ...]:
        """Per-shard root digests of this view."""
        return tuple(snap.root_digest for snap in self.shards)

    def get(self, key: KeyLike, default: Optional[bytes] = None) -> Optional[bytes]:
        """Return the value for ``key`` or ``default`` when absent."""
        key_bytes = coerce_key(key)
        return self.shards[self.router.shard_of(key_bytes)].get(key_bytes, default)

    def __getitem__(self, key: KeyLike) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs of all shards in ascending key order."""
        return heapq.merge(*(snap.items() for snap in self.shards))

    def items_range(self, start: Optional[bytes] = None,
                    stop: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate pairs with ``start <= key < stop``, keys ascending.

        ``start`` inclusive, ``stop`` exclusive, ``None`` = open end —
        the :meth:`~repro.core.interfaces.SIRIIndex.iterate_range`
        contract.  Each shard prunes its own tree to the bounds, so the
        cost scales with the range size, not the dataset.
        """
        return heapq.merge(*(snap.items_range(start, stop) for snap in self.shards))

    def keys(self) -> Iterator[bytes]:
        """Iterate all keys across shards in ascending order."""
        for key, _ in self.items():
            yield key

    def to_dict(self) -> Dict[bytes, bytes]:
        """Materialize the full cross-shard content as a dictionary."""
        return dict(self.items())

    def __len__(self) -> int:
        return sum(len(snap) for snap in self.shards)

    def diff(self, other: "ServiceSnapshot") -> DiffResult:
        """Structural diff against another view of the same service."""
        return diff_service_snapshots(self, other)

    def __repr__(self) -> str:
        version = self.commit.version if self.commit is not None else "head"
        return f"ServiceSnapshot(shards={len(self.shards)}, version={version})"


def diff_service_snapshots(left: ServiceSnapshot, right: ServiceSnapshot) -> DiffResult:
    """Merge the per-shard structural diffs of two cross-shard views.

    Because routing is deterministic, a key lives on the same shard in
    both views, so the service-level diff is exactly the union of the
    per-shard diffs — each of which prunes shared subtrees by digest
    (:func:`repro.core.diff.diff_snapshots`).  Entries are re-sorted so
    the merged result is ordered by key like a single-index diff.
    """
    if len(left.shards) != len(right.shards):
        raise InvalidParameterError(
            "cannot diff snapshots with different shard counts "
            f"({len(left.shards)} vs {len(right.shards)})"
        )
    merged = DiffResult()
    for left_snap, right_snap in zip(left.shards, right.shards):
        partial = left_snap.diff(right_snap)
        merged.entries.extend(partial.entries)
        merged.comparisons += partial.comparisons
    merged.entries.sort(key=lambda entry: entry.key)
    return merged


class VersionedKVService:
    """A sharded, write-batched, multi-version key-value service.

    Parameters
    ----------
    index_factory:
        Callable building one index per shard from a node store (an index
        *class* such as :class:`~repro.indexes.pos_tree.POSTree` works
        directly; use ``functools.partial`` to pin tuning parameters).
    num_shards:
        Number of hash partitions.  Each shard gets its own store, its own
        index instance and its own root-version history.
    store_factory:
        Callable building one backing store per shard (default
        :class:`~repro.storage.memory.InMemoryNodeStore`).
    cache_bytes:
        Capacity of the per-shard read-through LRU node cache; ``0``
        disables caching and reads hit the backing store directly.
    batch_size:
        Write-coalescing flush threshold: a shard's pending puts/removes
        are flushed through the batched write path once this many distinct
        operations are buffered.  ``1`` degenerates to unbatched
        single-operation writes (useful as a baseline).
    directory:
        Root directory for a *durable* service: each shard stores its
        nodes in an append-only :class:`SegmentNodeStore` under
        ``directory/shard-NN`` and commits are journalled to a fsynced
        ``MANIFEST.jsonl``.  Mutually exclusive with ``store_factory``.
        Construction (or :meth:`reopen`) recovers the last committed
        state — this is the crash-recovery path.
    retain_versions:
        Version retention policy: only the newest N commits (plus the
        current head) are guaranteed to survive :meth:`collect_garbage`;
        older commits stay listed and readable until a GC run reclaims
        their exclusive nodes.  ``None`` (default) retains everything.
    segment_capacity_bytes:
        Soft segment-file size for directory-backed shards.
    default_branch:
        Name of the branch the flat entry points (:meth:`put`,
        :meth:`commit`, ...) operate on, and the branch old journals
        (written before commits were branch-qualified) are attributed to.
    backend:
        Shard placement: ``"thread"`` (default) runs every shard engine
        in-process behind its shard mutex; ``"process"`` forks one worker
        process per shard (:mod:`repro.service.process`), each owning its
        shard's store, with commands travelling over per-shard pipes and
        cross-shard commits coordinated two-phase by this parent.  The
        entire public API behaves identically on both backends — the
        differential suite (``tests/service/test_backend_equivalence.py``)
        proves byte-identical roots and commit digests.

    Example
    -------
    >>> from repro.indexes import POSTree
    >>> from repro.service import VersionedKVService
    >>> service = VersionedKVService(POSTree, num_shards=4)
    >>> service.put(b"alice", b"100")
    >>> v0 = service.commit("initial balances").version
    >>> service.put(b"alice", b"175")
    >>> service.commit("pay alice")           # doctest: +ELLIPSIS
    ServiceCommit(...)
    >>> service.get(b"alice")
    b'175'
    >>> service.get(b"alice", version=v0)
    b'100'
    """

    MANIFEST_NAME = "MANIFEST.jsonl"

    #: Change-log retention: entries are kept for this many recent commits.
    FEED_LOG_COMMITS = 128
    #: Commits whose delta exceeds this many entries (bulk loads) are not
    #: captured — feeds fall back to the structural diff for them.
    FEED_LOG_MAX_ENTRIES = 10_000

    def __init__(
        self,
        index_factory: IndexFactory,
        *,
        num_shards: int = 4,
        store_factory: Optional[StoreFactory] = None,
        cache_bytes: int = 16 * 1024 * 1024,
        batch_size: int = 1024,
        directory: Optional[str] = None,
        retain_versions: Optional[int] = None,
        segment_capacity_bytes: int = 4 * 1024 * 1024,
        default_branch: str = "main",
        backend: str = "thread",
    ):
        if num_shards <= 0:
            raise InvalidParameterError("num_shards must be positive")
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}")
        if batch_size <= 0:
            raise InvalidParameterError("batch_size must be positive")
        if cache_bytes < 0:
            raise InvalidParameterError("cache_bytes must be non-negative")
        if retain_versions is not None and retain_versions <= 0:
            raise InvalidParameterError("retain_versions must be positive (or None)")
        if directory is not None and store_factory is not None:
            raise InvalidParameterError(
                "pass either directory= (durable segment shards) or "
                "store_factory=, not both")
        if not default_branch:
            raise InvalidParameterError("default_branch must be a non-empty name")
        self.default_branch = default_branch
        self.backend = backend
        self.router = ShardRouter(num_shards)
        self.batcher = ShardWriteBatcher(num_shards, flush_threshold=batch_size)
        self.directory = directory
        self.retain_versions = retain_versions
        self._index_factory = index_factory
        self._store_factory = store_factory
        self._cache_bytes = cache_bytes
        self._segment_capacity_bytes = segment_capacity_bytes
        self._hash = default_hash_function()
        self._commits: List[ServiceCommit] = []
        #: Latest commit per branch (every branch head, not just the default).
        self._branch_heads: Dict[str, ServiceCommit] = {}
        #: The shared commit DAG (rebuilt from the journal on every open).
        self.version_graph = VersionGraph()
        #: Maps between journal versions and graph commit ids.
        self._graph_ids: Dict[int, Digest] = {}
        self._graph_versions: Dict[Digest, int] = {}
        self._shards: List = []
        self._index_name = "?"
        #: Backing stores parked by close() for an in-memory reopen()
        #: (thread backend: the store objects survive in-process).
        self._parked_backings: Optional[List[NodeStore]] = None
        #: Exported node pairs parked by close() for an in-memory
        #: reopen() (process backend: the stores die with their workers,
        #: so their *content* is pulled across the pipe and re-seeded).
        self._parked_nodes: Optional[List[Optional[List[Tuple[Digest, bytes]]]]] = None
        self._process_backend: Optional[ProcessShardBackend] = None
        self._opened = False
        # Serializes commit-record creation and the cross-shard root cut.
        self._commit_lock = threading.Lock()
        # Operation counters (service-level; shard-level live on the indexes).
        # Guarded by _counter_lock: bare += on attributes is a racy
        # read-modify-write under concurrent clients.
        self._counter_lock = threading.Lock()
        self._gets = 0
        self._puts = 0
        self._removes = 0
        #: Cumulative GC counters across collect_garbage() runs.
        self._gc_total = GCCounters()
        #: Root tuples pinned against GC (open transactions' base views).
        self._pinned_roots: Dict[int, Tuple[Optional[Digest], ...]] = {}
        self._pin_counter = 0
        self._pin_lock = threading.Lock()
        #: Store-less index instance used only to parse child digests out
        #: of node bytes during sync (built lazily by child_digests()).
        self._parser_index: Optional[SIRIIndex] = None
        #: Registered secondary indexes (definitions are code, so a fresh
        #: process must re-register them after constructing the service;
        #: commits made while an index is registered journal its posting
        #: roots and stay queryable either way).
        self._index_definitions: Dict[str, IndexDefinition] = {}
        #: Per-commit change log: version -> key-sorted DiffEntry tuple,
        #: captured for free from the indexed write path (the engine
        #: computes the delta for posting maintenance anyway).  A bounded
        #: cache, not a source of truth: feeds consult it first and fall
        #: back to the structural diff for evicted, bulk or foreign
        #: commits — both produce the identical entry list.
        self._feed_log: "OrderedDict[int, Tuple[DiffEntry, ...]]" = OrderedDict()
        self.open()

    # -- lifecycle ---------------------------------------------------------

    def _make_backing(self, shard_id: int) -> NodeStore:
        if self._parked_backings is not None:
            return self._parked_backings[shard_id]
        if self._store_factory is not None:
            return self._store_factory()
        if self.directory is not None:
            return SegmentNodeStore(
                os.path.join(self.directory, f"shard-{shard_id:02d}"),
                segment_capacity_bytes=self._segment_capacity_bytes,
            )
        return InMemoryNodeStore()

    def _engine_builder(self, shard_id: int) -> Callable[[], ShardEngine]:
        """A zero-argument builder of one shard's engine, for a worker.

        The closure captures plain configuration (and, on an in-memory
        reopen, the shard's parked node pairs) and is executed **inside
        the forked worker**, so the shard's store is created, owned and
        closed entirely by the process that serves it — the parent never
        holds a shard store file descriptor in process mode.
        """
        index_factory = self._index_factory
        store_factory = self._store_factory
        directory = self.directory
        cache_bytes = self._cache_bytes
        capacity = self._segment_capacity_bytes
        seed = (self._parked_nodes[shard_id]
                if self._parked_nodes is not None else None)

        def build() -> ShardEngine:
            """Construct the shard's store stack and engine (runs in the worker)."""
            if directory is not None:
                backing: NodeStore = SegmentNodeStore(
                    os.path.join(directory, f"shard-{shard_id:02d}"),
                    segment_capacity_bytes=capacity)
            elif store_factory is not None:
                backing = store_factory()
            else:
                backing = InMemoryNodeStore()
                if seed:
                    for digest, data in seed:
                        backing.put_bytes(digest, data)
            cache: Optional[CachingNodeStore] = None
            store: NodeStore = backing
            if cache_bytes:
                cache = CachingNodeStore(backing, capacity_bytes=cache_bytes)
                store = cache
            return ShardEngine(shard_id, backing, store, cache,
                               index_factory(store))

        return build

    def open(self) -> None:
        """Build the shards and recover the last committed state.

        Called automatically by the constructor; a no-op on an already
        open service.  Directory-backed services rescan their segment
        files (torn tails are truncated — see
        :class:`~repro.storage.segment.RecoveryReport` per shard) and
        reload the commit manifest; every shard head is reset to the
        newest commit's roots.  Without a directory, commits recorded in
        this process are replayed from memory.

        On the process backend this (re)forks one worker per shard — a
        service whose worker died mid-operation is restarted and
        recovered by exactly this path.
        """
        if self._opened:
            return
        if self.backend == "process":
            self._process_backend = ProcessShardBackend()
            self._shards = self._process_backend.start(
                [self._engine_builder(shard_id)
                 for shard_id in range(self.router.num_shards)])
            self._parked_nodes = None
        else:
            shards: List[ThreadShardHandle] = []
            for shard_id in range(self.router.num_shards):
                backing = self._make_backing(shard_id)
                cache: Optional[CachingNodeStore] = None
                store: NodeStore = backing
                if self._cache_bytes:
                    cache = CachingNodeStore(backing, capacity_bytes=self._cache_bytes)
                    store = cache
                index = self._index_factory(store)
                shards.append(ThreadShardHandle(
                    ShardEngine(shard_id, backing, store, cache, index)))
            self._shards = shards
            self._parked_backings = None
        self._index_name = self._shards[0].describe() if self._shards else "?"
        if self.directory is not None:
            self._commits = self._load_manifest()
        # Rebuild the commit DAG and every branch's head from the journal.
        # Commit ids are deterministic (journalled timestamps/parents), so
        # merge bases computed before a crash are recomputed identically
        # after recovery.
        self.version_graph = VersionGraph()
        self._graph_ids = {}
        self._graph_versions = {}
        self._branch_heads = {}
        for commit in self._commits:
            self._register_commit(commit)
        # Re-install registered index definitions into the (fresh) shard
        # engines *before* the head reset, so reset_head can adopt the
        # head commit's journalled posting roots (or rebuild missing ones).
        for definition in self._index_definitions.values():
            for shard in self._shards:
                with shard:
                    shard.register_index(definition)
        head = self._branch_heads.get(self.default_branch)
        if head is not None:
            for shard, root in zip(self._shards, head.roots):
                shard.reset_head(root, head.shard_postings(shard.shard_id))
        self._opened = True

    def close(self) -> None:
        """Commit outstanding changes durably and shut the shards down.

        A clean close is lossless: if any write happened since the last
        commit (buffered, or flushed to a head that was never committed),
        an implicit ``commit("close()")`` records it first.  Afterwards
        every backing store is closed and all service entry points raise
        :class:`~repro.core.errors.ServiceClosedError` until
        :meth:`open`/:meth:`reopen`.  A *crash* (no close) instead loses
        exactly the uncommitted tail — reopen recovers the last commit.

        Unlike the data-path entry points, the lifecycle methods are
        **not** designed to race in-flight operations: quiesce your
        clients before calling :meth:`close`/:meth:`reopen`.  A ``put``
        that overlaps a close may land after the final commit (and be
        dropped by the next open) or hit the already-closed store; the
        "lossless" guarantee covers operations that returned before
        close() was called on a quiet service.

        If a process-backend shard worker has died, the final implicit
        commit is impossible — close() then skips it (crash semantics:
        the uncommitted tail is lost) and still tears every worker down,
        so ``reopen()`` recovers exactly the last journalled commit.
        """
        if not self._opened:
            return
        try:
            with self._commit_lock:
                heads, index_roots = self._atomic_cut(collect_postings=True)
                roots = tuple(head.root_digest for head in heads)
                committed = self._branch_heads.get(self.default_branch)
                if committed is not None:
                    dirty = roots != committed.roots
                else:
                    dirty = any(root is not None for root in roots)
                if dirty:
                    self._record_commit(roots, "close()", index_roots=index_roots)
        except ShardExecutionError:
            # A dead shard worker cannot contribute to the final cut;
            # never journal a partial one — fall through to teardown and
            # let the next open() recover the last committed roots.
            pass
        park = self.directory is None and self._store_factory is None
        if self.backend == "process":
            # The stores die with their workers; park their *content* so
            # an in-memory reopen() can re-seed the committed state.
            parked_nodes: Optional[List] = [] if park else None
            for shard in self._shards:
                if park:
                    try:
                        parked_nodes.append(shard.export_nodes())
                    except ShardExecutionError:
                        parked_nodes.append(None)  # dead worker: content lost
                shard.close()
            self._parked_nodes = parked_nodes
            self._process_backend = None
        else:
            for shard in self._shards:
                shard.close()
            if park:
                # Default in-memory backings survive close() so that
                # reopen() can restore the committed state without a
                # persistent medium.
                self._parked_backings = [shard.backing for shard in self._shards]
        self._opened = False

    def reopen(self) -> None:
        """Cleanly close (if open) and open again — the restart drill.

        Because :meth:`close` commits outstanding changes, a reopen is
        lossless.  Directory-backed services rebuild everything from disk,
        exactly like a fresh process constructing over the same directory;
        to exercise the *crash* path instead, abandon the instance without
        closing and construct a new one (that is what the kill-point tests
        do).  With the default in-memory backings the same store objects
        are reused and the head is restored from the last in-memory
        commit.  With a custom ``store_factory`` the factory is invoked
        anew — only meaningful when it returns stores over a persistent
        medium.
        """
        self.close()
        self.open()

    def __enter__(self) -> "VersionedKVService":
        """Context-manager entry: (re)opens the service if needed."""
        self.open()
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: always :meth:`close`, even on error paths."""
        self.close()

    @property
    def is_open(self) -> bool:
        """Whether the service is accepting operations."""
        return self._opened

    def _require_open(self) -> None:
        if not self._opened:
            raise ServiceClosedError(
                "service is closed; call reopen() (or construct a new "
                "instance over the same directory) first")

    # -- the commit manifest ----------------------------------------------

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, self.MANIFEST_NAME)

    def _parse_manifest_line(self, line: bytes, lineno: int, path: str,
                             expected_version: int,
                             branch_tips: Dict[str, int]) -> ServiceCommit:
        """Decode and validate one manifest line (raises CorruptNodeError).

        ``branch_tips`` maps branch name → version of that branch's newest
        commit seen so far in the replay; journals written before commits
        were branch-qualified carry neither ``branch`` nor ``parents``, so
        the branch defaults to the service's default branch and the parent
        to that branch's previous commit — exactly the linear history the
        old format implied.
        """
        try:
            entry = json.loads(line.decode("utf-8"))
            roots = tuple(
                Digest.from_hex(root) if root is not None else None
                for root in entry["roots"]
            )
            branch = entry.get("branch", self.default_branch)
            if not isinstance(branch, str) or not branch:
                raise ValueError(f"invalid branch name: {branch!r}")
            if "parents" in entry:
                parents = tuple(int(parent) for parent in entry["parents"])
            elif branch in branch_tips:
                parents = (branch_tips[branch],)
            else:
                parents = ()
            index_roots = tuple(
                (name, tuple(
                    Digest.from_hex(root) if root is not None else None
                    for root in posting_roots))
                for name, posting_roots in sorted(
                    (entry.get("indexes") or {}).items()))
            commit = ServiceCommit(
                version=int(entry["version"]),
                roots=roots,
                digest=Digest.from_hex(entry["digest"]),
                message=entry.get("message", ""),
                timestamp=float(entry.get("timestamp", 0.0)),
                branch=branch,
                parents=parents,
                index_roots=index_roots,
            )
        except (ValueError, KeyError, TypeError, AttributeError) as exc:
            raise CorruptNodeError(
                None, f"corrupt manifest entry at {path}:{lineno}: {exc}"
            ) from None
        if commit.version != expected_version:
            raise CorruptNodeError(
                None,
                f"manifest {path}:{lineno} has version {commit.version}, "
                f"expected {expected_version} (journal must be dense)")
        if len(commit.roots) != self.router.num_shards:
            raise CorruptNodeError(
                None,
                f"manifest {path}:{lineno} records {len(commit.roots)} "
                f"shard roots but the service has {self.router.num_shards}")
        for name, posting_roots in commit.index_roots:
            if len(posting_roots) != self.router.num_shards:
                raise CorruptNodeError(
                    None,
                    f"manifest {path}:{lineno} records {len(posting_roots)} "
                    f"posting roots for index {name!r} but the service has "
                    f"{self.router.num_shards} shards")
        if any(parent >= commit.version or parent < 0 for parent in commit.parents):
            raise CorruptNodeError(
                None,
                f"manifest {path}:{lineno} references parent versions "
                f"{commit.parents} outside the preceding journal")
        return commit

    def _load_manifest(self) -> List[ServiceCommit]:
        """Replay the commit journal, repairing a torn final line.

        A crash mid-append leaves a partial (or otherwise unparseable)
        final line; it is dropped **and physically truncated** — leaving
        it on disk would make the next append (mode ``"a"``) concatenate
        a new commit onto the garbage, losing that commit on the
        following open.  An unparseable line anywhere *before* the tail
        is corruption of committed history and raises.
        """
        os.makedirs(self.directory, exist_ok=True)
        path = self._manifest_path()
        if not os.path.exists(path):
            return []
        with open(path, "rb") as handle:
            raw = handle.read()
        commits: List[ServiceCommit] = []
        branch_tips: Dict[str, int] = {}
        offset = 0
        good_end = 0
        lineno = 0
        torn = False
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            if newline == -1:
                torn = True  # unterminated tail: crash mid-append
                break
            line = raw[offset:newline]
            lineno += 1
            if line.strip():
                try:
                    commit = self._parse_manifest_line(
                        line, lineno, path, expected_version=len(commits),
                        branch_tips=branch_tips)
                    commits.append(commit)
                    branch_tips[commit.branch] = commit.version
                except CorruptNodeError:
                    if newline == len(raw) - 1:
                        torn = True  # garbage *final* line: treat as torn
                        break
                    raise
            offset = newline + 1
            good_end = offset
        if torn and good_end < len(raw):
            with open(path, "r+b") as handle:
                handle.truncate(good_end)
                handle.flush()
                os.fsync(handle.fileno())
        return commits

    def _append_manifest(self, commit: ServiceCommit) -> None:
        entry = {
            "version": commit.version,
            "roots": [root.hex if root is not None else None for root in commit.roots],
            "digest": commit.digest.hex,
            "message": commit.message,
            "timestamp": commit.timestamp,
            "branch": commit.branch,
            "parents": list(commit.parents),
        }
        if commit.index_roots:
            # Written only when secondary indexes are registered, so
            # journals of index-free services stay byte-identical to the
            # previous format (and old readers would simply ignore it).
            entry["indexes"] = {
                name: [root.hex if root is not None else None for root in roots]
                for name, roots in commit.index_roots
            }
        path = self._manifest_path()
        creating = not os.path.exists(path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(entry) + "\n")
            handle.flush()
            os.fsync(handle.fileno())
        if creating:
            # The journal's *directory entry* must be durable too, or the
            # first commit of a fresh service can vanish on power loss.
            fsync_directory(self.directory)

    # -- basic properties --------------------------------------------------

    @property
    def num_shards(self) -> int:
        """Number of hash partitions."""
        return self.router.num_shards

    @property
    def batch_size(self) -> int:
        """Write-coalescing flush threshold."""
        return self.batcher.flush_threshold

    @property
    def commits(self) -> List[ServiceCommit]:
        """All committed versions, oldest first."""
        return list(self._commits)

    def shard_of(self, key: KeyLike) -> int:
        """The shard id owning ``key`` (stable hash routing)."""
        return self.router.shard_of(coerce_key(key))

    # -- writes ------------------------------------------------------------

    def put(self, key: KeyLike, value: ValueLike) -> None:
        """Buffer a write of ``key = value`` (flushes when the batch fills)."""
        self._require_open()
        key_bytes = coerce_key(key)
        shard_id = self.router.shard_of(key_bytes)
        with self._counter_lock:
            self._puts += 1
        if self.batcher.buffer_put(shard_id, key_bytes, coerce_value(value)):
            self._flush_shard(shard_id)

    def remove(self, key: KeyLike) -> None:
        """Buffer a removal of ``key`` (absent keys are ignored at flush)."""
        self._require_open()
        key_bytes = coerce_key(key)
        shard_id = self.router.shard_of(key_bytes)
        with self._counter_lock:
            self._removes += 1
        if self.batcher.buffer_remove(shard_id, key_bytes):
            self._flush_shard(shard_id)

    def put_many(self, items: Union[Dict[KeyLike, ValueLike], Sequence[Tuple[KeyLike, ValueLike]]]) -> None:
        """Buffer many writes at once (same coalescing/flush behaviour).

        Unlike a loop of :meth:`put` (the seed implementation), the batch
        is routed per shard up front: the operation counter is bumped
        once, each destination shard's buffer lock is taken once, and
        each shard is flushed at most once per call (when its buffer
        crossed the threshold), instead of re-routing and re-locking per
        key.  Within a shard the input order is preserved, so duplicate
        keys coalesce last-writer-wins exactly as sequential puts would.
        """
        self._require_open()
        pairs = items.items() if isinstance(items, Mapping) else items
        per_shard: List[List[Tuple[bytes, bytes]]] = [[] for _ in range(self.num_shards)]
        total = 0
        shard_of = self.router.shard_of
        for key, value in pairs:
            key_bytes = coerce_key(key)
            per_shard[shard_of(key_bytes)].append((key_bytes, coerce_value(value)))
            total += 1
        if not total:
            return
        with self._counter_lock:
            self._puts += total
        for shard_id, bucket in enumerate(per_shard):
            if bucket and self.batcher.buffer_put_many(shard_id, bucket):
                self._flush_shard(shard_id)

    def load(self, items: Union[Dict[KeyLike, ValueLike], Sequence[Tuple[KeyLike, ValueLike]]]) -> int:
        """Bulk-ingest ``items`` straight through the shard write paths.

        The batch is grouped per shard once and each shard is loaded
        under **one** lock round-trip: pending buffered operations are
        drained into the batch (the loaded items are newer and win), and
        the merged records are applied as a single batched write — which,
        on an empty shard, is the index's O(N) bottom-up bulk builder.
        The loaded state lands in the shards' working heads exactly like
        flushed puts; call :meth:`commit` (or use
        :meth:`repro.api.Branch.load`) to version it.  Returns the number
        of records routed.

        :meth:`repro.service.executor.ServiceExecutor.load` drives the
        same per-shard loads concurrently, one pool task per shard.
        """
        self._require_open()
        per_shard, total = self._partition_load(items)
        for shard_id, puts in enumerate(per_shard):
            if puts:
                self._load_shard(shard_id, puts)
        return total

    def _partition_load(self, items: Union[Dict[KeyLike, ValueLike], Sequence[Tuple[KeyLike, ValueLike]]]) -> Tuple[List[Dict[bytes, bytes]], int]:
        """Coerce and group a load batch per shard; bump counters once.

        The returned total counts *routed records* — duplicate keys in the
        input coalesce last-writer-wins before routing.
        """
        pairs = items.items() if isinstance(items, Mapping) else items
        per_shard: List[Dict[bytes, bytes]] = [{} for _ in range(self.num_shards)]
        shard_of = self.router.shard_of
        for key, value in pairs:
            key_bytes = coerce_key(key)
            per_shard[shard_of(key_bytes)][key_bytes] = coerce_value(value)
        total = sum(len(bucket) for bucket in per_shard)
        if total:
            with self._counter_lock:
                self._puts += total
        return per_shard, total

    def _load_shard(self, shard_id: int, puts: Dict[bytes, bytes]) -> None:
        """Apply one shard's load batch under a single lock acquisition.

        Anything already buffered for the shard is folded into the batch
        (loaded items win over older buffered puts; buffered removes of
        keys the load rewrites are dropped), so the shard is written once
        and read-your-writes ordering is preserved.
        """
        shard = self._shards[shard_id]
        with shard:
            pending_puts, pending_removes = self.batcher.take(shard_id)
            if pending_puts:
                pending_puts.update(puts)
                puts = pending_puts
            removes = [key for key in pending_removes if key not in puts]
            shard.load_batch(puts, removes)

    def _flush_shard_locked(self, shard) -> None:
        """Apply pending operations to ``shard``; its lock must be held.

        The engine's batch application includes the durability barrier:
        the batch is pushed through the backing store's batched append
        path (SegmentNodeStore writes the DATA records plus a COMMIT
        marker and fsyncs; FileNodeStore fsyncs).
        """
        puts, removes = self.batcher.take(shard.shard_id)
        if not puts and not removes:
            return
        shard.apply_ops(puts, removes)

    def _flush_shard(self, shard_id: int) -> None:
        """Apply a shard's pending operations through the batched write path.

        Safe to call from any thread, including concurrently with enqueues
        on the same shard: the batcher drains its buffer atomically, and
        the head/history transition happens under the shard's lock.
        """
        shard = self._shards[shard_id]
        with shard:
            self._flush_shard_locked(shard)

    def flush(self) -> None:
        """Flush every shard's pending operations to its index."""
        self._require_open()
        for shard_id in range(self.num_shards):
            self._flush_shard(shard_id)

    # -- reads -------------------------------------------------------------

    def get(self, key: KeyLike, default: Optional[bytes] = None,
            version: Optional[Union[int, ServiceCommit]] = None) -> Optional[bytes]:
        """Read ``key`` from the latest state or from a committed version.

        With ``version=None`` the read is *read-your-writes*: pending
        buffered operations are visible before they are flushed.  With a
        version number (or :class:`ServiceCommit`), the read resolves
        against that commit's shard roots — any committed version stays
        readable forever thanks to copy-on-write.

        Concurrency: a latest-state read takes its shard's lock for the
        duration of the buffer check and tree lookup, so it can never
        observe the window inside a concurrent flush where operations have
        left the buffer but not yet reached the shard head.  Versioned
        reads resolve against immutable commit roots and take no lock at
        all.
        """
        self._require_open()
        key_bytes = coerce_key(key)
        shard_id = self.router.shard_of(key_bytes)
        with self._counter_lock:
            self._gets += 1
        shard = self._shards[shard_id]
        if version is None:
            with shard:
                pending, value = self.batcher.pending_value(shard_id, key_bytes)
                if not pending:
                    value = shard.lookup_head(key_bytes)
            return value if value is not None else default
        commit = self._resolve_commit(version)
        value = shard.lookup_at(commit.roots[shard_id], key_bytes)
        return value if value is not None else default

    def __getitem__(self, key: KeyLike) -> bytes:
        value = self.get(key)
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def items(self, version: Optional[Union[int, ServiceCommit]] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate all records in ascending key order (latest or a version)."""
        return self.snapshot(version).items()

    def record_count(self) -> int:
        """Total records across all shards (flushes pending writes first)."""
        self._require_open()
        heads, _ = self._atomic_cut()
        return sum(len(head) for head in heads)

    # -- versioning --------------------------------------------------------

    def _atomic_cut(self, collect_postings: bool = False) -> Tuple[List, Tuple]:
        """Flush every shard and return one consistent cross-shard cut.

        Returns ``(heads, index_roots)``: the per-shard head snapshots
        plus — when ``collect_postings`` is set and secondary indexes are
        registered — the posting roots of every index in the
        :attr:`ServiceCommit.index_roots` shape (``()`` otherwise).

        Acquires every shard lock (in ascending shard-id order — writers
        only ever hold one shard lock, so this cannot deadlock), drains
        each shard's pending buffer while all locks are held, and records
        the heads.  The result is an *atomic cut*: every operation that
        completed before the cut is included on every shard, and no
        operation is included on one shard but missing from another.

        This is the **prepare phase** of the two-phase commit protocol:
        the flush is staged on every shard before any result is collected
        (``flush_begin`` on all, then ``flush_finish`` on all), so on the
        process backend the per-shard batch application and store fsyncs
        overlap across worker processes.  If any shard's prepare fails
        (e.g. a worker died), every already-staged reply is still drained
        — no pipe is left mid-conversation — and the first failure is
        re-raised, so the caller never journals a partial cut.
        """
        acquired: List = []
        try:
            for shard in self._shards:
                shard.__enter__()
                acquired.append(shard)
            staged: List = []
            failure: Optional[BaseException] = None
            for shard in self._shards:
                try:
                    puts, removes = self.batcher.take(shard.shard_id)
                    shard.flush_begin(puts, removes)
                    staged.append(shard)
                # repro-lint: disable=L5-exception-policy — two-phase cut: the first failure is parked, remaining prepares are abandoned, and `raise failure` below re-raises it before any journal append
                except BaseException as exc:
                    failure = exc
                    break
            heads: List = []
            for shard in staged:
                try:
                    heads.append(shard.flush_finish())
                # repro-lint: disable=L5-exception-policy — every staged shard must be collected so no worker is left mid-prepare; the first failure is re-raised by `raise failure` below
                except BaseException as exc:
                    if failure is None:
                        failure = exc
            if failure is not None:
                raise failure
            if collect_postings and self._index_definitions:
                return heads, self._collect_index_roots_locked()
            return heads, ()
        finally:
            for shard in reversed(acquired):
                shard.__exit__()

    def _collect_index_roots_locked(
            self) -> Tuple[Tuple[str, Tuple[Optional[Digest], ...]], ...]:
        """Posting roots of every registered index (shard locks held).

        Returns the name-sorted ``ServiceCommit.index_roots`` shape; the
        engines keep their posting heads in lock-step with their primary
        working heads, so reading them after a flush yields the postings
        of exactly the cut being committed.
        """
        if not self._index_definitions:
            return ()
        per_shard = [shard.posting_heads_state() for shard in self._shards]
        return tuple(
            (name, tuple(states.get(name) for states in per_shard))
            for name in sorted(self._index_definitions))

    def _resolve_commit(self, version: Union[int, ServiceCommit]) -> ServiceCommit:
        if isinstance(version, ServiceCommit):
            return version
        try:
            if version < 0:
                # Versions are dense sequence numbers from 0; negative
                # indexing would silently alias the newest commits.
                raise IndexError(version)
            return self._commits[version]
        except (IndexError, TypeError):
            raise KeyNotFoundError(f"unknown service version: {version!r}") from None

    def commit(self, message: str = "") -> ServiceCommit:
        """Flush all shards and record a cross-shard version.

        Returns a :class:`ServiceCommit` whose ``version`` number can be
        passed to :meth:`get`, :meth:`snapshot` and :meth:`diff`.  The
        commit digest rolls the shard roots up into one value, so two
        services with identical content produce identical commit digests
        (structural invariance carries through the service layer).

        Concurrency: the recorded roots form an atomic cross-shard cut
        (every shard lock is held while the roots are read), so a commit
        racing with writers observes each in-flight operation either on
        all the shards it touched or on none — a multi-key update issued
        before the commit started can never be half-visible.  Commits are
        serialized by a dedicated lock, so version numbers stay dense.

        Durability: for a directory-backed service the commit is recorded
        in the fsynced manifest *after* every shard store has flushed, so
        a manifest entry implies all its nodes are on disk — a crash
        between the two simply recovers to the previous commit.
        """
        self._require_open()
        with self._commit_lock:
            heads, index_roots = self._atomic_cut(collect_postings=True)
            roots = tuple(head.root_digest for head in heads)
            return self._record_commit(roots, message, index_roots=index_roots)

    def _record_commit(self, roots: Tuple[Optional[Digest], ...], message: str,
                       branch: Optional[str] = None,
                       parents: Optional[Sequence[int]] = None,
                       index_roots: Tuple[Tuple[str, Tuple[Optional[Digest], ...]], ...] = ()) -> ServiceCommit:
        """Journal one commit over an already-captured cut (commit lock held).

        ``branch`` defaults to the service's default branch; ``parents``
        defaults to that branch's current head (the linear-history case).
        ``index_roots`` (the :attr:`ServiceCommit.index_roots` shape) is
        mixed into the commit digest only when non-empty, so services
        without secondary indexes keep their historical digests.
        """
        if branch is None:
            branch = self.default_branch
        if parents is None:
            head = self._branch_heads.get(branch)
            parents = (head.version,) if head is not None else ()
        parents = tuple(parents)
        for parent in parents:
            if parent not in self._graph_ids:
                raise InvalidParameterError(
                    f"unknown parent commit version: {parent}")
        index_roots = tuple(sorted(index_roots))
        parts = [root.raw if root is not None else b"\x00" for root in roots]
        for name, posting_roots in index_roots:
            # Postings are a pure function of primary content, so two
            # replicas with the same content *and the same registered
            # indexes* still agree on the commit digest.
            parts.append(name.encode("ascii"))
            parts.extend(root.raw if root is not None else b"\x00"
                         for root in posting_roots)
        digest = self._hash.hash_many(parts)
        commit = ServiceCommit(
            version=len(self._commits),
            roots=roots,
            digest=digest,
            message=message,
            timestamp=time.time(),
            branch=branch,
            parents=parents,
            index_roots=index_roots,
        )
        if self.directory is not None:
            self._append_manifest(commit)
        self._commits.append(commit)
        self._register_commit(commit)
        return commit

    def _register_commit(self, commit: ServiceCommit) -> None:
        """Mirror a journalled commit into the DAG and the branch-head map.

        The journal version is mixed into the DAG commit id as a salt:
        versions are unique and replay deterministically, so two commits
        whose visible fields coincide (e.g. two forks in one clock tick)
        still get distinct, crash-stable DAG nodes.
        """
        parent_ids = [self._graph_ids[version] for version in commit.parents]
        graph_commit = self.version_graph.add_commit(
            commit.roots, commit.branch, parent_ids,
            message=commit.message, timestamp=commit.timestamp,
            salt=b"v%d" % commit.version)
        self._graph_ids[commit.version] = graph_commit.commit_id
        self._graph_versions[graph_commit.commit_id] = commit.version
        self._branch_heads[commit.branch] = commit

    # -- branch-qualified commits (the repository API's primitives) --------

    def branches(self) -> List[str]:
        """Every branch with at least one journalled commit, sorted."""
        self._require_open()
        return sorted(self._branch_heads.keys())

    def has_branch(self, branch: str) -> bool:
        """Whether ``branch`` has a journalled head commit."""
        return branch in self._branch_heads

    def branch_head(self, branch: str) -> ServiceCommit:
        """The newest commit on ``branch`` (every head survives recovery)."""
        self._require_open()
        head = self._branch_heads.get(branch)
        if head is None:
            raise UnknownBranchError(branch)
        return head

    def log(self, branch: str) -> Iterator[ServiceCommit]:
        """Walk ``branch``'s first-parent history, newest commit first."""
        self._require_open()
        current: Optional[ServiceCommit] = self.branch_head(branch)
        while current is not None:
            yield current
            if not current.parents:
                return
            current = self._commits[current.parents[0]]

    def merge_base(self, branch_a: str, branch_b: str) -> Optional[ServiceCommit]:
        """The nearest common ancestor of two branch heads (or ``None``).

        Computed over the commit DAG rebuilt from the journal, so the
        answer is identical before and after a crash/reopen.
        """
        self._require_open()
        ancestor = self.version_graph.common_ancestor(branch_a, branch_b)
        if ancestor is None:
            return None
        return self._commits[self._graph_versions[ancestor.commit_id]]

    def commit_roots(self, branch: str,
                     roots: Sequence[Optional[Digest]], message: str = "",
                     parents: Optional[Sequence[int]] = None,
                     index_roots: Optional[Tuple] = None) -> ServiceCommit:
        """Record already-built shard roots as the new head of ``branch``.

        This is the repository layer's commit primitive: branch writers
        build new per-shard roots through the shard indexes (copy-on-write,
        so no other branch observes anything), then publish them in one
        journal append.  The append *is* the atomicity point across all
        shards — a crash before it leaves every branch head at its previous
        committed roots; a crash after it recovers the new head.

        ``parents`` are commit versions (default: the branch's current
        head); a fork passes the source head, a merge passes both heads.
        Every shard store is flushed before the journal append, preserving
        the invariant that a manifest entry implies its nodes are durable.

        ``index_roots`` carries pre-computed posting roots (the
        :attr:`ServiceCommit.index_roots` shape); with the default
        ``None`` they are resolved automatically — inherited from the
        base commit when the primary roots are unchanged (forks), else
        recomputed diff-driven from the base commit's postings.
        """
        self._require_open()
        with self._commit_lock:
            return self._commit_roots_locked(branch, roots, message, parents,
                                             index_roots=index_roots)

    def _commit_roots_locked(self, branch: str, roots: Sequence[Optional[Digest]],
                             message: str,
                             parents: Optional[Sequence[int]],
                             index_roots: Optional[Tuple] = None) -> ServiceCommit:
        roots = tuple(roots)
        if len(roots) != self.router.num_shards:
            raise InvalidParameterError(
                f"expected {self.router.num_shards} shard roots, got {len(roots)}")
        acquired: List = []
        try:
            for shard in self._shards:
                shard.__enter__()
                acquired.append(shard)
            return self._commit_roots_shards_held(branch, roots, message, parents,
                                                  index_roots=index_roots)
        finally:
            for shard in reversed(acquired):
                shard.__exit__()

    def _preserve_working_heads_locked(
            self, parents: Optional[Sequence[int]]) -> Optional[Sequence[int]]:
        """Journal dirty working heads before a default-branch commit.

        Commit lock and every shard lock held.  If the flat API flushed
        writes into the working heads that were never committed, a commit
        arriving through the repository layer must not wipe them: they are
        journalled here as an implicit commit (mirroring what ``close()``
        does), and the incoming commit is reparented onto it so the branch
        history records both states.  Returns the (possibly fixed-up)
        parent list.
        """
        committed = self._branch_heads.get(self.default_branch)
        committed_roots = (committed.roots if committed is not None
                           else (None,) * self.router.num_shards)
        working = tuple(shard.head_root() for shard in self._shards)
        if working == committed_roots:
            return parents
        implicit = self._record_commit(
            working, "flat-API writes (implicit commit)",
            branch=self.default_branch, parents=None,
            index_roots=self._collect_index_roots_locked())
        if parents is None:
            return None  # _record_commit defaults to the branch head (= implicit)
        parents = list(parents)
        if parents:
            # Internal callers always pass the branch head first; it just
            # moved to the implicit commit.
            parents[0] = implicit.version
        else:
            parents = [implicit.version]
        return parents

    def _commit_roots_shards_held(self, branch: str,
                                  roots: Tuple[Optional[Digest], ...],
                                  message: str,
                                  parents: Optional[Sequence[int]],
                                  index_roots: Optional[Tuple] = None) -> ServiceCommit:
        """Journal ``roots`` with every shard lock (and the commit lock) held."""
        # Durability barrier (the prepare phase for branch commits):
        # branch writers fed these roots' nodes through the shard stores'
        # buffered append path; push them to disk before the manifest
        # names them.
        for shard in self._shards:
            shard.store_flush()
        if branch == self.default_branch:
            parents = self._preserve_working_heads_locked(parents)
        if index_roots is None:
            index_roots = self._resolve_index_roots_shards_held(
                branch, roots, parents)
        commit = self._record_commit(roots, message, branch=branch,
                                     parents=parents, index_roots=index_roots)
        if branch == self.default_branch:
            # Keep the flat API's working heads in step with their
            # branch: pending buffered writes stay buffered and apply
            # on top of the new head at the next flush.
            for shard, root in zip(self._shards, roots):
                shard.set_head(root, commit.shard_postings(shard.shard_id))
        return commit

    def _resolve_index_roots_shards_held(
            self, branch: str, roots: Tuple[Optional[Digest], ...],
            parents: Optional[Sequence[int]]) -> Tuple:
        """Posting roots for a roots-only commit (shard locks held).

        Base = the first parent (or the branch head).  When the primary
        roots are unchanged from the base — a fork — its posting roots
        are inherited outright.  Otherwise each shard recomputes its
        postings diff-driven from the base (structural diff of primary
        roots → extractor on just the changed records), so the cost is
        proportional to the divergence, not the dataset; shards whose
        base predates index registration bulk-build from content.
        """
        if not self._index_definitions:
            return ()
        base: Optional[ServiceCommit] = None
        if parents:
            base = self._commits[parents[0]]
        else:
            base = self._branch_heads.get(branch)
        if base is not None and base.roots == roots:
            base_map = base.index_root_map()
            if all(name in base_map for name in self._index_definitions):
                return base.index_roots
        per_shard: List[Dict[str, Optional[Digest]]] = []
        for shard in self._shards:
            shard_id = shard.shard_id
            base_primary = base.roots[shard_id] if base is not None else None
            base_postings = (base.shard_postings(shard_id)
                             if base is not None else None)
            per_shard.append(shard.postings_for(
                roots[shard_id], base_primary, base_postings))
        return tuple(
            (name, tuple(postings.get(name) for postings in per_shard))
            for name in sorted(self._index_definitions))

    def commit_update(self, branch: str,
                      base_roots: Sequence[Optional[Digest]],
                      puts_by_shard: Sequence[Dict[bytes, bytes]],
                      removes_by_shard: Sequence[Sequence[bytes]],
                      message: str = "",
                      parents: Optional[Sequence[int]] = None) -> ServiceCommit:
        """Apply per-shard write batches to ``base_roots`` and commit them.

        The copy-on-write application and the journal append happen under
        the commit lock, so a concurrent :meth:`collect_garbage` can never
        sweep the freshly-written nodes in the window before the journal
        names them.

        On the *default* branch the batches are applied to the current
        working heads rather than ``base_roots``: flat-API writes that
        were flushed into the heads but never committed are first
        journalled as an implicit parent commit and then carried into the
        new head (last-writer-wins per key), so mixing the deprecated flat
        surface with repository commits can never silently lose data.
        """
        self._require_open()
        base_roots = tuple(base_roots)
        if not (len(base_roots) == len(puts_by_shard) == len(removes_by_shard)
                == self.router.num_shards):
            raise InvalidParameterError(
                "base_roots/puts_by_shard/removes_by_shard must all have "
                f"exactly {self.router.num_shards} entries")
        with self._commit_lock:
            if branch == self.default_branch:
                return self._commit_update_default_locked(
                    puts_by_shard, removes_by_shard, message, parents)
            # Base commit for incremental posting maintenance: internal
            # callers always pass the first parent's roots as base_roots.
            base: Optional[ServiceCommit] = None
            if self._index_definitions:
                if parents:
                    base = self._commits[parents[0]]
                else:
                    base = self._branch_heads.get(branch)
            new_roots: List[Optional[Digest]] = []
            postings_by_shard: List[Dict[str, Optional[Digest]]] = []
            changed_by_shard: List[List] = []
            for shard, root, puts, removes in zip(
                    self._shards, base_roots, puts_by_shard, removes_by_shard):
                base_postings = (base.shard_postings(shard.shard_id)
                                 if base is not None else None)
                changed: List = []
                if puts or removes:
                    with shard:
                        if self._index_definitions:
                            root, postings, changed = shard.write_at_indexed(
                                root, puts, list(removes), base_postings)
                        else:
                            root = shard.write_at(root, puts, list(removes))
                            postings = {}
                elif self._index_definitions:
                    # Untouched shard: postings carry over from the base
                    # (diff of identical primary roots is empty; missing
                    # names bulk-build from content).
                    with shard:
                        postings = shard.postings_for(root, root, base_postings)
                else:
                    postings = {}
                new_roots.append(root)
                postings_by_shard.append(postings)
                changed_by_shard.append(changed)
            index_roots: Tuple = ()
            if self._index_definitions:
                index_roots = tuple(
                    (name, tuple(p.get(name) for p in postings_by_shard))
                    for name in sorted(self._index_definitions))
            commit = self._commit_roots_locked(branch, new_roots, message,
                                               parents, index_roots=index_roots)
            # Capture the change log only when the delta was computed
            # against the commit's actual first parent (internal callers
            # always arrange this; anything else falls back to the diff).
            expected = (base.roots if base is not None
                        else (None,) * self.router.num_shards)
            if self._index_definitions and base_roots == expected:
                self._record_feed_entries(commit.version, changed_by_shard)
            return commit

    def _commit_update_default_locked(
            self, puts_by_shard: Sequence[Dict[bytes, bytes]],
            removes_by_shard: Sequence[Sequence[bytes]],
            message: str, parents: Optional[Sequence[int]]) -> ServiceCommit:
        """Default-branch ``commit_update`` body (commit lock held).

        Holds every shard lock across base capture, application and the
        journal append, so no concurrent flat-API flush can slip a working
        -head change into the window and be wiped by the head sync.
        """
        acquired: List = []
        try:
            for shard in self._shards:
                shard.__enter__()
                acquired.append(shard)
            # Apply on the *working* heads (preserving flushed flat-API
            # writes in the result); _commit_roots_shards_held journals
            # those same heads as the implicit parent commit before the
            # main record, so both states reach the journal in order.
            new_roots: List[Optional[Digest]] = []
            postings_by_shard: List[Dict[str, Optional[Digest]]] = []
            changed_by_shard: List[List] = []
            for shard, puts, removes in zip(
                    self._shards, puts_by_shard, removes_by_shard):
                root = shard.head_root()
                postings = (shard.posting_heads_state()
                            if self._index_definitions else {})
                changed: List = []
                if puts or removes:
                    if self._index_definitions:
                        root, postings, changed = shard.write_at_indexed(
                            root, puts, list(removes), postings)
                    else:
                        root = shard.write_at(root, puts, list(removes))
                new_roots.append(root)
                postings_by_shard.append(postings)
                changed_by_shard.append(changed)
            index_roots: Tuple = ()
            if self._index_definitions:
                index_roots = tuple(
                    (name, tuple(p.get(name) for p in postings_by_shard))
                    for name in sorted(self._index_definitions))
            commit = self._commit_roots_shards_held(
                self.default_branch, tuple(new_roots), message, parents,
                index_roots=index_roots)
            if self._index_definitions:
                self._record_feed_entries(commit.version, changed_by_shard)
            return commit
        finally:
            for shard in reversed(acquired):
                shard.__exit__()

    # -- secondary indexes (the query layer's primitives) --------------------

    def register_index(self, definition: IndexDefinition) -> None:
        """Register a secondary index and materialize its posting trees.

        Every shard engine builds the index's posting tree for its
        current working head (a bulk build over existing content) and
        maintains it incrementally from then on: each flushed batch
        advances the postings from exactly the changed records, and
        every subsequent commit journals the posting roots next to the
        primary roots — so the index recovers, forks, merges and
        garbage-collects with the commits it belongs to.

        Definitions are code: a fresh process must re-register its
        indexes after constructing the service (commits journalled while
        the index was registered remain queryable through their recorded
        roots either way).  Registering a name twice raises
        :class:`~repro.core.errors.InvalidParameterError`.
        """
        self._require_open()
        with self._commit_lock:
            if definition.name in self._index_definitions:
                raise InvalidParameterError(
                    f"index {definition.name!r} is already registered")
            for shard in self._shards:
                with shard:
                    self._flush_shard_locked(shard)
                    shard.register_index(definition)
            self._index_definitions[definition.name] = definition

    def index_definitions(self) -> Dict[str, IndexDefinition]:
        """The currently registered secondary indexes, by name."""
        return dict(self._index_definitions)

    def has_index(self, name: str) -> bool:
        """Whether a secondary index named ``name`` is registered."""
        return name in self._index_definitions

    def _record_feed_entries(self, version: int,
                             changed_by_shard: Sequence[Sequence[Tuple]]) -> None:
        """Capture a commit's change log from its per-shard write deltas.

        Called (commit lock held) right after the commit is journalled.
        The per-shard ``(key, old, new)`` lists are each key-sorted and
        keys never cross shards, so a heap merge yields exactly the
        key-ordered entry list the structural first-parent diff would
        produce.  Deltas larger than :attr:`FEED_LOG_MAX_ENTRIES` (bulk
        loads) are not kept, and only the newest
        :attr:`FEED_LOG_COMMITS` commits are retained — evicted commits
        simply fall back to the diff.
        """
        total = sum(len(changed) for changed in changed_by_shard)
        if total > self.FEED_LOG_MAX_ENTRIES:
            return
        merged = tuple(DiffEntry(key, old, new) for key, old, new
                       in heapq.merge(*changed_by_shard))
        self._feed_log[version] = merged
        while len(self._feed_log) > self.FEED_LOG_COMMITS:
            self._feed_log.popitem(last=False)

    def feed_entries(self, version: int) -> Optional[Tuple[DiffEntry, ...]]:
        """The captured change log of commit ``version``, if still held.

        ``None`` means "not captured" (evicted, bulk-loaded, journalled
        before any index existed, or imported from a peer) — the caller
        computes the structural first-parent diff instead, which yields
        the identical entry list.
        """
        return self._feed_log.get(version)

    def _check_posting_roots(self, posting_roots: Sequence[Optional[Digest]]) -> Tuple[Optional[Digest], ...]:
        posting_roots = tuple(posting_roots)
        if len(posting_roots) != self.router.num_shards:
            raise InvalidParameterError(
                f"expected {self.router.num_shards} posting roots, "
                f"got {len(posting_roots)}")
        return posting_roots

    def index_lookup(self, posting_roots: Sequence[Optional[Digest]],
                     index_key: bytes) -> List[Tuple[bytes, bytes]]:
        """``(primary_key, value)`` pairs filed under ``index_key``.

        ``posting_roots`` is one index's per-shard root tuple (from a
        commit's :attr:`ServiceCommit.index_roots`).  Each shard answers
        with a pruned range scan over its posting tree — lock-free, since
        the roots are immutable — and the union is returned sorted.
        Postings are covering (they store the record value), so the
        answer costs one contiguous scan proportional to its size; the
        primary tree is never touched.
        """
        self._require_open()
        posting_roots = self._check_posting_roots(posting_roots)
        start, stop = lookup_range(index_key)
        # Every posting key in [start, stop) begins with the escaped
        # index key plus its terminator; the primary key is the tail.
        prefix_length = len(start)
        pairs: List[Tuple[bytes, bytes]] = []
        for shard, root in zip(self._shards, posting_roots):
            for posting_key, value in shard.scan_range(root, start, stop):
                pairs.append((posting_key[prefix_length:], value))
        pairs.sort()
        return pairs

    def index_range(self, posting_roots: Sequence[Optional[Digest]],
                    lo: Optional[bytes],
                    hi: Optional[bytes]) -> List[Tuple[bytes, bytes, bytes]]:
        """``(index_key, primary_key, value)`` triples with ``lo <= index_key < hi``.

        ``None`` bounds are open ends, matching the
        :meth:`~repro.core.interfaces.SIRIIndex.iterate_range` contract.
        The merged result is sorted by ``(index_key, primary_key)``;
        values come from the covering postings themselves.
        """
        self._require_open()
        posting_roots = self._check_posting_roots(posting_roots)
        start, stop = posting_range(lo, hi)
        triples: List[Tuple[bytes, bytes, bytes]] = []
        for shard, root in zip(self._shards, posting_roots):
            for posting_key, value in shard.scan_range(root, start, stop):
                index_key, primary_key = decode_posting_key(posting_key)
                triples.append((index_key, primary_key, value))
        triples.sort()
        return triples

    # -- replication (node transfer by structural frontier) -----------------

    def _check_shard_id(self, shard_id: int) -> None:
        if not 0 <= shard_id < self.router.num_shards:
            raise InvalidParameterError(
                f"shard id {shard_id} out of range "
                f"(service has {self.router.num_shards} shards)")

    def shard_missing_digests(self, shard_id: int,
                              digests: Sequence[Digest]) -> List[Digest]:
        """The subset of ``digests`` shard ``shard_id`` does not hold.

        The receiver half of the sync frontier: because imports land
        children before parents (and flush between levels), a held digest
        implies its entire subtree is held, so the sender can prune the
        descent at every digest this method omits.
        """
        self._require_open()
        self._check_shard_id(shard_id)
        return self._shards[shard_id].missing_digests(list(digests))

    def shard_fetch_nodes(self, shard_id: int,
                          digests: Sequence[Digest]) -> List[Tuple[Digest, bytes]]:
        """Canonical bytes of the requested nodes from shard ``shard_id``.

        Raises :class:`~repro.core.errors.NodeNotFoundError` for a digest
        the shard does not hold — peers only request digests this side
        advertised, so a miss is local data loss, not a race.
        """
        self._require_open()
        self._check_shard_id(shard_id)
        return self._shards[shard_id].fetch_nodes(list(digests))

    def shard_import_nodes(self, shard_id: int,
                           pairs: Sequence[Tuple[Digest, bytes]]) -> int:
        """Verify and land transferred nodes into shard ``shard_id``.

        Every pair is re-hashed against its claimed digest before any
        byte is stored (:class:`~repro.core.errors.SyncIntegrityError` on
        mismatch — a lying peer cannot poison the store), and the shard's
        backing store is flushed afterwards, making each imported batch a
        durable resume checkpoint.  Returns how many nodes were new.
        """
        self._require_open()
        self._check_shard_id(shard_id)
        shard = self._shards[shard_id]
        with shard:
            return shard.import_nodes(list(pairs))

    def child_digests(self, node_bytes: bytes) -> List[Digest]:
        """Digests of the children referenced by one node's canonical bytes.

        Pure byte parsing through a store-less parser index instance, so
        it works identically on the thread and process backends (where
        the parent holds no shard index).  Sync uses it to advance the
        frontier descent one level from already-transferred parents.
        """
        if self._parser_index is None:
            self._parser_index = self._index_factory(InMemoryNodeStore())
        return self._parser_index._child_digests(node_bytes)

    def ancestry_digests(self, branch: str, limit: int = 64) -> List[Digest]:
        """Commit digests along ``branch``'s first-parent history, newest first.

        Commit digests are content-derived (a hash over the shard roots),
        so two replicas that ever held the same state share a digest even
        though their journal version numbers differ.  Sync peers exchange
        these chains to find a common base without sharing a journal;
        ``limit`` bounds the chain (deep divergences fall back to a full
        three-way merge against the empty base).
        """
        self._require_open()
        chain: List[Digest] = []
        for commit in self.log(branch):
            chain.append(commit.digest)
            if len(chain) >= limit:
                break
        return chain

    def commit_for_digest(self, digest: Digest) -> Optional[ServiceCommit]:
        """The newest commit whose content digest equals ``digest``.

        Used by sync to recover the shard roots of a common-ancestor
        digest found in a peer's ancestry chain.  Returns ``None`` when no
        local commit ever had that content.
        """
        self._require_open()
        for commit in reversed(self._commits):
            if commit.digest == digest:
                return commit
        return None

    def publish_roots(self, branch: str, roots: Sequence[Optional[Digest]],
                      message: str = "",
                      expected_digest: Optional[Digest] = None) -> ServiceCommit:
        """Compare-and-set publish of sync-transferred roots onto ``branch``.

        The head-move half of a sync session.  The caller transferred all
        of ``roots``' nodes first (:meth:`shard_import_nodes`), so this
        method only has to (1) check the CAS — the branch head's content
        digest must still equal ``expected_digest`` (``None`` = the branch
        must not exist yet), raising
        :class:`~repro.core.errors.SyncHeadMovedError` when a concurrent
        writer won the race — and (2) verify every non-empty root is
        actually held by its shard store, so a buggy or lying peer cannot
        publish a head whose subtree was never landed.  Publishing the
        roots the head already has is an idempotent no-op returning the
        existing head.
        """
        self._require_open()
        roots = tuple(roots)
        if len(roots) != self.router.num_shards:
            raise InvalidParameterError(
                f"expected {self.router.num_shards} shard roots, got {len(roots)}")
        with self._commit_lock:
            head = self._branch_heads.get(branch)
            head_digest = head.digest if head is not None else None
            if head_digest != expected_digest:
                raise SyncHeadMovedError(branch)
            if head is not None and head.roots == roots:
                return head
            for shard_id, root in enumerate(roots):
                if root is not None and self._shards[shard_id].missing_digests(
                        [root]):
                    raise InvalidParameterError(
                        f"cannot publish branch {branch!r}: shard {shard_id} "
                        f"root {root!r} is not present in its store")
            parents = (head.version,) if head is not None else ()
            return self._commit_roots_locked(branch, roots, message, parents)

    def pin_roots(self, roots: Sequence[Optional[Digest]]) -> int:
        """Protect a cross-shard root tuple from :meth:`collect_garbage`.

        Used by readers holding a long-lived view that is neither a branch
        head nor a retained commit — e.g. an open transaction's pinned
        base snapshot.  Returns a pin id for :meth:`unpin_roots`; an
        unreleased pin keeps its nodes live for the process lifetime.
        """
        roots = tuple(roots)
        if len(roots) != self.router.num_shards:
            raise InvalidParameterError(
                f"expected {self.router.num_shards} shard roots, got {len(roots)}")
        with self._pin_lock:
            self._pin_counter += 1
            pin_id = self._pin_counter
            self._pinned_roots[pin_id] = roots
        return pin_id

    def unpin_roots(self, pin_id: int) -> None:
        """Release a pin taken with :meth:`pin_roots` (unknown ids ignored)."""
        with self._pin_lock:
            self._pinned_roots.pop(pin_id, None)

    def retained_commits(self) -> List[ServiceCommit]:
        """The commits protected from :meth:`collect_garbage`.

        With ``retain_versions=N`` these are the newest N commits; older
        commits remain listed (version numbers never reuse) and readable
        until a GC run actually reclaims their exclusively-owned nodes.
        ``retain_versions=None`` retains every commit.
        """
        if self.retain_versions is None:
            return list(self._commits)
        return list(self._commits[-self.retain_versions:])

    def collect_garbage(self) -> GCCounters:
        """Mark-and-sweep the shard stores down to the retained versions.

        Mark: per shard, the union of nodes reachable from the shard's
        roots in every retained commit (:meth:`retained_commits`), in
        **every branch's head commit** (a branch head is always live, no
        matter how old — the retention window only expires interior
        history), in every pinned view (:meth:`pin_roots` — open
        transactions), plus its current working head.  Sweep: segment stores are compacted (live
        nodes rewritten into fresh segments, old files unlinked); stores
        exposing ``delete`` are swept in place
        (:class:`repro.storage.gc.GarbageCollector`).  Shard caches are
        invalidated so a stale cache cannot resurrect swept nodes.

        Reads of *retained* versions are unaffected (content addressing
        keeps digests stable).  Reads of versions older than the
        retention window — and of intermediate flush roots that were
        never committed — may raise
        :class:`~repro.core.errors.NodeNotFoundError` afterwards.

        Returns the merged :class:`~repro.core.metrics.GCCounters` delta
        for this run; cumulative counters are reported by
        :meth:`metrics`.
        """
        self._require_open()
        merged = GCCounters()
        with self._commit_lock:
            retained = self.retained_commits()
            protected = [commit.roots for commit in retained]
            protected.extend(commit.roots for commit in self._branch_heads.values())
            # Posting trees live or die with their commits: protect the
            # per-index root tuples of every commit whose primary roots
            # are protected (the engine adds its own working posting
            # heads during collect()).
            for commit in retained:
                protected.extend(roots for _, roots in commit.index_roots)
            for commit in self._branch_heads.values():
                protected.extend(roots for _, roots in commit.index_roots)
            with self._pin_lock:
                protected.extend(self._pinned_roots.values())
            for shard in self._shards:
                with shard:
                    self._flush_shard_locked(shard)
                    roots = {root_tuple[shard.shard_id] for root_tuple in protected}
                    # The engine adds its own working head, sweeps the
                    # store, invalidates the cache and restarts the
                    # shard's history at its (live) head — un-committed
                    # intermediate flush roots may now dangle.
                    delta = shard.collect(roots)
                    merged = merged.merge(delta)
        self._gc_total = self._gc_total.merge(merged)
        return merged

    def snapshot(self, version: Optional[Union[int, ServiceCommit]] = None) -> ServiceSnapshot:
        """An immutable cross-shard view of the latest state or a commit.

        ``version=None`` flushes pending writes and snapshots the current
        heads; otherwise the view is reconstructed from the commit's
        recorded shard roots.
        """
        self._require_open()
        if version is None:
            heads, _ = self._atomic_cut()
            return ServiceSnapshot(heads, commit=None)
        commit = self._resolve_commit(version)
        snaps = [shard.view(root) for shard, root in zip(self._shards, commit.roots)]
        return ServiceSnapshot(snaps, commit=commit)

    def snapshot_roots(self, roots: Sequence[Optional[Digest]],
                       commit: Optional[ServiceCommit] = None) -> ServiceSnapshot:
        """Wrap explicit per-shard roots in an immutable cross-shard view.

        The repository layer uses this to read branch heads (whose roots
        live in the commit journal, not in the shards' working heads).
        """
        self._require_open()
        roots = tuple(roots)
        if len(roots) != self.router.num_shards:
            raise InvalidParameterError(
                f"expected {self.router.num_shards} shard roots, got {len(roots)}")
        snaps = [shard.view(root) for shard, root in zip(self._shards, roots)]
        return ServiceSnapshot(snaps, commit=commit)

    def diff(self, left: Union[int, ServiceCommit, ServiceSnapshot],
             right: Union[int, ServiceCommit, ServiceSnapshot, None] = None) -> DiffResult:
        """Merged structural diff between two versions (or a version and head)."""
        self._require_open()
        left_snap = left if isinstance(left, ServiceSnapshot) else self.snapshot(left)
        if right is None:
            right_snap = self.snapshot()
        elif isinstance(right, ServiceSnapshot):
            right_snap = right
        else:
            right_snap = self.snapshot(right)
        return diff_service_snapshots(left_snap, right_snap)

    # -- observability -----------------------------------------------------

    def shard_histories(self) -> List[List[Optional[Digest]]]:
        """Each shard's root-version history (one root per flush).

        Each shard's list is copied under that shard's lock, so every
        returned history is a consistent prefix even while flushes race.
        """
        self._require_open()
        histories = []
        for shard in self._shards:
            with shard:
                histories.append(shard.history_copy())
        return histories

    def metrics(self, include_records: bool = False) -> ServiceMetrics:
        """Current counters: per-shard node I/O, cache hits, coalescing, commits.

        ``include_records=True`` additionally counts each shard's *flushed*
        records (pending buffered writes are excluded — use
        :meth:`record_count` for a flush-then-count total), which costs a
        full iteration per shard — leave it off on hot paths.
        """
        self._require_open()
        shards = [shard.shard_metrics(include_records) for shard in self._shards]
        return ServiceMetrics(
            shards=shards,
            gets=self._gets,
            puts=self._puts,
            removes=self._removes,
            buffered_ops=self.batcher.buffered_ops,
            coalesced_ops=self.batcher.coalesced_ops,
            flushes=sum(metric.flushes for metric in shards),
            commits=len(self._commits),
            gc=self._gc_total.copy(),
        )

    def reset_counters(self) -> None:
        """Zero every operation/cache/node counter (state is untouched)."""
        self._require_open()
        with self._counter_lock:
            self._gets = self._puts = self._removes = 0
        self.batcher.reset_counters()
        for shard in self._shards:
            # Under the shard lock: flushes/flush_seconds/contention are
            # read-modify-written by concurrent flushes and lock waiters.
            with shard:
                shard.reset_shard_counters()

    def storage_bytes(self) -> int:
        """Physical bytes across all shard stores (unique nodes only)."""
        self._require_open()
        return sum(shard.storage_bytes() for shard in self._shards)

    def __repr__(self) -> str:
        index_name = self._index_name if self._shards else "?"
        return (
            f"VersionedKVService(index={index_name}, shards={self.num_shards}, "
            f"batch_size={self.batch_size}, commits={len(self._commits)})"
        )
