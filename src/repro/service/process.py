"""The process shard backend: one forked worker per shard, GIL escaped.

The thread backend tops out near ~2.5× scaling because hashing and node
encoding are GIL-bound pure python.  This module places each shard's
:class:`~repro.service.engine.ShardEngine` in its **own forked worker
process** — Forkbase's shard-isolated worker architecture — so the
per-shard flush/lookup work runs on independent interpreters:

* **Ownership** — the worker builds and exclusively owns its shard's
  store (a ``SegmentNodeStore`` under ``directory/shard-NN``, or an
  in-memory store).  The parent never opens a shard store in process
  mode, so there is no cross-process file-descriptor sharing to reason
  about.
* **Command pipes** — each shard has a duplex pipe carrying pickled
  ``(method, args)`` engine commands parent→worker and ``("ok", result)``
  / ``("error", exception)`` replies back.  The worker executes commands
  strictly serially, which *is* the shard's mutual exclusion — the
  parent-side :class:`ProcessShardHandle` adds the same shard mutex and
  contention counters as the thread backend for the service's locking
  discipline, plus a pipe lock that keeps concurrent lock-free reads
  from interleaving frames on the wire.
* **Two-phase commits** — the service's control plane prepares a commit
  by pipelining ``flush_head`` to every worker (apply + store fsync),
  collects the shard roots, and only then journals the cut once in the
  parent's MANIFEST.  A worker death during prepare surfaces as
  :class:`~repro.core.errors.ShardExecutionError` and the journal is
  never touched — recovery lands exactly on the previous cut.
* **Fault injection** — ``set_fault("flush"|"prepare")`` arms a
  SIGKILL-self kill-point in the worker (mid-batch, or at the prepare
  barrier), which is how the fault suite
  (``tests/service/test_process_faults.py``) exercises every crash
  window of the commit protocol.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import signal
import threading
import time
from typing import Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.diff import DiffResult
from repro.core.errors import InvalidParameterError, ShardExecutionError
from repro.core.interfaces import KeyLike, coerce_key
from repro.core.metrics import ContentionCounters, GCCounters
from repro.core.proof import MerkleProof, ProofStep
from repro.hashing.digest import Digest
from repro.service.engine import ShardEngine, ShardMetrics

#: Kill-points a worker accepts via the ``set_fault`` command: ``"flush"``
#: SIGKILLs the worker at the top of a *non-empty* batch application
#: (mid-batch crash), ``"prepare"`` at the top of any ``flush_head`` /
#: ``store_flush`` command (the two-phase-commit prepare barrier).
FAULT_POINTS = ("flush", "prepare")

#: Exception types raised by a broken/closed command pipe.
_PIPE_ERRORS = (EOFError, BrokenPipeError, ConnectionResetError, OSError)


def _picklable_exception(exc: BaseException) -> BaseException:
    """Return ``exc`` if it survives a pickle round trip, else a stand-in.

    Exceptions with custom constructor signatures can fail to unpickle on
    the parent side, which would desynchronize nothing (the frame is read
    whole) but surface as a confusing ``TypeError``; degrade them to a
    ``RuntimeError`` carrying the original type name and message instead.
    """
    try:
        pickle.loads(pickle.dumps(exc))
        return exc
    # repro-lint: disable=L5-exception-policy — pickle round-trip guard: user __reduce__ hooks can raise anything; the fallback RuntimeError still crosses the pipe
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def shard_worker_main(conn, engine_builder: Callable[[], ShardEngine]) -> None:
    """The worker process body: build the engine, serve commands until EOF.

    Commands are ``(method, args)`` tuples resolved against the engine's
    method surface, executed strictly in arrival order.  Engine exceptions
    are replied as ``("error", exc)`` and re-raised on the caller's side
    with their original type; only transport failures become
    :class:`~repro.core.errors.ShardExecutionError` (in the parent).  Two
    commands are handled outside the engine: ``set_fault`` arms a
    kill-point (see :data:`FAULT_POINTS`) and ``shutdown`` closes the
    store and exits the loop.
    """
    engine = engine_builder()
    fault_point: Optional[str] = None
    while True:
        try:
            method, args = conn.recv()
        except _PIPE_ERRORS:
            break  # parent went away: exit quietly, stores stay crash-safe
        running = True
        try:
            if method == "shutdown":
                engine.close_store()
                result = None
                running = False
            elif method == "set_fault":
                point = args[0]
                if point is not None and point not in FAULT_POINTS:
                    raise InvalidParameterError(
                        f"unknown fault point {point!r}; expected one of "
                        f"{FAULT_POINTS} or None")
                fault_point = point
                result = None
            elif method == "flush_head":
                puts, removes = args
                if fault_point == "prepare" or (
                        fault_point == "flush" and (puts or removes)):
                    os.kill(os.getpid(), signal.SIGKILL)
                result = engine.flush_head(puts, removes)
            elif method == "store_flush":
                if fault_point == "prepare":
                    os.kill(os.getpid(), signal.SIGKILL)
                result = engine.store_flush()
            else:
                result = getattr(engine, method)(*args)
        # repro-lint: disable=L5-exception-policy — worker loop: the error is shipped to the parent over the pipe and re-raised there with its original type
        except BaseException as exc:  # engine errors travel to the caller
            try:
                conn.send(("error", _picklable_exception(exc)))
            except _PIPE_ERRORS:
                break
            continue
        try:
            conn.send(("ok", result))
        except _PIPE_ERRORS:
            break
        if not running:
            break


class ProcessShardHandle:
    """Parent-side handle for one shard worker process.

    Mirrors :class:`~repro.service.engine.ThreadShardHandle`'s command
    surface, executing each command as one pipe round trip.  Two locks
    with distinct jobs:

    * ``lock`` (+ ``contention``) — the *shard mutex*, acquired by the
      service exactly as in thread mode (``with handle:``) to serialize
      logical shard mutations and record contention.
    * the internal pipe lock — serializes raw pipe use, so lock-free
      versioned reads can share the wire with locked mutations without
      interleaving request/reply frames.

    A dead worker (SIGKILL, OOM, crash) surfaces as
    :class:`~repro.core.errors.ShardExecutionError` naming the shard and
    the in-flight command; the handle then stays dead — every later
    command fails fast the same way until the service is reopened.
    """

    def __init__(self, shard_id: int, process, conn):
        self.shard_id = shard_id
        self.lock = threading.Lock()
        self.contention = ContentionCounters()
        self._process = process
        self._conn = conn
        self._pipe_lock = threading.Lock()
        self._staged: Optional[str] = None
        self._alive = True

    # -- locking (the shard mutex; identical to the thread handle) ---------

    def __enter__(self) -> "ProcessShardHandle":
        if not self.lock.acquire(blocking=False):
            started = time.perf_counter()
            self.lock.acquire()
            self.contention.contended += 1
            self.contention.wait_seconds += time.perf_counter() - started
        self.contention.acquisitions += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self.lock.release()

    # -- transport ---------------------------------------------------------

    @property
    def pid(self) -> Optional[int]:
        """OS pid of the worker process (the fault suite SIGKILLs it)."""
        return self._process.pid

    @property
    def is_alive(self) -> bool:
        """Whether the handle still believes its worker is serving."""
        return self._alive and self._process.is_alive()

    def _dead(self, method: str, cause: BaseException) -> ShardExecutionError:
        self._alive = False
        return ShardExecutionError(self.shard_id, method, cause)

    def _send(self, method: str, args: Tuple) -> None:
        if not self._alive:
            raise ShardExecutionError(
                self.shard_id, method,
                RuntimeError("shard worker process is dead; reopen() the "
                             "service to restart it"))
        try:
            self._conn.send((method, args))
        except _PIPE_ERRORS as exc:
            raise self._dead(method, exc) from exc

    def _recv(self, method: str):
        try:
            status, payload = self._conn.recv()
        except _PIPE_ERRORS as exc:
            raise self._dead(method, exc) from exc
        if status == "error":
            raise payload
        return payload

    def call(self, method: str, *args):
        """One command round trip: send, await the reply, unwrap it."""
        with self._pipe_lock:
            self._send(method, args)
            return self._recv(method)

    # -- command surface (shared with ThreadShardHandle) -------------------

    def describe(self) -> str:
        """Name of the index structure this shard runs."""
        return self.call("describe")

    def reset_head(self, root: Optional[Digest],
                   posting_roots: Optional[Dict[str, Optional[Digest]]] = None) -> None:
        """Reset the worker's working head (and history) at ``root``."""
        self.call("reset_head", root, posting_roots)

    def register_index(self, definition) -> Optional[Digest]:
        """Register a secondary index in the worker (definition is pickled)."""
        return self.call("register_index", definition)

    def posting_heads_state(self) -> Dict[str, Optional[Digest]]:
        """Posting roots of the worker's working head."""
        return self.call("posting_heads_state")

    def postings_for(
        self,
        primary_root: Optional[Digest],
        base_primary: Optional[Digest] = None,
        base_postings: Optional[Dict[str, Optional[Digest]]] = None,
    ) -> Dict[str, Optional[Digest]]:
        """Diff-driven posting roots for an already-built primary root."""
        return self.call("postings_for", primary_root, base_primary, base_postings)

    def write_at_indexed(
        self,
        root: Optional[Digest],
        puts: Dict[bytes, bytes],
        removes: Iterable[bytes],
        base_postings: Optional[Dict[str, Optional[Digest]]],
    ) -> Tuple[Optional[Digest], Dict[str, Optional[Digest]],
               List[Tuple[bytes, Optional[bytes], Optional[bytes]]]]:
        """Branch-commit write plus posting maintenance, in the worker.

        The third element is the worker-computed ``(key, old, new)``
        delta — it rides back over the pipe so the parent can feed the
        service's per-commit change log without re-reading the shard.
        """
        return self.call("write_at_indexed", root, puts, list(removes),
                         base_postings)

    def scan_range(self, root: Optional[Digest], start: Optional[bytes],
                   stop: Optional[bytes]) -> List[Tuple[bytes, bytes]]:
        """Range-scan ``root`` in the worker (pipe lock only)."""
        return self.call("scan_range", root, start, stop)

    def head_root(self) -> Optional[Digest]:
        """Root digest of the worker's working head."""
        return self.call("head_root")

    def lookup_head(self, key: bytes) -> Optional[bytes]:
        """Read ``key`` from the working head."""
        return self.call("lookup_head", key)

    def lookup_at(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        """Read ``key`` from a committed root (pipe lock only)."""
        return self.call("lookup_at", root, key)

    def apply_ops(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Apply a drained write batch in the worker."""
        self.call("flush_head", puts, list(removes))

    def load_batch(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Bulk-ingest a routed batch in the worker."""
        self.call("load_batch", puts, list(removes))

    def set_head(self, root: Optional[Digest],
                 posting_roots: Optional[Dict[str, Optional[Digest]]] = None) -> None:
        """Advance the worker's working head to ``root``."""
        self.call("set_head", root, posting_roots)

    def write_at(self, root: Optional[Digest], puts: Dict[bytes, bytes],
                 removes: Iterable[bytes]) -> Optional[Digest]:
        """Copy-on-write a batch onto ``root`` in the worker."""
        return self.call("write_at", root, puts, list(removes))

    def store_flush(self) -> None:
        """Durability barrier on the worker's backing store."""
        self.call("store_flush")

    def flush_begin(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Stage the *prepare* phase: dispatch ``flush_head``, don't wait.

        Acquires the pipe lock and holds it until :meth:`flush_finish`
        collects the reply, so nothing can interleave on the wire while
        the command is in flight.  Issuing ``flush_begin`` on every shard
        before any ``flush_finish`` is what overlaps the per-shard
        prepare work across worker processes.
        """
        self._pipe_lock.acquire()
        try:
            self._send("flush_head", (puts, list(removes)))
            self._staged = "flush_head"
        except BaseException:
            self._pipe_lock.release()
            raise

    def flush_finish(self) -> "RemoteShardView":
        """Collect a staged prepare's reply: the shard's new head view."""
        try:
            root, count = self._recv(self._staged or "flush_head")
        finally:
            self._staged = None
            self._pipe_lock.release()
        return RemoteShardView(self, root, count)

    def head_view(self) -> "RemoteShardView":
        """A view of the worker's current head."""
        root, count = self.call("head_state")
        return RemoteShardView(self, root, count)

    def view(self, root: Optional[Digest]) -> "RemoteShardView":
        """An immutable view of ``root``, served by the worker."""
        return RemoteShardView(self, root, None)

    def collect(self, protected_roots: Iterable[Optional[Digest]]) -> GCCounters:
        """Mark-and-sweep the worker's store down to the protected roots."""
        return self.call("collect", set(protected_roots))

    def history_copy(self) -> List[Optional[Digest]]:
        """Copy of the worker's root-version history."""
        return self.call("history_copy")

    def shard_metrics(self, include_records: bool = False) -> ShardMetrics:
        """The worker's counters, parent-side contention merged in."""
        metrics = self.call("metrics", include_records)
        metrics.contention = self.contention.copy()
        return metrics

    def reset_shard_counters(self) -> None:
        """Zero the shard's counters on both sides of the pipe."""
        self.contention = ContentionCounters()
        self.call("reset_counters")

    def storage_bytes(self) -> int:
        """Physical bytes in the worker's backing store."""
        return self.call("storage_bytes")

    def export_nodes(self) -> List[Tuple[Digest, bytes]]:
        """Every stored node as ``(digest, bytes)`` pairs (for parking)."""
        return self.call("export_nodes")

    def missing_digests(self, digests) -> List[Digest]:
        """Digests of ``digests`` the worker's store does not hold."""
        return self.call("missing_digests", list(digests))

    def fetch_nodes(self, digests) -> List[Tuple[Digest, bytes]]:
        """Canonical bytes for each requested digest, from the worker."""
        return self.call("fetch_nodes", list(digests))

    def import_nodes(self, pairs) -> int:
        """Verify and land transferred nodes in the worker's store."""
        return self.call("import_nodes", list(pairs))

    def set_fault(self, point: Optional[str]) -> None:
        """Arm (or clear, with ``None``) a worker kill-point."""
        self.call("set_fault", point)

    def close(self) -> None:
        """Shut the worker down: graceful command first, SIGTERM fallback."""
        if self._alive:
            try:
                self.call("shutdown")
            except ShardExecutionError:
                pass  # already dead: nothing graceful left to do
        self._alive = False
        self._process.join(timeout=5.0)
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=5.0)
        try:
            self._conn.close()
        except OSError:
            pass


class RemoteShardView:
    """An immutable read view of one shard root, served by its worker.

    The process-backend counterpart of
    :class:`~repro.core.interfaces.IndexSnapshot`: the same read protocol
    (``get``/``items``/``keys``/``values``/``to_dict``/``len``/``diff``/
    ``prove``/``update``), backed by command round trips instead of local
    tree walks.  Roots are content addresses, so the view stays valid as
    the shard's head advances; like any snapshot, reads can fail with
    ``NodeNotFoundError`` after garbage collection reclaims an
    unprotected root.
    """

    __slots__ = ("_handle", "root_digest", "_record_count")

    def __init__(self, handle: ProcessShardHandle, root: Optional[Digest],
                 record_count: Optional[int] = None):
        self._handle = handle
        #: Root digest of the viewed version (``None`` = empty shard).
        self.root_digest = root
        self._record_count = record_count

    @property
    def root_hex(self) -> Optional[str]:
        """Hex form of the root digest (``None`` for an empty shard)."""
        return self.root_digest.hex if self.root_digest is not None else None

    def get(self, key: KeyLike, default: Optional[bytes] = None) -> Optional[bytes]:
        """Return the value bound to ``key`` or ``default`` when absent."""
        value = self._handle.lookup_at(self.root_digest, coerce_key(key))
        return value if value is not None else default

    def __contains__(self, key: KeyLike) -> bool:
        return self.get(key) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` records in ascending key order."""
        return iter(self._handle.call("scan", self.root_digest))

    def items_range(self, start: Optional[bytes] = None,
                    stop: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate records with ``start <= key < stop``, keys ascending.

        The range is pruned worker-side (the engine's ``scan_range``), so
        only the matching records cross the pipe.
        """
        return iter(self._handle.call("scan_range", self.root_digest, start, stop))

    def keys(self) -> Iterator[bytes]:
        """Iterate keys in ascending order."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[bytes]:
        """Iterate values in ascending key order."""
        for _, value in self.items():
            yield value

    def to_dict(self) -> Dict[bytes, bytes]:
        """Materialize the full shard content as a dictionary."""
        return dict(self.items())

    def __len__(self) -> int:
        if self._record_count is None:
            self._record_count = self._handle.call("count_at", self.root_digest)
        return self._record_count

    def update(self, puts: Optional[Dict] = None, removes: Iterable = ()) -> "RemoteShardView":
        """Copy-on-write a batch onto this view; returns the new view."""
        coerced_puts = {coerce_key(k): v for k, v in (puts or {}).items()}
        coerced_removes = [coerce_key(k) for k in removes]
        new_root = self._handle.write_at(
            self.root_digest, coerced_puts, coerced_removes)
        return RemoteShardView(self._handle, new_root, None)

    def diff(self, other: "RemoteShardView") -> DiffResult:
        """Structural diff against another view of the *same* shard."""
        if not isinstance(other, RemoteShardView) or other._handle is not self._handle:
            raise InvalidParameterError(
                "RemoteShardView.diff requires a view of the same shard "
                "worker (cross-shard diffs go through the service)")
        return self._handle.call("diff", self.root_digest, other.root_digest)

    def prove(self, key: KeyLike) -> MerkleProof:
        """A Merkle proof for ``key`` under this view's root.

        Rebuilt from the worker's transportable proof parts; the
        index-specific binding check does not cross the process boundary,
        so verification falls back to the conservative containment check
        — the same trust model as proofs shipped over the wire protocol.
        """
        key_bytes = coerce_key(key)
        value, index_name, steps = self._handle.call(
            "prove", self.root_digest, key_bytes)
        return MerkleProof(
            key=key_bytes,
            value=value,
            steps=[ProofStep(node_bytes, level) for level, node_bytes in steps],
            index_name=index_name,
        )

    def node_digests(self):
        """The page (node digest) set reachable from this view's root."""
        return self._handle.call("node_digests", self.root_digest)

    def __repr__(self) -> str:
        root = self.root_hex
        return (f"RemoteShardView(shard={self._handle.shard_id}, "
                f"root={root[:12] if root else None})")


class ProcessShardBackend:
    """Forks one engine worker per shard and wires up the command pipes.

    The fork start method is required: engine builders are closures over
    the service's configuration (index factories, parked node seeds) that
    must reach the child by address-space inheritance, not pickling — and
    fork is also what makes per-example worker fleets cheap enough for
    the hypothesis-driven equivalence suite.
    """

    def __init__(self):
        try:
            self._context = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platforms
            raise InvalidParameterError(
                "backend='process' requires the fork start method "
                "(POSIX only)") from exc

    def start(self, engine_builders: List[Callable[[], ShardEngine]]
              ) -> List[ProcessShardHandle]:
        """Fork one worker per builder; returns the shard handles in order.

        Workers are daemonic, so stray processes die with the parent even
        if a test forgets to close the service.
        """
        handles: List[ProcessShardHandle] = []
        for shard_id, builder in enumerate(engine_builders):
            parent_conn, child_conn = self._context.Pipe(duplex=True)
            process = self._context.Process(
                target=shard_worker_main, args=(child_conn, builder),
                name=f"repro-shard-{shard_id}", daemon=True)
            process.start()
            child_conn.close()  # the worker owns its end now
            handles.append(ProcessShardHandle(shard_id, process, parent_conn))
        return handles
