"""Write coalescing: buffer puts/removes per shard, flush them batched.

The paper's write experiments (Table 2, Figures 6–7) apply updates in
batches of 1 000–16 000 records precisely because batched copy-on-write is
so much cheaper than single-record writes: a batch rewrites the union of
the touched root→leaf paths once, while N single-record writes rewrite N
full paths — most of them the same internal nodes over and over.

:class:`ShardWriteBatcher` brings that batching to the service's online
write path.  Incoming puts and removes are buffered per shard; a second
write to the same key *coalesces* (replaces the buffered operation, so a
hot key costs one node rewrite per flush no matter how often it is
updated — significant under the Zipfian skew the YCSB workloads model).
When a shard's buffer reaches ``flush_threshold`` operations the service
flushes it through the index's batched :meth:`write` path.

Thread safety
-------------
Every public method is safe to call from any thread.  Each shard's buffer
is guarded by its own lock, so enqueues on different shards never contend
with each other, and a flush (:meth:`take`) on one shard can run
concurrently with enqueues on every other shard.  A flush concurrent with
an enqueue *on the same shard* is also well-defined: :meth:`take` swaps
the buffers out atomically, so the racing operation lands either in the
batch being flushed or in the fresh buffer — never in both, never lost.
Operation counters are kept per shard (updated under that shard's lock)
and summed on read, so they stay exact under concurrency.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Set, Tuple

from repro.core.errors import InvalidParameterError


class ShardWriteBatcher:
    """Per-shard write buffers with last-writer-wins coalescing.

    The batcher only buffers; it never touches an index.  The owning
    service decides when to call :meth:`take` and apply the result — that
    keeps flush policy (thresholds, explicit commits, shutdown) in one
    place.

    Attributes
    ----------
    buffered_ops:
        Total operations accepted (including ones later coalesced away).
    coalesced_ops:
        Operations that replaced a pending operation on the same key and
        therefore cost no extra node rewrite at flush time.
    """

    def __init__(self, num_shards: int, flush_threshold: int = 1024):
        if num_shards <= 0:
            raise InvalidParameterError("num_shards must be positive")
        if flush_threshold <= 0:
            raise InvalidParameterError("flush_threshold must be positive")
        self.num_shards = num_shards
        self.flush_threshold = flush_threshold
        self._locks: List[threading.Lock] = [threading.Lock() for _ in range(num_shards)]
        self._puts: List[Dict[bytes, bytes]] = [{} for _ in range(num_shards)]
        self._removes: List[Set[bytes]] = [set() for _ in range(num_shards)]
        self._buffered_ops: List[int] = [0] * num_shards
        self._coalesced_ops: List[int] = [0] * num_shards

    # -- counters ----------------------------------------------------------

    @property
    def buffered_ops(self) -> int:
        """Total operations accepted across all shards."""
        return sum(self._buffered_ops)

    @property
    def coalesced_ops(self) -> int:
        """Operations absorbed by last-writer-wins coalescing."""
        return sum(self._coalesced_ops)

    def reset_counters(self) -> None:
        """Zero the per-shard operation counters (buffers are untouched)."""
        for shard in range(self.num_shards):
            with self._locks[shard]:
                self._buffered_ops[shard] = 0
                self._coalesced_ops[shard] = 0

    # -- buffering ---------------------------------------------------------

    def buffer_put(self, shard: int, key: bytes, value: bytes) -> bool:
        """Buffer ``key = value`` on ``shard``; return True when flush is due."""
        with self._locks[shard]:
            puts = self._puts[shard]
            removes = self._removes[shard]
            if key in puts or key in removes:
                self._coalesced_ops[shard] += 1
            removes.discard(key)
            puts[key] = value
            self._buffered_ops[shard] += 1
            return len(puts) + len(removes) >= self.flush_threshold

    def buffer_put_many(self, shard: int, pairs: "List[Tuple[bytes, bytes]]") -> bool:
        """Buffer many puts on ``shard`` under one lock acquisition.

        ``pairs`` are applied in order (last-writer-wins within the call,
        exactly like repeated :meth:`buffer_put`), but the shard lock is
        taken once and the flush decision is made once — after the whole
        batch — so a caller flushes the shard at most once per call
        instead of potentially once per key.
        """
        if not pairs:
            return False
        with self._locks[shard]:
            puts = self._puts[shard]
            removes = self._removes[shard]
            coalesced = 0
            for key, value in pairs:
                if key in puts or key in removes:
                    coalesced += 1
                removes.discard(key)
                puts[key] = value
            self._coalesced_ops[shard] += coalesced
            self._buffered_ops[shard] += len(pairs)
            return len(puts) + len(removes) >= self.flush_threshold

    def buffer_remove(self, shard: int, key: bytes) -> bool:
        """Buffer a remove of ``key`` on ``shard``; return True when flush is due."""
        with self._locks[shard]:
            puts = self._puts[shard]
            removes = self._removes[shard]
            if key in puts or key in removes:
                self._coalesced_ops[shard] += 1
            puts.pop(key, None)
            removes.add(key)
            self._buffered_ops[shard] += 1
            return len(puts) + len(removes) >= self.flush_threshold

    # -- inspection --------------------------------------------------------

    def pending_count(self, shard: int) -> int:
        """Number of distinct pending operations on ``shard``."""
        with self._locks[shard]:
            return len(self._puts[shard]) + len(self._removes[shard])

    def total_pending(self) -> int:
        """Distinct pending operations across all shards."""
        return sum(self.pending_count(s) for s in range(self.num_shards))

    def pending_value(self, shard: int, key: bytes) -> Tuple[bool, Optional[bytes]]:
        """Look ``key`` up in the pending buffer (read-your-writes).

        Returns ``(True, value)`` when a put is pending, ``(True, None)``
        when a remove is pending, and ``(False, None)`` when the buffer
        holds nothing for the key and the caller must consult the index.
        """
        with self._locks[shard]:
            puts = self._puts[shard]
            if key in puts:
                return True, puts[key]
            if key in self._removes[shard]:
                return True, None
            return False, None

    # -- draining ----------------------------------------------------------

    def take(self, shard: int) -> Tuple[Dict[bytes, bytes], Set[bytes]]:
        """Atomically drain and return ``(puts, removes)`` pending on ``shard``."""
        with self._locks[shard]:
            puts = self._puts[shard]
            removes = self._removes[shard]
            self._puts[shard] = {}
            self._removes[shard] = set()
            return puts, removes

    def clear(self) -> None:
        """Drop every pending operation on every shard."""
        for shard in range(self.num_shards):
            with self._locks[shard]:
                self._puts[shard] = {}
                self._removes[shard] = set()

    def __repr__(self) -> str:
        return (
            f"ShardWriteBatcher(num_shards={self.num_shards}, "
            f"flush_threshold={self.flush_threshold}, pending={self.total_pending()})"
        )
