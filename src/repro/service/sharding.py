"""Hash-based key routing across index shards.

The service layer partitions the key space across N independent index
instances ("shards") so that every shard holds roughly ``1/N`` of the
records and every write batch splits into N smaller per-shard batches.
Routing must be *stable*: the same key must land on the same shard in
every process and every run, otherwise historical versions could not be
read back.  Python's builtin ``hash()`` is salted per process, so the
router hashes keys with BLAKE2b instead (fast, keyed-free, deterministic).

Routing is also *uniform*: BLAKE2b output is indistinguishable from
random, so even adversarially clustered key sets (sequential IDs, shared
prefixes) spread evenly — the same argument the paper's MBT makes for
hashing keys into buckets.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Tuple

from repro.core.errors import InvalidParameterError

_ROUTE_DIGEST_BYTES = 8


def route_key(key: bytes, num_shards: int) -> int:
    """Map ``key`` to a shard id in ``[0, num_shards)`` deterministically."""
    if num_shards == 1:
        return 0
    digest = hashlib.blake2b(key, digest_size=_ROUTE_DIGEST_BYTES).digest()
    return int.from_bytes(digest, "big") % num_shards


class ShardRouter:
    """Stable hash partitioner assigning keys to ``num_shards`` shards."""

    def __init__(self, num_shards: int):
        if num_shards <= 0:
            raise InvalidParameterError("num_shards must be positive")
        self.num_shards = num_shards

    def shard_of(self, key: bytes) -> int:
        """The shard id owning ``key``."""
        return route_key(key, self.num_shards)

    def partition(self, keys: Iterable[bytes]) -> List[List[bytes]]:
        """Split ``keys`` into per-shard lists (index = shard id)."""
        buckets: List[List[bytes]] = [[] for _ in range(self.num_shards)]
        for key in keys:
            buckets[self.shard_of(key)].append(key)
        return buckets

    def partition_indexed(self, keys: Iterable[bytes]) -> List[List[Tuple[int, bytes]]]:
        """Split ``keys`` into per-shard ``(position, key)`` lists.

        ``position`` is the key's index in the input iteration order, so a
        caller that fans per-shard work out to threads can reassemble the
        per-shard results into one list matching the input order — the
        deterministic-ordering contract of
        :class:`repro.service.executor.ServiceExecutor`.
        """
        buckets: List[List[Tuple[int, bytes]]] = [[] for _ in range(self.num_shards)]
        for position, key in enumerate(keys):
            buckets[self.shard_of(key)].append((position, key))
        return buckets

    def __repr__(self) -> str:
        return f"ShardRouter(num_shards={self.num_shards})"
