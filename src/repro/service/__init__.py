"""Sharded versioned key-value service over the SIRI indexes.

This package is the engine between the repository API (:mod:`repro.api`,
the public surface) and the bare index structures: it partitions keys
across independent index shards, batches and coalesces writes, caches
node reads, and names cross-shard versions — branch-qualified commits in
a journalled DAG — so any committed state can be read back, diffed, or
merged later.

* :mod:`repro.service.sharding` — deterministic hash routing of keys to
  shards (:class:`ShardRouter`).
* :mod:`repro.service.batcher` — per-shard write buffering with
  last-writer-wins coalescing (:class:`ShardWriteBatcher`).
* :mod:`repro.service.service` — the service itself
  (:class:`VersionedKVService`), cross-shard views
  (:class:`ServiceSnapshot`), commits (:class:`ServiceCommit`) and
  metrics (:class:`ServiceMetrics`).
* Durability: constructed with ``directory=``, the service shards over
  the append-only segment engine
  (:class:`~repro.storage.segment.SegmentNodeStore`) with a fsynced
  commit manifest, gains ``open()/close()/reopen()`` lifecycle and a
  ``retain_versions=N`` policy whose expired versions are reclaimed by
  :meth:`~repro.service.service.VersionedKVService.collect_garbage`
  (mark-and-sweep compaction, :mod:`repro.storage.gc`) — see
  ``docs/STORAGE.md``.
* :mod:`repro.service.engine` — the self-contained per-shard core
  (:class:`ShardEngine`: one index + store + cache, no locks, no
  transport) and its in-process handle (:class:`ThreadShardHandle`).
* :mod:`repro.service.process` — the process-parallel shard backend
  (:class:`ProcessShardBackend`): one forked worker process per shard,
  commands over pickled per-shard pipes, so shard work escapes the GIL.
  Select it with ``VersionedKVService(..., backend="process")``; the
  default ``backend="thread"`` keeps every shard in-process.
* :mod:`repro.service.executor` — the concurrent execution engine
  (:class:`ServiceExecutor`): a worker pool fanning multi-key gets,
  scans, merged diffs, bulk writes and commits out over the shards with
  deterministic result ordering and fail-fast error handling
  (:class:`ShardExecutionError`).  Works unchanged on both backends.

Quickstart::

    from repro.indexes import POSTree
    from repro.service import VersionedKVService

    service = VersionedKVService(POSTree, num_shards=4, batch_size=1000)
    service.put(b"user:1", b"alice")
    v0 = service.commit("signup").version
    service.put(b"user:1", b"alice v2")
    service.commit("rename")
    assert service.get(b"user:1") == b"alice v2"
    assert service.get(b"user:1", version=v0) == b"alice"
"""

from repro.service.batcher import ShardWriteBatcher
from repro.service.engine import ShardEngine, ThreadShardHandle
from repro.service.executor import ServiceExecutor, ShardExecutionError
from repro.service.process import ProcessShardBackend
from repro.service.service import (
    ServiceCommit,
    ServiceMetrics,
    ServiceSnapshot,
    ShardMetrics,
    VersionedKVService,
    diff_service_snapshots,
)
from repro.service.sharding import ShardRouter, route_key

__all__ = [
    "VersionedKVService",
    "ServiceExecutor",
    "ShardExecutionError",
    "ShardEngine",
    "ThreadShardHandle",
    "ProcessShardBackend",
    "ServiceSnapshot",
    "ServiceCommit",
    "ServiceMetrics",
    "ShardMetrics",
    "ShardRouter",
    "ShardWriteBatcher",
    "route_key",
    "diff_service_snapshots",
]
