"""The single-shard engine: one partition's index, store, cache and head.

:class:`ShardEngine` is the self-contained per-shard core extracted from
:class:`~repro.service.service.VersionedKVService`: one index instance
over one (optionally cached) node store, plus the shard's mutable serving
state — the working head snapshot, the per-flush root history and the
flush counters.  The engine is deliberately **lock-free and
transport-free**: it assumes its caller serializes mutations, and every
method speaks plain picklable values (digests, byte strings, op batches),
so exactly the same engine runs in two placements:

* **in-process** (``backend="thread"``) — wrapped by
  :class:`ThreadShardHandle`, which adds the shard mutex and contention
  accounting the service's concurrency model requires;
* **out-of-process** (``backend="process"``) — owned by a forked worker
  (:mod:`repro.service.process`) that executes pickled engine commands
  arriving over a per-shard command pipe, escaping the GIL for the
  hash/encode-heavy flush and lookup work.

Running the *same* engine code under both backends is what makes the
cross-backend differential suite meaningful: byte-identical shard roots
and commit digests fall out of construction, and the equivalence tests
(``tests/service/test_backend_equivalence.py``) verify it end to end.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.diff import DiffResult, diff_snapshots
from repro.core.errors import SyncIntegrityError
from repro.core.interfaces import IndexSnapshot, SIRIIndex
from repro.core.metrics import CacheCounters, ContentionCounters, GCCounters
from repro.hashing.digest import Digest
from repro.query.definition import IndexDefinition, encode_posting_key
from repro.storage.cache import CachingNodeStore
from repro.storage.gc import GarbageCollector, reachable_digests
from repro.storage.store import NodeStore



@dataclass
class ShardMetrics:
    """Point-in-time counters for one shard."""

    shard_id: int
    flushes: int
    nodes_written: int
    nodes_read: int
    cache: CacheCounters
    records: Optional[int] = None
    #: Lock acquisition/contention accounting for this shard's mutex.
    contention: ContentionCounters = field(default_factory=ContentionCounters)
    #: Cumulative seconds spent applying this shard's flushes (index time
    #: only, excluding lock waits — those are in ``contention``).
    flush_seconds: float = 0.0


class ShardEngine:
    """One partition: an index over its own (optionally cached) store.

    Owns the shard's complete serving state — backing store, optional
    read-through cache, index instance, working head snapshot and root
    history — but **no lock**: callers (the thread handle's mutex, or the
    one-command-at-a-time worker loop of the process backend) serialize
    mutations.  Every argument and return value is picklable, so the full
    method surface doubles as the process backend's command set.
    """

    __slots__ = ("shard_id", "backing", "store", "cache", "index", "head",
                 "history", "flushes", "flush_seconds", "index_defs",
                 "posting_heads")

    def __init__(self, shard_id: int, backing: NodeStore, store: NodeStore,
                 cache: Optional[CachingNodeStore], index: SIRIIndex):
        self.shard_id = shard_id
        self.backing = backing
        self.store = store
        self.cache = cache
        self.index = index
        #: Registered secondary indexes (name -> IndexDefinition).  Posting
        #: trees are ordinary trees of ``self.index`` living in the same
        #: store; ``posting_heads`` tracks their roots alongside the
        #: primary working head and upholds the invariant
        #: ``posting_heads.keys() == index_defs.keys()``.
        self.index_defs: Dict[str, IndexDefinition] = {}
        self.posting_heads: Dict[str, Optional[Digest]] = {}
        # A *counted* head costs the flush path nothing: the SIRI indexes
        # report the record delta as a free by-product of each batched
        # write (SIRIIndex.write_counted), so record_count() is O(1) on a
        # freshly built service.  The count is unknown (None) after the
        # head is reset from journalled roots — open()/branch commits —
        # where the first len() falls back to one iteration and caches.
        self.head: IndexSnapshot = index.empty_snapshot()
        #: Root digest after every flush, oldest first (the shard's own
        #: root-version history; service commits reference entries of it).
        self.history: List[Optional[Digest]] = [index.empty_root()]
        self.flushes = 0
        self.flush_seconds = 0.0

    # -- identity ----------------------------------------------------------

    def describe(self) -> str:
        """Name of the index structure this shard runs (for reprs/logs)."""
        return self.index.name

    # -- head state --------------------------------------------------------

    def reset_head(self, root: Optional[Digest],
                   posting_roots: Optional[Dict[str, Optional[Digest]]] = None) -> None:
        """Reset the working head (and restart history) at ``root``.

        Used on open/recovery: the root comes from the journal, so the
        record count is unknown until first use.  ``posting_roots`` are
        the journalled posting roots for this shard; any registered index
        missing from them (a commit that predates the index) is rebuilt
        from the primary content.
        """
        self.head = self.index.snapshot(root)
        self.history = [root]
        self.posting_heads = self._resolve_posting_heads(root, posting_roots)

    def head_root(self) -> Optional[Digest]:
        """Root digest of the current working head."""
        return self.head.root_digest

    def head_state(self) -> Tuple[Optional[Digest], Optional[int]]:
        """``(root, cached record count)`` of the working head.

        The count is ``None`` when not cached; remote head views use it to
        answer ``len()`` without a second round trip when available.
        """
        return self.head.root_digest, self.head._record_count

    def set_head(self, root: Optional[Digest],
                 posting_roots: Optional[Dict[str, Optional[Digest]]] = None) -> None:
        """Advance the working head to ``root`` and append it to history.

        ``posting_roots`` carries the matching posting roots when the
        caller knows them (a just-journalled commit); registered indexes
        missing from them are rebuilt from the primary content.
        """
        self.head = self.index.snapshot(root)
        self.history.append(root)
        self.posting_heads = self._resolve_posting_heads(root, posting_roots)

    # -- secondary indexes (posting trees) ---------------------------------

    def register_index(self, definition: IndexDefinition) -> Optional[Digest]:
        """Register a secondary index and materialize its working postings.

        The posting tree for the current working head is bulk-built on
        the spot (O(shard content)); afterwards every write path
        maintains it incrementally.  Returns the initial posting root.
        """
        self.index_defs[definition.name] = definition
        root = self._build_posting_root(definition.name, self.head.root_digest)
        self.posting_heads[definition.name] = root
        self.store_flush()
        return root

    def posting_heads_state(self) -> Dict[str, Optional[Digest]]:
        """Posting root per registered index for the working head."""
        return dict(self.posting_heads)

    def _resolve_posting_heads(
        self,
        primary_root: Optional[Digest],
        posting_roots: Optional[Dict[str, Optional[Digest]]],
    ) -> Dict[str, Optional[Digest]]:
        """Posting roots for every registered index at ``primary_root``.

        Provided roots are trusted (they come from a commit record);
        registered indexes absent from them are rebuilt from content so a
        head predating the index registration still answers queries.
        """
        provided = posting_roots or {}
        resolved: Dict[str, Optional[Digest]] = {}
        built = False
        for name in self.index_defs:
            if name in provided:
                resolved[name] = provided[name]
            else:
                resolved[name] = self._build_posting_root(name, primary_root)
                built = True
        if built:
            self.store_flush()
        return resolved

    def _build_posting_root(self, name: str,
                            primary_root: Optional[Digest]) -> Optional[Digest]:
        """Bulk-build index ``name``'s posting tree from primary content.

        Postings are *covering*: each one stores the primary record's
        value, so index reads answer from the posting tree's contiguous
        range alone — no per-result point reads back into the primary
        tree.
        """
        definition = self.index_defs[name]
        records: List[Tuple[bytes, bytes]] = []
        for key, value in self.index.iterate(primary_root):
            for index_key in definition.keys_for(value):
                records.append((encode_posting_key(index_key, key), value))
        records.sort()
        return self.index.bulk_build(records)

    def _changed_entries(
        self,
        base_primary: Optional[Digest],
        puts: Dict[bytes, bytes],
        removes: Iterable[bytes],
    ) -> List[Tuple[bytes, Optional[bytes], Optional[bytes]]]:
        """``(key, old value, new value)`` for a batch against a base root.

        Remove-wins (matching :meth:`SIRIIndex.write`); keys whose value
        does not change are dropped, so postings never churn on no-op
        writes.
        """
        removed = set(removes)
        changed: List[Tuple[bytes, Optional[bytes], Optional[bytes]]] = []
        for key in sorted(set(puts) | removed):
            new = None if key in removed else puts[key]
            old = self.index.lookup(base_primary, key)
            if old != new:
                changed.append((key, old, new))
        return changed

    def _advance_postings(
        self,
        base_postings: Dict[str, Optional[Digest]],
        changed: Iterable[Tuple[bytes, Optional[bytes], Optional[bytes]]],
    ) -> Dict[str, Optional[Digest]]:
        """Apply value changes to every posting tree; returns the new roots.

        For each changed primary key the old value's index keys that
        disappear become posting removals, and every index key of the new
        value becomes a posting insertion carrying the new value —
        postings are covering, so a surviving index key still needs its
        stored copy refreshed.  This is the incremental commit-time
        maintenance step.
        """
        changed = list(changed)
        result: Dict[str, Optional[Digest]] = {}
        for name, definition in self.index_defs.items():
            posting_puts: Dict[bytes, bytes] = {}
            posting_removes: List[bytes] = []
            for key, old, new in changed:
                old_keys = definition.keys_for(old)
                new_keys = definition.keys_for(new)
                for index_key in old_keys:
                    if index_key not in new_keys:
                        posting_removes.append(encode_posting_key(index_key, key))
                for index_key in new_keys:
                    posting_puts[encode_posting_key(index_key, key)] = new
            if not posting_puts and not posting_removes:
                # Untouched index: keep the base root (skipping the write
                # also guarantees root stability for no-op batches).
                result[name] = base_postings.get(name)
            else:
                result[name] = self.index.write(
                    base_postings.get(name), posting_puts, posting_removes)
        return result

    def postings_for(
        self,
        primary_root: Optional[Digest],
        base_primary: Optional[Digest] = None,
        base_postings: Optional[Dict[str, Optional[Digest]]] = None,
    ) -> Dict[str, Optional[Digest]]:
        """Posting roots matching ``primary_root``, diff-driven from a base.

        Cost is proportional to the structural diff between
        ``base_primary`` and ``primary_root`` (O(content) from an empty
        base).  Registered indexes missing from ``base_postings`` are
        first rebuilt at ``base_primary``.  Used when roots arrive
        *already built* — replication publishes, fork-point recovery —
        so postings are always a pure function of the primary content.
        """
        if not self.index_defs:
            return {}
        base = self._resolve_posting_heads(base_primary, base_postings)
        changed = [(key, old, new) for key, old, new
                   in self.index.iterate_diff(base_primary, primary_root)]
        roots = self._advance_postings(base, changed)
        self.store_flush()
        return roots

    def write_at_indexed(
        self,
        root: Optional[Digest],
        puts: Dict[bytes, bytes],
        removes: Iterable[bytes],
        base_postings: Optional[Dict[str, Optional[Digest]]],
    ) -> Tuple[Optional[Digest], Dict[str, Optional[Digest]],
               List[Tuple[bytes, Optional[bytes], Optional[bytes]]]]:
        """:meth:`write_at` plus incremental posting maintenance.

        The branch-commit primitive when secondary indexes exist: applies
        the batch onto ``root`` and advances the matching posting trees
        from the staged delta (old-value lookups against ``root``).
        Returns ``(new primary root, new posting roots, changed)`` where
        ``changed`` is the key-sorted ``(key, old, new)`` delta the batch
        actually made against ``root`` — computed here anyway for posting
        maintenance, and recycled by the service as the commit's change
        log so feeds can skip the structural diff for recent commits.
        """
        removes = list(removes)
        new_root = self.index.write(root, puts, removes)
        base = self._resolve_posting_heads(root, base_postings)
        changed = self._changed_entries(root, puts, removes)
        postings = self._advance_postings(base, changed)
        return new_root, postings, changed

    # -- writes ------------------------------------------------------------

    def apply_ops(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Apply one drained write batch to the head (a no-op when empty).

        This is the flush body: the batch goes through the index's batched
        copy-on-write path, then the backing store's buffered append path
        is flushed (the durability barrier — a SegmentNodeStore writes the
        DATA records plus a COMMIT marker and fsyncs), and the new root is
        appended to the shard's history.
        """
        removes = list(removes)
        if not puts and not removes:
            return
        started = time.perf_counter()
        if self.index_defs:
            self.posting_heads = self._advance_postings(
                self.posting_heads,
                self._changed_entries(self.head.root_digest, puts, removes))
        self.head = self.head.update(puts, removes=removes)
        self.store_flush()
        self.flush_seconds += time.perf_counter() - started
        self.history.append(self.head.root_digest)
        self.flushes += 1

    def flush_head(self, puts: Dict[bytes, bytes],
                   removes: Iterable[bytes]) -> Tuple[Optional[Digest], Optional[int]]:
        """Apply a batch and return the resulting :meth:`head_state`.

        The one-round-trip command behind the commit protocol's *prepare*
        phase: after it returns, the batch is applied **and** durable, and
        the returned root is the shard's contribution to the cut.
        """
        self.apply_ops(puts, removes)
        return self.head_state()

    def load_batch(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Bulk-ingest an already-routed batch as one batched write.

        On an empty shard this is the index's O(N) bottom-up bulk builder.
        Keys are already coerced: write through the index directly
        (``head.update`` would re-coerce and rebuild the whole batch
        dict), carrying the head's cached record count through the batch.
        """
        started = time.perf_counter()
        removes = list(removes)
        if self.index_defs:
            self.posting_heads = self._advance_postings(
                self.posting_heads,
                self._changed_entries(self.head.root_digest, puts, removes))
        new_root, delta = self.index.write_counted(
            self.head.root_digest, puts, list(removes))
        count = self.head._record_count
        new_count = count + delta if (count is not None and delta is not None) else None
        self.head = self.index.snapshot(new_root, record_count=new_count)
        self.store_flush()
        self.flush_seconds += time.perf_counter() - started
        self.history.append(self.head.root_digest)
        self.flushes += 1

    def write_at(self, root: Optional[Digest], puts: Dict[bytes, bytes],
                 removes: Iterable[bytes]) -> Optional[Digest]:
        """Copy-on-write a batch onto an arbitrary ``root``; head untouched.

        The branch-commit primitive: nodes land in the store's buffered
        append path (flushed by :meth:`store_flush` before the journal
        names them) and no other reader observes anything until the new
        root is published.
        """
        return self.index.write(root, puts, list(removes))

    def store_flush(self) -> None:
        """Push the backing store's buffered appends to durable storage."""
        flush = getattr(self.backing, "flush", None)
        if flush is not None:
            flush()

    # -- reads -------------------------------------------------------------

    def lookup_head(self, key: bytes) -> Optional[bytes]:
        """Read ``key`` from the working head (``None`` when absent)."""
        return self.index.lookup(self.head.root_digest, key)

    def lookup_at(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        """Read ``key`` from an arbitrary (usually committed) root."""
        return self.index.lookup(root, key)

    def scan(self, root: Optional[Digest]) -> List[Tuple[bytes, bytes]]:
        """Materialize every record under ``root`` in ascending key order."""
        return list(self.index.snapshot(root).items())

    def scan_range(self, root: Optional[Digest], start: Optional[bytes],
                   stop: Optional[bytes]) -> List[Tuple[bytes, bytes]]:
        """Materialize records with ``start <= key < stop`` under ``root``.

        Pruned by the index where the structure allows it (the ranged
        trees descend only subtrees overlapping the window); the query
        layer uses this on posting-tree roots for lookups and ranges.
        """
        return list(self.index.iterate_range(root, start, stop))

    def count_at(self, root: Optional[Digest]) -> int:
        """Number of records under ``root``."""
        return len(self.index.snapshot(root))

    def diff(self, root_a: Optional[Digest], root_b: Optional[Digest]) -> DiffResult:
        """Structural diff between two of this shard's roots."""
        return diff_snapshots(self.index.snapshot(root_a), self.index.snapshot(root_b))

    def prove(self, root: Optional[Digest],
              key: bytes) -> Tuple[Optional[bytes], str, List[Tuple[int, bytes]]]:
        """Build a Merkle proof for ``key`` under ``root``, as plain parts.

        Returns ``(value, index name, [(level, node bytes), ...])`` — the
        transportable pieces of a :class:`~repro.core.proof.MerkleProof`.
        The index-specific ``binding_check`` closure is deliberately left
        behind (it binds the index instance and cannot cross a process
        boundary); reconstructed proofs fall back to the conservative
        containment check, exactly like proofs returned over the wire
        protocol (:meth:`repro.server.protocol.WireProof.to_merkle_proof`).
        """
        proof = self.index.snapshot(root).prove(key)
        return (proof.value, proof.index_name,
                [(step.level, step.node_bytes) for step in proof.steps])

    def node_digests(self, root: Optional[Digest]) -> Set[Digest]:
        """The page (node digest) set reachable from ``root``."""
        return self.index.snapshot(root).node_digests()

    # -- maintenance -------------------------------------------------------

    def collect(self, protected_roots: Iterable[Optional[Digest]]) -> GCCounters:
        """Mark-and-sweep this shard's store down to the protected roots.

        ``protected_roots`` are this shard's entries of every retained
        commit/branch head/pin; the current working head is always added.
        The read-through cache is invalidated (a stale cache must not
        resurrect swept nodes) and the root history restarts at the head,
        since un-committed intermediate flush roots may now dangle.
        """
        roots = set(protected_roots)
        roots.add(self.head.root_digest)
        roots.update(self.posting_heads.values())
        live = reachable_digests(self.index, roots)
        delta = GarbageCollector(self.backing).collect(live)
        if self.cache is not None:
            self.cache.invalidate()
        self.history = [self.head.root_digest]
        return delta

    def history_copy(self) -> List[Optional[Digest]]:
        """A copy of the shard's root-version history, oldest first."""
        return list(self.history)

    def metrics(self, include_records: bool = False) -> ShardMetrics:
        """This shard's counters (contention is filled in by the handle)."""
        cache = (CacheCounters.from_cache(self.cache)
                 if self.cache is not None else CacheCounters())
        return ShardMetrics(
            shard_id=self.shard_id,
            flushes=self.flushes,
            nodes_written=getattr(self.index, "nodes_written", 0),
            nodes_read=getattr(self.index, "nodes_read", 0),
            cache=cache,
            records=len(self.head) if include_records else None,
            flush_seconds=self.flush_seconds,
        )

    def reset_counters(self) -> None:
        """Zero flush/node/cache counters (state is untouched)."""
        self.flushes = 0
        self.flush_seconds = 0.0
        if hasattr(self.index, "reset_counters"):
            self.index.reset_counters()
        if self.cache is not None:
            self.cache.cache_hits = 0
            self.cache.cache_misses = 0

    def storage_bytes(self) -> int:
        """Physical bytes in this shard's backing store (unique nodes)."""
        return self.backing.total_bytes()

    def export_nodes(self) -> List[Tuple[Digest, bytes]]:
        """Every node in the backing store, as ``(digest, bytes)`` pairs.

        Used by the process backend's close path to park an in-memory
        shard's content in the parent, so ``reopen()`` restores committed
        state without a persistent medium — mirroring the thread backend
        parking its store objects.
        """
        return [(digest, self.store.get_bytes(digest))
                for digest in self.backing.digests()]

    # -- replication (node transfer by digest) -----------------------------

    def missing_digests(self, digests: Sequence[Digest]) -> List[Digest]:
        """The subset of ``digests`` this shard's store does not hold.

        The receiving half of the structural frontier: a sync session asks
        each shard which of the advertised child digests it already owns,
        and prunes the descent at every subtree whose root is present
        (store invariant: a stored digest implies its whole subtree is
        stored — imports land children before parents).
        """
        return [d for d in digests if not self.store.contains(d)]

    def fetch_nodes(self, digests: Sequence[Digest]) -> List[Tuple[Digest, bytes]]:
        """Read the canonical bytes of each requested node digest.

        The sending half of the frontier.  Raises
        :class:`~repro.core.errors.NodeNotFoundError` when a requested
        digest is absent — a sync peer only requests digests this side
        advertised, so a miss means local data loss, not a protocol race.
        """
        return [(digest, self.store.get_bytes(digest)) for digest in digests]

    def import_nodes(self, pairs: Sequence[Tuple[Digest, bytes]]) -> int:
        """Verify and land transferred nodes; returns how many were new.

        Trust model: every pair is re-hashed and compared against its
        claimed digest *before any byte is stored* — a lying source
        raises :class:`~repro.core.errors.SyncIntegrityError` and the
        store is untouched.  After the batch lands, the backing store is
        flushed, making the batch a durable resume checkpoint: an
        interrupted sync never re-pays for nodes already imported.
        """
        hash_function = self.store.hash_function
        for digest, data in pairs:
            if hash_function.hash(data) != digest:
                raise SyncIntegrityError(digest)
        new = 0
        for digest, data in pairs:
            if self.store.put_bytes(digest, data):
                new += 1
        self.store_flush()
        return new

    def close_store(self) -> None:
        """Close the backing store, if it has a lifecycle."""
        close = getattr(self.backing, "close", None)
        if close is not None:
            close()


class ThreadShardHandle:
    """In-process shard handle: a :class:`ShardEngine` behind the shard mutex.

    This is the ``backend="thread"`` placement.  The handle adds what the
    engine deliberately lacks — the per-shard lock and its contention
    counters — and exposes the command surface the service routes through,
    so the service code is identical across backends.  Acquire the lock
    via the handle's context-manager protocol (``with handle:``) so every
    wait is recorded in the contention counters.
    """

    __slots__ = ("engine", "lock", "contention")

    def __init__(self, engine: ShardEngine):
        self.engine = engine
        self.lock = threading.Lock()
        self.contention = ContentionCounters()

    # -- locking -----------------------------------------------------------

    def __enter__(self) -> "ThreadShardHandle":
        # Fast path: an uncontended acquire costs one non-blocking attempt.
        if not self.lock.acquire(blocking=False):
            started = time.perf_counter()
            self.lock.acquire()
            self.contention.contended += 1
            self.contention.wait_seconds += time.perf_counter() - started
        self.contention.acquisitions += 1
        return self

    def __exit__(self, *exc_info) -> None:
        self.lock.release()

    # -- direct engine access (tests, benchmarks, storage drills) ----------

    @property
    def shard_id(self) -> int:
        """This shard's id (its position in the service's shard list)."""
        return self.engine.shard_id

    @property
    def backing(self) -> NodeStore:
        """The shard's backing node store (under the cache, if any)."""
        return self.engine.backing

    @property
    def store(self) -> NodeStore:
        """The store the index writes through (the cache when enabled)."""
        return self.engine.store

    @property
    def cache(self) -> Optional[CachingNodeStore]:
        """The shard's read-through cache (``None`` when disabled)."""
        return self.engine.cache

    @property
    def index(self) -> SIRIIndex:
        """The shard's index instance."""
        return self.engine.index

    @property
    def head(self) -> IndexSnapshot:
        """The shard's working head snapshot."""
        return self.engine.head

    @property
    def history(self) -> List[Optional[Digest]]:
        """The shard's root-version history (live list — copy under lock)."""
        return self.engine.history

    # -- command surface (shared with ProcessShardHandle) ------------------

    def describe(self) -> str:
        """Name of the index structure this shard runs."""
        return self.engine.describe()

    def reset_head(self, root: Optional[Digest],
                   posting_roots: Optional[Dict[str, Optional[Digest]]] = None) -> None:
        """Reset the working head (and history) at ``root``."""
        self.engine.reset_head(root, posting_roots)

    def register_index(self, definition: IndexDefinition) -> Optional[Digest]:
        """Register a secondary index (caller holds the lock)."""
        return self.engine.register_index(definition)

    def posting_heads_state(self) -> Dict[str, Optional[Digest]]:
        """Posting roots of the working head (caller holds the lock)."""
        return self.engine.posting_heads_state()

    def postings_for(
        self,
        primary_root: Optional[Digest],
        base_primary: Optional[Digest] = None,
        base_postings: Optional[Dict[str, Optional[Digest]]] = None,
    ) -> Dict[str, Optional[Digest]]:
        """Diff-driven posting roots for an already-built primary root."""
        return self.engine.postings_for(primary_root, base_primary, base_postings)

    def write_at_indexed(
        self,
        root: Optional[Digest],
        puts: Dict[bytes, bytes],
        removes: Iterable[bytes],
        base_postings: Optional[Dict[str, Optional[Digest]]],
    ) -> Tuple[Optional[Digest], Dict[str, Optional[Digest]],
               List[Tuple[bytes, Optional[bytes], Optional[bytes]]]]:
        """Branch-commit write plus posting maintenance (caller holds the lock)."""
        return self.engine.write_at_indexed(root, puts, removes, base_postings)

    def scan_range(self, root: Optional[Digest], start: Optional[bytes],
                   stop: Optional[bytes]) -> List[Tuple[bytes, bytes]]:
        """Range-scan ``root`` (lock-free; roots are immutable)."""
        return self.engine.scan_range(root, start, stop)

    def head_root(self) -> Optional[Digest]:
        """Root digest of the working head (caller holds the lock)."""
        return self.engine.head_root()

    def lookup_head(self, key: bytes) -> Optional[bytes]:
        """Read ``key`` from the working head (caller holds the lock)."""
        return self.engine.lookup_head(key)

    def lookup_at(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        """Read ``key`` from a committed root (lock-free)."""
        return self.engine.lookup_at(root, key)

    def apply_ops(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Apply a drained write batch (caller holds the lock)."""
        self.engine.apply_ops(puts, removes)

    def load_batch(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Bulk-ingest a routed batch (caller holds the lock)."""
        self.engine.load_batch(puts, removes)

    def set_head(self, root: Optional[Digest],
                 posting_roots: Optional[Dict[str, Optional[Digest]]] = None) -> None:
        """Advance the working head to ``root`` (caller holds the lock)."""
        self.engine.set_head(root, posting_roots)

    def write_at(self, root: Optional[Digest], puts: Dict[bytes, bytes],
                 removes: Iterable[bytes]) -> Optional[Digest]:
        """Copy-on-write a batch onto ``root`` (caller holds the lock)."""
        return self.engine.write_at(root, puts, removes)

    def store_flush(self) -> None:
        """Durability barrier on the backing store (caller holds the lock)."""
        self.engine.store_flush()

    def flush_begin(self, puts: Dict[bytes, bytes], removes: Iterable[bytes]) -> None:
        """Stage one shard's *prepare*: apply the batch (synchronously here).

        The two-phase commit protocol issues ``flush_begin`` on every
        shard before collecting any result, so the process backend can
        overlap the per-shard work; in-process there is nothing to
        overlap and the batch is applied on the spot.
        """
        self.engine.apply_ops(puts, removes)

    def flush_finish(self) -> IndexSnapshot:
        """Collect the staged prepare's result: the shard's head view."""
        return self.engine.head

    def head_view(self) -> IndexSnapshot:
        """A view of the working head (caller holds the lock)."""
        return self.engine.head

    def view(self, root: Optional[Digest]) -> IndexSnapshot:
        """An immutable view of ``root`` (lock-free; roots are immutable)."""
        return self.engine.index.snapshot(root)

    def collect(self, protected_roots: Iterable[Optional[Digest]]) -> GCCounters:
        """Mark-and-sweep the shard store (caller holds the lock)."""
        return self.engine.collect(protected_roots)

    def history_copy(self) -> List[Optional[Digest]]:
        """Copy the root history (caller holds the lock)."""
        return self.engine.history_copy()

    def shard_metrics(self, include_records: bool = False) -> ShardMetrics:
        """This shard's counters, contention included."""
        metrics = self.engine.metrics(include_records)
        metrics.contention = self.contention.copy()
        return metrics

    def reset_shard_counters(self) -> None:
        """Zero the shard's counters (caller holds the lock)."""
        self.contention = ContentionCounters()
        self.engine.reset_counters()

    def storage_bytes(self) -> int:
        """Physical bytes in the shard's backing store."""
        return self.engine.storage_bytes()

    def export_nodes(self) -> List[Tuple[Digest, bytes]]:
        """Every stored node as ``(digest, bytes)`` pairs."""
        return self.engine.export_nodes()

    def missing_digests(self, digests: Sequence[Digest]) -> List[Digest]:
        """Digests of ``digests`` this shard does not hold (lock-free read)."""
        return self.engine.missing_digests(digests)

    def fetch_nodes(self, digests: Sequence[Digest]) -> List[Tuple[Digest, bytes]]:
        """Canonical bytes for each requested digest (lock-free read)."""
        return self.engine.fetch_nodes(digests)

    def import_nodes(self, pairs: Sequence[Tuple[Digest, bytes]]) -> int:
        """Verify and land transferred nodes (caller holds the lock)."""
        return self.engine.import_nodes(pairs)

    def set_fault(self, point: Optional[str]) -> None:
        """Fault injection is a process-backend capability; always raises."""
        raise NotImplementedError(
            "fault injection kill-points require backend='process'")

    def close(self) -> None:
        """Close the shard's backing store."""
        self.engine.close_store()
