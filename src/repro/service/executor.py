"""Concurrent execution engine for the sharded versioned-KV service.

:class:`VersionedKVService` is thread-safe but executes every call on the
caller's thread; with N shards that leaves N−1 partitions idle during any
one operation.  :class:`ServiceExecutor` closes that gap: it owns a pool
of worker threads and fans multi-key gets, scans, merged diffs, bulk
writes and cross-shard flushes/commits out over the shards, one task per
shard, so independent partitions make progress simultaneously.  Because
each fanned-out task touches exactly one shard, tasks only ever contend
on *their* shard's lock — shard parallelism, the reason the service
partitions keys at all, finally pays off on the execution path.

Guarantees
----------
* **Deterministic result ordering.**  Results never depend on thread
  scheduling: :meth:`get_many` returns values in input-key order,
  :meth:`scan` yields records in ascending key order, and :meth:`diff`
  merges per-shard diffs sorted by key — identical output to the
  sequential service, just faster.
* **Fail-fast, no partial results.**  If any shard task raises, pending
  tasks are cancelled, already-running ones are drained, and the failure
  is re-raised as :class:`ShardExecutionError` carrying the shard id and
  chaining the original exception.  A caller never receives a result
  assembled from a subset of shards.
* **Atomic commits.**  :meth:`commit` pre-flushes the shards in parallel
  (the expensive copy-on-write work), then delegates to the service's
  commit, whose all-locks cross-shard cut makes the recorded roots a
  consistent point in the interleaving.

The engine is a front end, not a replacement: the underlying service
remains fully usable concurrently — client threads can keep calling
``service.put``/``service.get`` directly while an executor fans out bulk
operations over the same shards.
"""

from __future__ import annotations

import heapq
import threading
from concurrent.futures import FIRST_EXCEPTION, Future, ThreadPoolExecutor, wait
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.diff import DiffResult
from repro.core.errors import ShardExecutionError
from repro.core.interfaces import KeyLike, ValueLike, coerce_key, coerce_value
from repro.service.service import ServiceCommit, ServiceSnapshot, VersionedKVService

VersionLike = Union[int, ServiceCommit]

__all__ = ["ServiceExecutor", "ShardExecutionError"]


class ServiceExecutor:
    """A worker pool fanning service operations out across shards.

    Parameters
    ----------
    service:
        The :class:`VersionedKVService` to execute against.
    max_workers:
        Pool size; defaults to the service's shard count (more workers
        than shards cannot help, because tasks are per-shard).

    Use as a context manager to shut the pool down deterministically::

        with ServiceExecutor(service) as executor:
            values = executor.get_many([b"a", b"b", b"c"])
    """

    def __init__(self, service: VersionedKVService, *, max_workers: Optional[int] = None):
        if max_workers is not None and max_workers <= 0:
            raise ValueError("max_workers must be positive")
        self.service = service
        self.max_workers = max_workers or service.num_shards
        self._pool = ThreadPoolExecutor(
            max_workers=self.max_workers, thread_name_prefix="repro-shard"
        )
        self._closed = False
        # Futures submitted but not yet done — close() must resolve any
        # it abandons, or fan-outs blocked on them would hang forever.
        self._inflight: set = set()
        self._inflight_lock = threading.Lock()

    # -- lifecycle ---------------------------------------------------------

    @property
    def is_closed(self) -> bool:
        """Whether :meth:`close` has run (every operation now raises)."""
        return self._closed

    def close(self) -> None:
        """Shut the worker pool down (idempotent; waits for running tasks).

        Safe to call any number of times and from multiple owners — the
        server's drain path closes the executor it was handed, and so may
        the code that created it.

        Tasks already *running* are allowed to finish; tasks still
        *queued* are cancelled so their fan-outs fail fast with a
        descriptive :class:`ShardExecutionError` instead of blocking
        forever on futures no worker will ever run.
        """
        if self._closed:
            return
        self._closed = True
        # Snapshot *before* the drain: cancelling a future fires its
        # done-callback, which untracks it — snapshotting afterwards
        # would miss exactly the futures that need resolving.
        with self._inflight_lock:
            abandoned = set(self._inflight)
        # Drain the pool's queue: cancelled work items are never handed
        # to a worker thread after this.
        self._pool.shutdown(wait=False, cancel_futures=True)
        with self._inflight_lock:
            abandoned |= self._inflight
        # The pool only *cancels* drained futures — it never notifies
        # their waiters (nothing will ever run them), so a fan-out
        # blocked in wait() would hang forever.  Deliver the missing
        # notification for every future this executor abandoned.
        for future in abandoned:
            future.cancel()
            if future.cancelled():
                try:
                    future.set_running_or_notify_cancel()
                except RuntimeError:
                    pass  # a worker got to it first: already notified
        self._pool.shutdown(wait=True)

    def submit(self, fn: Callable[..., object], *args, **kwargs) -> Future:
        """Run ``fn(*args, **kwargs)`` on the pool; returns its future.

        The wire server uses this to execute request handlers off the
        asyncio loop thread while sharing the executor's pool.
        """
        if self._closed:
            raise RuntimeError("ServiceExecutor is closed")
        return self._track(self._pool.submit(fn, *args, **kwargs))

    def _track(self, future: Future) -> Future:
        """Register a live future so close() can resolve it if abandoned."""
        with self._inflight_lock:
            self._inflight.add(future)
        future.add_done_callback(self._untrack)
        return future

    def _untrack(self, future: Future) -> None:
        with self._inflight_lock:
            self._inflight.discard(future)

    def __enter__(self) -> "ServiceExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- fan-out core ------------------------------------------------------

    def _run_shard_tasks(self, operation: str,
                         tasks: Sequence[Tuple[int, Callable[[], object]]]) -> List[object]:
        """Run one thunk per shard on the pool; fail fast, never partially.

        Returns the task results in submission order (deterministic,
        independent of completion order).  On the first task failure the
        remaining pending tasks are cancelled, running ones are drained,
        and a :class:`ShardExecutionError` naming the failing shard is
        raised — chained to the original exception.
        """
        if self._closed:
            # The pool would raise for the multi-task path anyway; raising
            # here too keeps the single-task inline shortcut from silently
            # outliving close().
            raise RuntimeError("ServiceExecutor is closed")
        if not tasks:
            return []
        if len(tasks) == 1:
            # One shard involved: run inline, skip the pool round trip.
            shard_id, thunk = tasks[0]
            try:
                return [thunk()]
            except Exception as exc:
                raise ShardExecutionError(shard_id, operation, exc) from exc
        futures: List[Future] = [self._track(self._pool.submit(thunk))
                                 for _, thunk in tasks]
        try:
            done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
            failed = next(
                ((i, f) for i, f in enumerate(futures)
                 if f in done and not f.cancelled() and f.exception() is not None),
                None,
            )
            if failed is not None:
                index, future = failed
                for other in not_done:
                    other.cancel()
                wait(futures)  # drain tasks that were already running
                cause = future.exception()
                raise ShardExecutionError(tasks[index][0], operation, cause) from cause
            cancelled = next(
                (i for i, f in enumerate(futures) if f.cancelled()), None)
            if cancelled is not None:
                # close() cancelled a queued task out from under this
                # fan-out; future.result() would raise a bare
                # CancelledError with no shard context.  Fail fast with
                # the contract error instead.
                for other in not_done:
                    other.cancel()
                wait(futures)
                cause = RuntimeError(
                    "executor closed before the shard task could run; "
                    "operation abandoned with no partial result")
                raise ShardExecutionError(
                    tasks[cancelled][0], operation, cause) from cause
            return [future.result() for future in futures]
        finally:
            # A caller interrupting the wait (e.g. KeyboardInterrupt) must
            # not leak still-queued tasks into later operations.
            for future in futures:
                future.cancel()

    # -- reads -------------------------------------------------------------

    def get_many(self, keys: Iterable[KeyLike], *, version: Optional[VersionLike] = None,
                 default: Optional[bytes] = None) -> List[Optional[bytes]]:
        """Read many keys at once; values come back in input-key order.

        Keys are partitioned by shard and each shard's batch is resolved
        by one pool task (through :meth:`VersionedKVService.get`, so
        latest-state reads keep their read-your-writes semantics and
        versioned reads stay lock-free).
        """
        key_list = [coerce_key(key) for key in keys]
        buckets = self.service.router.partition_indexed(key_list)
        service = self.service

        def read_bucket(bucket: List[Tuple[int, bytes]]) -> List[Tuple[int, Optional[bytes]]]:
            return [(position, service.get(key, default=default, version=version))
                    for position, key in bucket]

        tasks = [
            (shard_id, (lambda b=bucket: read_bucket(b)))
            for shard_id, bucket in enumerate(buckets) if bucket
        ]
        results: List[Optional[bytes]] = [default] * len(key_list)
        for bucket_result in self._run_shard_tasks("get_many", tasks):
            for position, value in bucket_result:
                results[position] = value
        return results

    def scan(self, *, version: Optional[VersionLike] = None) -> List[Tuple[bytes, bytes]]:
        """Materialize all records in ascending key order, one task per shard.

        The per-shard ordered streams are materialized concurrently and
        merge-joined, so the result is byte-for-byte identical to
        ``list(service.items())``.
        """
        snapshot = self.service.snapshot(version)
        tasks = [
            (shard_id, (lambda s=shard_snap: list(s.items())))
            for shard_id, shard_snap in enumerate(snapshot.shards)
        ]
        streams = self._run_shard_tasks("scan", tasks)
        return list(heapq.merge(*streams))

    def diff(self, left: Union[VersionLike, ServiceSnapshot],
             right: Union[VersionLike, ServiceSnapshot, None] = None) -> DiffResult:
        """Merged structural diff between two versions, per-shard in parallel.

        Equivalent to :meth:`VersionedKVService.diff` (entries sorted by
        key, comparison counts summed) with each shard pair diffed by its
        own pool task.
        """
        service = self.service
        left_snap = left if isinstance(left, ServiceSnapshot) else service.snapshot(left)
        if right is None:
            right_snap = service.snapshot()
        elif isinstance(right, ServiceSnapshot):
            right_snap = right
        else:
            right_snap = service.snapshot(right)
        if len(left_snap.shards) != len(right_snap.shards):
            # Defer to the sequential path for its error message.
            return left_snap.diff(right_snap)
        tasks = [
            (shard_id, (lambda l=l_snap, r=r_snap: l.diff(r)))
            for shard_id, (l_snap, r_snap)
            in enumerate(zip(left_snap.shards, right_snap.shards))
        ]
        merged = DiffResult()
        for partial in self._run_shard_tasks("diff", tasks):
            merged.entries.extend(partial.entries)
            merged.comparisons += partial.comparisons
        merged.entries.sort(key=lambda entry: entry.key)
        return merged

    # -- writes ------------------------------------------------------------

    def put_many(self, items: Union[Dict[KeyLike, ValueLike],
                                    Sequence[Tuple[KeyLike, ValueLike]]]) -> None:
        """Buffer many writes, fanned out one task per destination shard.

        Within a shard the input order is preserved, so last-writer-wins
        coalescing resolves duplicates exactly as a sequential
        :meth:`VersionedKVService.put_many` would.
        """
        pairs = items.items() if isinstance(items, Mapping) else items
        coerced = [(coerce_key(key), coerce_value(value)) for key, value in pairs]
        self._fan_out_writes("put_many", coerced, remover=None)

    def remove_many(self, keys: Iterable[KeyLike]) -> None:
        """Buffer many removals, fanned out one task per destination shard."""
        coerced = [(coerce_key(key), None) for key in keys]
        self._fan_out_writes("remove_many", coerced, remover=True)

    def _fan_out_writes(self, operation: str,
                        pairs: List[Tuple[bytes, Optional[bytes]]],
                        remover: Optional[bool]) -> None:
        service = self.service
        buckets: List[List[Tuple[bytes, Optional[bytes]]]] = [
            [] for _ in range(service.num_shards)
        ]
        for key, value in pairs:
            buckets[service.router.shard_of(key)].append((key, value))

        def write_bucket(bucket: List[Tuple[bytes, Optional[bytes]]]) -> None:
            for key, value in bucket:
                if value is None and remover:
                    service.remove(key)
                else:
                    service.put(key, value)

        tasks = [
            (shard_id, (lambda b=bucket: write_bucket(b)))
            for shard_id, bucket in enumerate(buckets) if bucket
        ]
        self._run_shard_tasks(operation, tasks)

    def load(self, items: Union[Dict[KeyLike, ValueLike],
                                Sequence[Tuple[KeyLike, ValueLike]]]) -> int:
        """Bulk-ingest ``items`` with one pool task per destination shard.

        Same semantics as :meth:`VersionedKVService.load` — one lock
        round-trip per shard, pending buffered operations folded in, the
        bottom-up builders on empty shards — but the per-shard batched
        writes (the expensive copy-on-write tree construction) run
        concurrently on the pool.  Returns the number of records routed.
        """
        service = self.service
        service._require_open()
        per_shard, total = service._partition_load(items)
        tasks = [
            (shard_id, (lambda s=shard_id, p=puts: service._load_shard(s, p)))
            for shard_id, puts in enumerate(per_shard) if puts
        ]
        self._run_shard_tasks("load", tasks)
        return total

    def flush(self) -> None:
        """Flush every shard's pending writes, one pool task per shard.

        This parallelizes the expensive part of a flush — the per-shard
        copy-on-write batch application — across the pool.
        """
        service = self.service
        tasks = [
            (shard_id, (lambda s=shard_id: service._flush_shard(s)))
            for shard_id in range(service.num_shards)
            if service.batcher.pending_count(shard_id)
        ]
        self._run_shard_tasks("flush", tasks)

    def commit(self, message: str = "") -> ServiceCommit:
        """Record a cross-shard version, pre-flushing shards in parallel.

        The parallel pre-flush does the heavy tree rebuilding; the
        service's own commit then takes its atomic all-shards cut (which
        drains anything buffered in between) and records the version.
        The returned commit is indistinguishable from one produced by
        :meth:`VersionedKVService.commit`.
        """
        self.flush()
        return self.service.commit(message)

    def __repr__(self) -> str:
        return (
            f"ServiceExecutor(workers={self.max_workers}, "
            f"service={self.service!r})"
        )
