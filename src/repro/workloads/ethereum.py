"""Synthetic Ethereum transaction dataset (stand-in for the BigQuery export).

The paper's third dataset consists of real Ethereum transactions from
blocks 8 900 000–9 200 000: the key is the 64-byte (hex) transaction hash
and the value is the RLP-encoded raw transaction, 100–57 738 bytes long
with an average of ≈ 532 bytes.  Each block naturally forms one version,
and the evaluation builds one index per block whose root hash is appended
to a global block list.

This module synthesizes transactions with the same shape: legacy-format
transaction fields (nonce, gas price, gas, recipient, value, calldata,
v/r/s signature) RLP-encoded with :mod:`repro.encoding.rlp`, calldata
lengths drawn from a long-tailed distribution calibrated to the paper's
size statistics, and a block structure grouping a configurable number of
transactions per block.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.encoding.rlp import rlp_encode


@dataclass(frozen=True)
class Transaction:
    """One synthetic transaction: its hash key and RLP-encoded payload."""

    tx_hash: bytes
    raw: bytes

    @property
    def key(self) -> bytes:
        """The 64-byte hex transaction hash used as the index key."""
        return self.tx_hash

    @property
    def size(self) -> int:
        return len(self.raw)


@dataclass
class Block:
    """A block: a number, its transactions, and a parent hash link."""

    number: int
    transactions: List[Transaction]
    parent_hash: bytes = b""

    def records(self) -> Dict[bytes, bytes]:
        """The block's transactions as a key→raw-transaction mapping."""
        return {tx.key: tx.raw for tx in self.transactions}

    @property
    def block_hash(self) -> bytes:
        payload = self.parent_hash + b"".join(tx.tx_hash for tx in self.transactions)
        return hashlib.sha256(payload).hexdigest().encode("ascii")


class EthereumDatasetGenerator:
    """Generates synthetic RLP-encoded transactions grouped into blocks.

    Parameters
    ----------
    blocks:
        Number of blocks to generate.
    transactions_per_block:
        Average number of transactions per block (the paper notes each
        block holds "a few hundreds of transactions").
    calldata_mean:
        Mean calldata length; chosen so the full RLP payload averages
        roughly the paper's 532 bytes.
    seed:
        Determinism seed.
    """

    def __init__(
        self,
        blocks: int = 50,
        transactions_per_block: int = 200,
        calldata_mean: int = 400,
        calldata_max: int = 57_000,
        seed: int = 11,
    ):
        if blocks <= 0 or transactions_per_block <= 0:
            raise ValueError("blocks and transactions_per_block must be positive")
        self.blocks = blocks
        self.transactions_per_block = transactions_per_block
        self.calldata_mean = calldata_mean
        self.calldata_max = calldata_max
        self.seed = seed

    # -- transaction synthesis -------------------------------------------------

    def _make_transaction(self, rng: random.Random, serial: int) -> Transaction:
        nonce = rng.randrange(0, 1_000_000)
        gas_price = rng.randrange(1, 500) * 10**9
        gas_limit = rng.choice([21_000, 50_000, 90_000, 200_000, 1_000_000])
        recipient = rng.getrandbits(160).to_bytes(20, "big")
        value = rng.randrange(0, 10**18)
        calldata_length = min(self.calldata_max, int(rng.expovariate(1 / self.calldata_mean)))
        calldata = rng.getrandbits(8 * calldata_length).to_bytes(calldata_length, "big") if calldata_length else b""
        v = rng.choice([27, 28])
        r = rng.getrandbits(256)
        s = rng.getrandbits(256)
        raw = rlp_encode([nonce, gas_price, gas_limit, recipient, value, calldata, v, r, s])
        # The paper observes raw transactions of at least 100 bytes; pad the
        # calldata-free ones up to that floor to match the distribution.
        if len(raw) < 100:
            padding = 100 - len(raw)
            raw = rlp_encode(
                [nonce, gas_price, gas_limit, recipient, value, calldata + b"\x00" * padding, v, r, s]
            )
        tx_hash = hashlib.sha256(raw + serial.to_bytes(8, "big")).hexdigest().encode("ascii")
        return Transaction(tx_hash=tx_hash, raw=raw)

    # -- block stream -------------------------------------------------------------

    def block_stream(self) -> Iterator[Block]:
        """Yield blocks in order, each linked to its predecessor."""
        rng = random.Random(self.seed)
        parent_hash = b"0" * 64
        serial = 0
        for number in range(self.blocks):
            transactions = []
            for _ in range(self.transactions_per_block):
                transactions.append(self._make_transaction(rng, serial))
                serial += 1
            block = Block(number=number, transactions=transactions, parent_hash=parent_hash)
            parent_hash = block.block_hash
            yield block

    def all_blocks(self) -> List[Block]:
        """Materialize the full block list."""
        return list(self.block_stream())

    def statistics(self, sample_blocks: int = 5) -> Dict[str, float]:
        """Transaction size statistics over a sample of blocks (for reports)."""
        sizes: List[int] = []
        for block in self.block_stream():
            if block.number >= sample_blocks:
                break
            sizes.extend(tx.size for tx in block.transactions)
        return {
            "transactions": float(len(sizes)),
            "size_min": float(min(sizes)),
            "size_avg": sum(sizes) / len(sizes),
            "size_max": float(max(sizes)),
            "key_len": 64.0,
        }
