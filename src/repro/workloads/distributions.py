"""Request distributions for workload generation.

The paper's YCSB workloads select request keys either uniformly (θ = 0) or
with a Zipfian skew (θ = 0.5 or 0.9), where a higher θ concentrates the
requests on a smaller set of hot records.  The Zipfian generator below
follows the standard YCSB/Gray et al. construction: it draws ranks from a
Zipf distribution with exponent θ using the precomputed generalized
harmonic number ζ(n, θ), then scatters the ranks over the key space with a
hash so the hot keys are not clustered at one end.
"""

from __future__ import annotations

import hashlib
import math
import random
from typing import Optional


class UniformKeyChooser:
    """Selects key indexes uniformly at random from ``[0, population)``."""

    def __init__(self, population: int, seed: int = 0):
        if population <= 0:
            raise ValueError("population must be positive")
        self.population = population
        self._rng = random.Random(seed)

    def next_index(self) -> int:
        """The index of the next requested record."""
        return self._rng.randrange(self.population)

    @property
    def theta(self) -> float:
        return 0.0


class ZipfianKeyChooser:
    """YCSB-style scrambled Zipfian selection over ``[0, population)``.

    Parameters
    ----------
    population:
        Number of records to choose from.
    theta:
        Skew parameter; 0 degenerates to uniform, 0.99 is heavily skewed.
    seed:
        Seed for the underlying pseudo-random generator.
    scramble:
        When True (default), ranks are scattered over the key space with a
        hash so that popular keys are spread out — the behaviour of YCSB's
        ``ScrambledZipfianGenerator``.
    """

    def __init__(self, population: int, theta: float = 0.99, seed: int = 0, scramble: bool = True):
        if population <= 0:
            raise ValueError("population must be positive")
        if not 0.0 <= theta < 1.0:
            raise ValueError("theta must be in [0, 1)")
        self.population = population
        self.theta = theta
        self.scramble = scramble
        self._rng = random.Random(seed)
        self._zetan = self._zeta(population, theta)
        self._zeta2 = self._zeta(2, theta)
        self._alpha = 1.0 / (1.0 - theta) if theta > 0 else 1.0
        self._eta = self._compute_eta()

    @staticmethod
    def _zeta(n: int, theta: float) -> float:
        """Generalized harmonic number ζ(n, θ) = Σ_{i=1..n} 1 / i^θ."""
        return sum(1.0 / math.pow(i, theta) for i in range(1, n + 1))

    def _compute_eta(self) -> float:
        if self.theta == 0:
            return 0.0
        return (1.0 - math.pow(2.0 / self.population, 1.0 - self.theta)) / (
            1.0 - self._zeta2 / self._zetan
        )

    def _zipf_rank(self) -> int:
        """Draw a rank in [0, population) with Zipf(θ) probability."""
        if self.theta == 0:
            return self._rng.randrange(self.population)
        u = self._rng.random()
        uz = u * self._zetan
        if uz < 1.0:
            return 0
        if uz < 1.0 + math.pow(0.5, self.theta):
            return 1
        rank = int(self.population * math.pow(self._eta * u - self._eta + 1.0, self._alpha))
        return min(rank, self.population - 1)

    def next_index(self) -> int:
        """The index of the next requested record."""
        rank = self._zipf_rank()
        if not self.scramble:
            return rank
        scattered = hashlib.blake2b(rank.to_bytes(8, "big"), digest_size=8).digest()
        return int.from_bytes(scattered, "big") % self.population


def make_chooser(population: int, theta: float = 0.0, seed: int = 0):
    """Build the appropriate chooser for a skew parameter θ."""
    if theta <= 0.0:
        return UniformKeyChooser(population, seed=seed)
    return ZipfianKeyChooser(population, theta=theta, seed=seed)
