"""Synthetic Wikipedia-abstract dataset (stand-in for the paper's WIKI dumps).

The paper uses real Wikipedia page-abstract dumps: the key is the page URL
(31–298 bytes, average ≈ 50) and the value is the abstract text (1–1036
bytes, average ≈ 96), split into 300 versions covering three months of
edits.  The dumps themselves are not redistributable at laptop scale, so
this module generates a synthetic dataset matching those key/value length
statistics and edit dynamics:

* URL-shaped keys (``https://en.wikipedia.org/wiki/<Title>``) whose title
  lengths follow a long-tailed distribution bounded to the paper's range;
* abstract-shaped values built from a word pool, lengths drawn from a
  truncated geometric-like distribution with the paper's mean;
* an edit stream where each version modifies a subset of pages and adds a
  few new ones, so consecutive versions overlap heavily (which is what the
  storage experiments exercise);
* optional **revision metadata** for the query-layer experiments: the
  annotated dataset prepends ``author|timestamp|`` to each abstract, with
  a long-tailed author distribution (a few prolific editors dominate, so
  by-author secondary lookups are skewed) and timestamps that advance
  with the version number (so by-time-bucket queries cluster).  The
  module-level :func:`extract_author` / :func:`extract_time_bucket`
  extractors parse that header and are picklable, so they can drive
  :class:`repro.query.definition.IndexDefinition` on the process backend.

The annotated surface is additive: ``initial_dataset`` /
``version_stream`` / ``read_keys`` draw from the same RNG streams as
before and stay byte-identical for a given seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

_WORDS = (
    "data index structure immutable version merkle tree hash block chain "
    "storage system analysis query update record page node dedup ledger "
    "history branch merge commit abstract article page reference study "
    "model theory result evaluation performance experiment measure ratio"
).split()

#: Size of the synthetic editor pool for annotated revisions.
AUTHOR_COUNT = 64

#: Timestamp origin of the annotated edit stream (an arbitrary epoch).
EPOCH = 1_600_000_000

#: Seconds covered by one :func:`extract_time_bucket` bucket.
TIME_BUCKET_SECONDS = 86_400


def extract_author(value: bytes) -> List[bytes]:
    """Index extractor: the author of an annotated revision value.

    Returns ``[author]`` for values carrying the ``author|timestamp|``
    header and ``[]`` for anything else (plain abstracts never contain
    ``|``), so the extractor is safe to register over mixed data.
    Module-level by design: extractors must be picklable to cross the
    process-backend boundary.
    """
    parts = value.split(b"|", 2)
    if len(parts) == 3 and parts[0] and parts[1].isdigit():
        return [parts[0]]
    return []


def extract_time_bucket(value: bytes) -> List[bytes]:
    """Index extractor: the day bucket of an annotated revision value.

    Buckets are zero-padded ASCII day numbers, so their lexicographic
    order equals chronological order and time-range queries map directly
    onto index range scans.  Non-annotated values yield ``[]``.
    """
    parts = value.split(b"|", 2)
    if len(parts) == 3 and parts[0] and parts[1].isdigit():
        bucket = int(parts[1]) // TIME_BUCKET_SECONDS
        return [b"%010d" % bucket]
    return []


@dataclass
class WikiVersion:
    """One dataset version: the records changed relative to the previous one."""

    number: int
    changes: Dict[bytes, bytes]


class WikiDatasetGenerator:
    """Generates the synthetic WIKI dataset and its version stream.

    Parameters
    ----------
    page_count:
        Number of pages in the initial version.
    versions:
        Number of versions to generate after the initial load.
    edits_per_version:
        How many existing pages each version modifies.
    new_pages_per_version:
        How many new pages each version adds.
    seed:
        Determinism seed.
    """

    URL_PREFIX = "https://en.wikipedia.org/wiki/"

    def __init__(
        self,
        page_count: int = 2_000,
        versions: int = 20,
        edits_per_version: int = 100,
        new_pages_per_version: int = 10,
        seed: int = 7,
    ):
        if page_count <= 0:
            raise ValueError("page_count must be positive")
        self.page_count = page_count
        self.versions = versions
        self.edits_per_version = edits_per_version
        self.new_pages_per_version = new_pages_per_version
        self.seed = seed
        self._keys: Optional[List[bytes]] = None

    # -- key/value synthesis -------------------------------------------------

    def _make_title(self, rng: random.Random) -> str:
        word_count = max(1, min(12, int(rng.expovariate(1 / 2.0)) + 1))
        words = [rng.choice(_WORDS).capitalize() for _ in range(word_count)]
        return "_".join(words) + f"_{rng.randrange(10**6)}"

    def _make_key(self, index: int) -> bytes:
        rng = random.Random((self.seed << 16) ^ index)
        url = self.URL_PREFIX + self._make_title(rng)
        # Bound to the paper's observed key length range (31..298 bytes).
        return url.encode("utf-8")[:298]

    def _make_value(self, index: int, revision: int = 0) -> bytes:
        rng = random.Random((self.seed << 20) ^ (index << 6) ^ revision)
        # Abstract lengths: 1..1036 bytes, mean ≈ 96.
        target = max(1, min(1036, int(rng.expovariate(1 / 96.0)) + 1))
        words: List[str] = []
        length = 0
        while length < target:
            word = rng.choice(_WORDS)
            words.append(word)
            length += len(word) + 1
        return " ".join(words).encode("utf-8")[:1036]

    @property
    def keys(self) -> List[bytes]:
        if self._keys is None:
            self._keys = [self._make_key(i) for i in range(self.page_count)]
        return self._keys

    # -- revision metadata (annotated surface; separate RNG streams) ---------

    def _make_author(self, index: int, revision: int) -> bytes:
        """The editor of one revision, drawn from a long-tailed pool.

        A Pareto draw concentrates most revisions on a few author ids —
        the skew that makes by-author secondary-index lookups interesting
        — while the derived per-(seed, index, revision) RNG keeps the
        assignment deterministic and independent of every other stream.
        """
        rng = random.Random((self.seed << 24) ^ (index << 10) ^ revision)
        rank = int(rng.paretovariate(1.1)) % AUTHOR_COUNT
        return b"author_%03d" % rank

    def _make_timestamp(self, index: int, revision: int) -> int:
        """The edit time of one revision: advances with the version number.

        Each version covers roughly half a day with per-edit jitter, so
        revisions of the same version cluster into the same
        :func:`extract_time_bucket` day buckets.
        """
        rng = random.Random((self.seed << 28) ^ (index << 14) ^ revision)
        return EPOCH + revision * 43_200 + rng.randrange(43_200)

    def annotated_value(self, index: int, revision: int = 0) -> bytes:
        """An abstract value carrying the ``author|timestamp|`` header.

        The abstract part is byte-identical to :meth:`_make_value` for
        the same ``(index, revision)``, so annotated and plain datasets
        share edit dynamics and value-length statistics (plus a small
        fixed-size header).
        """
        author = self._make_author(index, revision)
        timestamp = self._make_timestamp(index, revision)
        return author + b"|" + b"%d" % timestamp + b"|" + self._make_value(index, revision)

    # -- dataset and version stream -----------------------------------------------

    def initial_dataset(self) -> Dict[bytes, bytes]:
        """The initial version (all pages at revision 0)."""
        return {key: self._make_value(i) for i, key in enumerate(self.keys)}

    def initial_annotated_dataset(self) -> Dict[bytes, bytes]:
        """The initial version with revision-metadata headers on every value."""
        return {key: self.annotated_value(i) for i, key in enumerate(self.keys)}

    def _stream(self, make_value) -> Iterator[WikiVersion]:
        """Shared edit-stream generator; ``make_value(index, revision)``.

        The edit *selection* RNG consumes the same call sequence
        regardless of the value maker, so the plain and annotated streams
        edit exactly the same pages in the same versions.
        """
        rng = random.Random(self.seed + 1)
        next_new = self.page_count
        for number in range(1, self.versions + 1):
            changes: Dict[bytes, bytes] = {}
            edited = rng.sample(range(self.page_count), min(self.edits_per_version, self.page_count))
            for index in edited:
                changes[self.keys[index]] = make_value(index, number)
            for _ in range(self.new_pages_per_version):
                key = self._make_key(next_new)
                changes[key] = make_value(next_new, number)
                next_new += 1
            yield WikiVersion(number=number, changes=changes)

    def version_stream(self) -> Iterator[WikiVersion]:
        """Per-version change sets (edits of existing pages + new pages)."""
        return self._stream(lambda index, number: self._make_value(index, revision=number))

    def annotated_version_stream(self) -> Iterator[WikiVersion]:
        """The same edit stream with annotated values (same pages edited)."""
        return self._stream(self.annotated_value)

    def read_keys(self, count: int, seed_offset: int = 2) -> List[bytes]:
        """Uniformly selected keys for the read workload."""
        rng = random.Random(self.seed + seed_offset)
        return [self.keys[rng.randrange(self.page_count)] for _ in range(count)]

    def statistics(self) -> Dict[str, float]:
        """Key/value length statistics of the generated dataset (for reports)."""
        dataset = self.initial_dataset()
        key_lengths = [len(k) for k in dataset]
        value_lengths = [len(v) for v in dataset.values()]
        return {
            "pages": float(len(dataset)),
            "key_len_min": float(min(key_lengths)),
            "key_len_avg": sum(key_lengths) / len(key_lengths),
            "key_len_max": float(max(key_lengths)),
            "value_len_min": float(min(value_lengths)),
            "value_len_avg": sum(value_lengths) / len(value_lengths),
            "value_len_max": float(max(value_lengths)),
        }
