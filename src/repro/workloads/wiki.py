"""Synthetic Wikipedia-abstract dataset (stand-in for the paper's WIKI dumps).

The paper uses real Wikipedia page-abstract dumps: the key is the page URL
(31–298 bytes, average ≈ 50) and the value is the abstract text (1–1036
bytes, average ≈ 96), split into 300 versions covering three months of
edits.  The dumps themselves are not redistributable at laptop scale, so
this module generates a synthetic dataset matching those key/value length
statistics and edit dynamics:

* URL-shaped keys (``https://en.wikipedia.org/wiki/<Title>``) whose title
  lengths follow a long-tailed distribution bounded to the paper's range;
* abstract-shaped values built from a word pool, lengths drawn from a
  truncated geometric-like distribution with the paper's mean;
* an edit stream where each version modifies a subset of pages and adds a
  few new ones, so consecutive versions overlap heavily (which is what the
  storage experiments exercise).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Tuple

_WORDS = (
    "data index structure immutable version merkle tree hash block chain "
    "storage system analysis query update record page node dedup ledger "
    "history branch merge commit abstract article page reference study "
    "model theory result evaluation performance experiment measure ratio"
).split()


@dataclass
class WikiVersion:
    """One dataset version: the records changed relative to the previous one."""

    number: int
    changes: Dict[bytes, bytes]


class WikiDatasetGenerator:
    """Generates the synthetic WIKI dataset and its version stream.

    Parameters
    ----------
    page_count:
        Number of pages in the initial version.
    versions:
        Number of versions to generate after the initial load.
    edits_per_version:
        How many existing pages each version modifies.
    new_pages_per_version:
        How many new pages each version adds.
    seed:
        Determinism seed.
    """

    URL_PREFIX = "https://en.wikipedia.org/wiki/"

    def __init__(
        self,
        page_count: int = 2_000,
        versions: int = 20,
        edits_per_version: int = 100,
        new_pages_per_version: int = 10,
        seed: int = 7,
    ):
        if page_count <= 0:
            raise ValueError("page_count must be positive")
        self.page_count = page_count
        self.versions = versions
        self.edits_per_version = edits_per_version
        self.new_pages_per_version = new_pages_per_version
        self.seed = seed
        self._keys: Optional[List[bytes]] = None

    # -- key/value synthesis -------------------------------------------------

    def _make_title(self, rng: random.Random) -> str:
        word_count = max(1, min(12, int(rng.expovariate(1 / 2.0)) + 1))
        words = [rng.choice(_WORDS).capitalize() for _ in range(word_count)]
        return "_".join(words) + f"_{rng.randrange(10**6)}"

    def _make_key(self, index: int) -> bytes:
        rng = random.Random((self.seed << 16) ^ index)
        url = self.URL_PREFIX + self._make_title(rng)
        # Bound to the paper's observed key length range (31..298 bytes).
        return url.encode("utf-8")[:298]

    def _make_value(self, index: int, revision: int = 0) -> bytes:
        rng = random.Random((self.seed << 20) ^ (index << 6) ^ revision)
        # Abstract lengths: 1..1036 bytes, mean ≈ 96.
        target = max(1, min(1036, int(rng.expovariate(1 / 96.0)) + 1))
        words: List[str] = []
        length = 0
        while length < target:
            word = rng.choice(_WORDS)
            words.append(word)
            length += len(word) + 1
        return " ".join(words).encode("utf-8")[:1036]

    @property
    def keys(self) -> List[bytes]:
        if self._keys is None:
            self._keys = [self._make_key(i) for i in range(self.page_count)]
        return self._keys

    # -- dataset and version stream -----------------------------------------------

    def initial_dataset(self) -> Dict[bytes, bytes]:
        """The initial version (all pages at revision 0)."""
        return {key: self._make_value(i) for i, key in enumerate(self.keys)}

    def version_stream(self) -> Iterator[WikiVersion]:
        """Per-version change sets (edits of existing pages + new pages)."""
        rng = random.Random(self.seed + 1)
        next_new = self.page_count
        for number in range(1, self.versions + 1):
            changes: Dict[bytes, bytes] = {}
            edited = rng.sample(range(self.page_count), min(self.edits_per_version, self.page_count))
            for index in edited:
                changes[self.keys[index]] = self._make_value(index, revision=number)
            for _ in range(self.new_pages_per_version):
                key = self._make_key(next_new)
                changes[key] = self._make_value(next_new, revision=number)
                next_new += 1
            yield WikiVersion(number=number, changes=changes)

    def read_keys(self, count: int, seed_offset: int = 2) -> List[bytes]:
        """Uniformly selected keys for the read workload."""
        rng = random.Random(self.seed + seed_offset)
        return [self.keys[rng.randrange(self.page_count)] for _ in range(count)]

    def statistics(self) -> Dict[str, float]:
        """Key/value length statistics of the generated dataset (for reports)."""
        dataset = self.initial_dataset()
        key_lengths = [len(k) for k in dataset]
        value_lengths = [len(v) for v in dataset.values()]
        return {
            "pages": float(len(dataset)),
            "key_len_min": float(min(key_lengths)),
            "key_len_avg": sum(key_lengths) / len(key_lengths),
            "key_len_max": float(max(key_lengths)),
            "value_len_min": float(min(value_lengths)),
            "value_len_avg": sum(value_lengths) / len(value_lengths),
            "value_len_max": float(max(value_lengths)),
        }
