"""Workload and dataset generators used by the evaluation (Section 5.1).

* :mod:`repro.workloads.distributions` — uniform and Zipfian request
  distributions (YCSB-style, with the paper's θ ∈ {0, 0.5, 0.9}).
* :mod:`repro.workloads.ycsb` — the synthetic YCSB key-value dataset and
  read/write/mixed operation streams (Table 2 parameters).
* :mod:`repro.workloads.wiki` — a synthetic stand-in for the Wikipedia
  abstract dumps: URL-like keys and abstract-like values with the paper's
  length statistics, delivered as a stream of dataset versions.
* :mod:`repro.workloads.ethereum` — synthetic RLP-encoded transactions
  grouped into blocks, matching the paper's Ethereum workload shape.
* :mod:`repro.workloads.collaboration` — multi-group workloads with a
  controlled key/value overlap ratio for the deduplication experiments.
"""

from repro.workloads.distributions import UniformKeyChooser, ZipfianKeyChooser, make_chooser
from repro.workloads.ycsb import Operation, YCSBConfig, YCSBServiceDriver, YCSBWorkload
from repro.workloads.wiki import WikiDatasetGenerator, WikiVersion
from repro.workloads.ethereum import Block, EthereumDatasetGenerator, Transaction
from repro.workloads.collaboration import CollaborationWorkload, batched

__all__ = [
    "UniformKeyChooser",
    "ZipfianKeyChooser",
    "make_chooser",
    "Operation",
    "YCSBConfig",
    "YCSBWorkload",
    "YCSBServiceDriver",
    "WikiDatasetGenerator",
    "WikiVersion",
    "EthereumDatasetGenerator",
    "Transaction",
    "Block",
    "CollaborationWorkload",
    "batched",
]
