"""Multi-group collaboration workloads with controlled overlap (Section 5.4.2).

The paper's deduplication experiments simulate several groups of users who
start from the *same* base dataset and then apply their own workloads.  A
parameter called the *overlap ratio* controls what fraction of the groups'
updates are identical (same key and same value) across groups — the higher
the overlap, the more page sharing a SIRI index can exploit.

:class:`CollaborationWorkload` reproduces that setup: a shared base
dataset, ``group_count`` per-group update streams of ``operations_per_group``
records each, where ``overlap_ratio`` of the records are drawn from a
common pool shared by every group and the rest are group-private.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.workloads.ycsb import YCSBConfig, YCSBWorkload


def batched(items: Sequence[Tuple[bytes, bytes]], batch_size: int) -> Iterator[Dict[bytes, bytes]]:
    """Split a record sequence into update batches of ``batch_size``."""
    if batch_size <= 0:
        raise ValueError("batch_size must be positive")
    batch: Dict[bytes, bytes] = {}
    for key, value in items:
        batch[key] = value
        if len(batch) >= batch_size:
            yield batch
            batch = {}
    if batch:
        yield batch


@dataclass
class CollaborationWorkload:
    """Shared-base, multi-group workload with a configurable overlap ratio.

    Parameters
    ----------
    base_records:
        Number of records every group starts from (identical across groups).
    group_count:
        Number of collaborating groups (the paper uses 10).
    operations_per_group:
        Number of records each group writes on top of the base.
    overlap_ratio:
        Fraction of each group's writes drawn from the shared pool
        (identical key *and* value across groups); the rest are private.
    batch_size:
        Update batch size used when applying a group's workload.
    seed:
        Determinism seed.
    """

    base_records: int = 4_000
    group_count: int = 10
    operations_per_group: int = 16_000
    overlap_ratio: float = 0.5
    batch_size: int = 4_000
    seed: int = 13

    def __post_init__(self):
        if not 0.0 <= self.overlap_ratio <= 1.0:
            raise ValueError("overlap_ratio must be within [0, 1]")
        self._ycsb = YCSBWorkload(
            YCSBConfig(record_count=self.base_records, seed=self.seed, batch_size=self.batch_size)
        )

    # -- base dataset -----------------------------------------------------------

    def base_dataset(self) -> Dict[bytes, bytes]:
        """The dataset every group initializes with."""
        return self._ycsb.initial_dataset()

    # -- per-group workloads ------------------------------------------------------

    def _shared_record(self, serial: int) -> Tuple[bytes, bytes]:
        """A record from the shared pool: identical for every group."""
        rng = random.Random((self.seed << 8) ^ serial)
        key = f"shared{serial:08d}".encode("ascii")
        value = rng.getrandbits(64).to_bytes(8, "big") * 32
        return key, value

    def _private_record(self, group: int, serial: int) -> Tuple[bytes, bytes]:
        """A record private to one group (never collides across groups)."""
        rng = random.Random((self.seed << 12) ^ (group << 24) ^ serial)
        key = f"group{group:02d}-{serial:08d}".encode("ascii")
        value = rng.getrandbits(64).to_bytes(8, "big") * 32
        return key, value

    def group_records(self, group: int) -> List[Tuple[bytes, bytes]]:
        """The records group ``group`` writes, in application order."""
        rng = random.Random(self.seed + 100 + group)
        records: List[Tuple[bytes, bytes]] = []
        shared_serial = 0
        private_serial = 0
        for _ in range(self.operations_per_group):
            if rng.random() < self.overlap_ratio:
                records.append(self._shared_record(shared_serial))
                shared_serial += 1
            else:
                records.append(self._private_record(group, private_serial))
                private_serial += 1
        return records

    def group_batches(self, group: int) -> Iterator[Dict[bytes, bytes]]:
        """Group ``group``'s records as update batches of ``batch_size``."""
        return batched(self.group_records(group), self.batch_size)

    def all_groups(self) -> Iterator[Tuple[int, Iterator[Dict[bytes, bytes]]]]:
        """Iterate ``(group number, its batch stream)`` for every group."""
        for group in range(self.group_count):
            yield group, self.group_batches(group)
