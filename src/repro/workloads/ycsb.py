"""Synthetic YCSB-style key-value dataset and operation streams (Section 5.1.1).

The paper's primary micro-benchmark dataset follows YCSB conventions:

* keys of 5–15 bytes,
* values with an average length of 256 bytes,
* dataset sizes from 10 000 to 2 560 000 records,
* read-only, write-only and 50 %-write mixed operation streams,
* request skew controlled by a Zipfian θ ∈ {0, 0.5, 0.9},
* batched execution with batch sizes from 1 000 to 16 000 (Table 2).

All generation is deterministic given the seed, so experiments are
repeatable and two indexes fed the same workload see exactly the same byte
sequences.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.metrics import OperationCounters
from repro.workloads.distributions import make_chooser

READ = "read"
WRITE = "write"


@dataclass(frozen=True)
class Operation:
    """One workload operation: a read of ``key`` or a write of ``key = value``."""

    kind: str
    key: bytes
    value: Optional[bytes] = None

    @property
    def is_write(self) -> bool:
        return self.kind == WRITE


@dataclass
class YCSBConfig:
    """Parameters of a YCSB-style workload run (the paper's Table 2 grid)."""

    record_count: int = 10_000
    operation_count: int = 10_000
    write_ratio: float = 0.0
    theta: float = 0.0
    batch_size: int = 4_000
    key_length_min: int = 5
    key_length_max: int = 15
    value_length_mean: int = 256
    value_length_spread: int = 64
    seed: int = 42

    def __post_init__(self):
        if self.record_count <= 0:
            raise ValueError("record_count must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ValueError("write_ratio must be within [0, 1]")
        if self.key_length_min < 5 or self.key_length_max < self.key_length_min:
            raise ValueError("invalid key length range")


class YCSBWorkload:
    """Generates the dataset and operation stream for one YCSB configuration."""

    def __init__(self, config: Optional[YCSBConfig] = None, **overrides):
        if config is None:
            config = YCSBConfig(**overrides)
        elif overrides:
            raise ValueError("pass either a config object or keyword overrides, not both")
        self.config = config
        self._rng = random.Random(config.seed)
        self._keys: Optional[List[bytes]] = None

    # -- dataset -----------------------------------------------------------

    _KEY_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789"

    def _index_token(self, index: int) -> str:
        """A fixed-width base-36 rendering of the record index.

        The fixed width guarantees that no key is a prefix of another and
        that keys never collide, regardless of the random suffix length.
        """
        width = max(3, len(self._to_base36(max(1, self.config.record_count - 1))))
        return self._to_base36(index).rjust(width, "0")

    @staticmethod
    def _to_base36(value: int) -> str:
        alphabet = "0123456789abcdefghijklmnopqrstuvwxyz"
        if value == 0:
            return "0"
        digits = []
        while value:
            value, remainder = divmod(value, 36)
            digits.append(alphabet[remainder])
        return "".join(reversed(digits))

    def _make_key(self, index: int) -> bytes:
        """A deterministic, collision-free key within the configured length range.

        Keys embed a fixed-width base-36 record index (uniqueness) padded
        with a pseudo-random alphanumeric suffix whose length varies per
        record to realize the 5–15 byte key length distribution.
        """
        config = self.config
        rng = random.Random((config.seed << 20) ^ index)
        length = rng.randint(config.key_length_min, config.key_length_max)
        prefix = "u" + self._index_token(index)
        if len(prefix) >= length:
            return prefix.encode("ascii")
        suffix = "".join(rng.choice(self._KEY_ALPHABET) for _ in range(length - len(prefix)))
        return (prefix + suffix).encode("ascii")

    def _make_value(self, index: int, revision: int = 0) -> bytes:
        """A deterministic value of roughly the configured mean length."""
        config = self.config
        rng = random.Random((config.seed << 24) ^ (index << 4) ^ revision)
        spread = config.value_length_spread
        length = max(1, config.value_length_mean + rng.randint(-spread, spread))
        block = rng.getrandbits(64).to_bytes(8, "big")
        value = (block * ((length // 8) + 1))[:length]
        return value

    @property
    def keys(self) -> List[bytes]:
        """The dataset's keys, generated once and cached."""
        if self._keys is None:
            self._keys = [self._make_key(i) for i in range(self.config.record_count)]
        return self._keys

    def initial_dataset(self) -> Dict[bytes, bytes]:
        """The full initial record set (revision 0 of every key)."""
        return {key: self._make_value(i) for i, key in enumerate(self.keys)}

    def load_batches(self) -> Iterator[Dict[bytes, bytes]]:
        """The initial dataset split into load batches of ``batch_size``."""
        batch: Dict[bytes, bytes] = {}
        for i, key in enumerate(self.keys):
            batch[key] = self._make_value(i)
            if len(batch) >= self.config.batch_size:
                yield batch
                batch = {}
        if batch:
            yield batch

    # -- operations -----------------------------------------------------------

    def operations(self, operation_count: Optional[int] = None) -> Iterator[Operation]:
        """The request stream: reads and writes over the loaded dataset."""
        config = self.config
        count = operation_count if operation_count is not None else config.operation_count
        chooser = make_chooser(config.record_count, theta=config.theta, seed=config.seed + 1)
        op_rng = random.Random(config.seed + 2)
        keys = self.keys
        for serial in range(count):
            index = chooser.next_index()
            key = keys[index]
            if op_rng.random() < config.write_ratio:
                yield Operation(WRITE, key, self._make_value(index, revision=serial + 1))
            else:
                yield Operation(READ, key)

    def operation_batches(self, operation_count: Optional[int] = None) -> Iterator[List[Operation]]:
        """Operations grouped into batches of ``batch_size`` (write batching)."""
        batch: List[Operation] = []
        for operation in self.operations(operation_count):
            batch.append(operation)
            if len(batch) >= self.config.batch_size:
                yield batch
                batch = []
        if batch:
            yield batch

    # -- version streams for storage experiments ---------------------------------

    def version_stream(self, versions: int, updates_per_version: int,
                       insert_ratio: float = 0.0) -> Iterator[Dict[bytes, bytes]]:
        """Yield per-version update batches for the storage/dedup experiments.

        Each version updates ``updates_per_version`` records chosen by the
        configured distribution; a fraction ``insert_ratio`` of them are
        brand new keys (appended to the key space), matching the paper's
        continuous differential model of Section 4.2.2.
        """
        chooser = make_chooser(self.config.record_count, theta=self.config.theta,
                               seed=self.config.seed + 3)
        rng = random.Random(self.config.seed + 4)
        next_new_index = self.config.record_count
        for version in range(1, versions + 1):
            batch: Dict[bytes, bytes] = {}
            while len(batch) < updates_per_version:
                if rng.random() < insert_ratio:
                    key = self._make_key(next_new_index)
                    batch[key] = self._make_value(next_new_index, revision=version)
                    next_new_index += 1
                else:
                    index = chooser.next_index()
                    batch[self.keys[index]] = self._make_value(index, revision=version)
            yield batch


# ---------------------------------------------------------------------------
# Service driver mode
# ---------------------------------------------------------------------------

class YCSBServiceDriver:
    """Drives a YCSB workload against a key-value *service* instead of a raw index.

    The classic driver path in the benchmarks feeds operation batches
    straight into one :class:`~repro.core.interfaces.IndexSnapshot`; this
    driver instead issues every operation through a service front end —
    anything exposing ``put(key, value)``, ``remove(key)``, ``get(key)``,
    ``flush()`` and ``metrics()``, i.e.
    :class:`repro.service.VersionedKVService` — so sharding, write
    coalescing and node caching are on the measured path, the way an
    online deployment would run the workload.

    The driver is deliberately duck-typed (no import of
    :mod:`repro.service`) so workload generation stays dependency-free.
    """

    def __init__(self, workload: YCSBWorkload):
        self.workload = workload

    def load(self, service, commit_message: str = "ycsb initial load") -> OperationCounters:
        """Load the initial dataset through the service's bulk-ingest path.

        Services exposing :meth:`load` (e.g.
        :class:`~repro.service.VersionedKVService`) ingest each load batch
        through the shard-grouped bulk path — one lock round-trip and one
        batched write per shard per batch, with the bottom-up builders
        doing the first batch — instead of buffering key by key.  Other
        front ends fall back to the per-key put loop.  Commits the loaded
        state (one cross-shard version) when the service supports
        :meth:`commit`, and returns counters covering the load phase.
        """
        counters = OperationCounters()
        before = service.metrics()
        bulk_load = getattr(service, "load", None)
        start = time.perf_counter()
        for batch in self.workload.load_batches():
            if callable(bulk_load):
                counters.operations += bulk_load(batch)
            else:
                for key, value in batch.items():
                    service.put(key, value)
                    counters.operations += 1
        service.flush()
        if hasattr(service, "commit"):
            service.commit(commit_message)
        counters.elapsed_seconds = time.perf_counter() - start
        self._fill_deltas(counters, before, service.metrics())
        return counters

    def run(self, service, operation_count: Optional[int] = None,
            commit_every: Optional[int] = None) -> OperationCounters:
        """Execute the operation stream against the service; return counters.

        Reads go through :meth:`get` (read-your-writes over any pending
        batch); writes buffer and flush at the service's batch size.  A
        final :meth:`flush` is included in the measured time so unbatched
        and batched configurations are comparable.

        ``commit_every=N`` additionally calls ``service.commit()`` every N
        operations (and once at the end), producing the multi-version
        history that durable deployments checkpoint — the shape the
        retention-policy GC experiments (``bench_storage_engine.py``) and
        the crash-recovery drills need.  The number of commits issued is
        recorded in ``counters.extra["commits"]``.
        """
        if commit_every is not None and commit_every <= 0:
            raise ValueError("commit_every must be positive (or None)")
        counters = OperationCounters()
        commits = 0
        before = service.metrics()
        start = time.perf_counter()
        for serial, operation in enumerate(self.workload.operations(operation_count), start=1):
            if operation.is_write:
                service.put(operation.key, operation.value)
            else:
                service.get(operation.key)
            counters.operations += 1
            if commit_every is not None and serial % commit_every == 0:
                service.commit(f"ycsb checkpoint @{serial}")
                commits += 1
        service.flush()
        if commit_every is not None:
            # Checkpoint the tail — unless the last operation landed
            # exactly on a boundary and is already committed.
            if counters.operations % commit_every != 0 or counters.operations == 0:
                service.commit("ycsb final checkpoint")
                commits += 1
            counters.extra["commits"] = commits
        counters.elapsed_seconds = time.perf_counter() - start
        self._fill_deltas(counters, before, service.metrics())
        return counters

    def run_concurrent(self, service, num_threads: int = 4,
                       operation_count: Optional[int] = None) -> OperationCounters:
        """Execute the operation stream from ``num_threads`` client threads.

        The stream is materialized once and dealt round-robin to the
        client threads (thread ``t`` executes operations ``t``,
        ``t + N``, ``t + 2N``, ...), so the *set* of operations — and
        therefore the load each configuration measures — is identical for
        every thread count; only the interleaving varies.  All threads
        run against the shared ``service``, exercising its concurrent
        write/read paths; the driver requires the service to be
        thread-safe (:class:`repro.service.VersionedKVService` is).

        A barrier aligns the thread start so the wall-clock window covers
        only concurrent execution; the final drain ``flush()`` is included
        in the measured time, mirroring :meth:`run`.  Any exception in a
        client thread is re-raised here after all threads stop.
        """
        if num_threads <= 0:
            raise ValueError("num_threads must be positive")
        operations = list(self.workload.operations(operation_count))
        slices = [operations[thread::num_threads] for thread in range(num_threads)]
        barrier = threading.Barrier(num_threads + 1)
        failures: List[BaseException] = []
        failure_lock = threading.Lock()

        def client(ops: List[Operation]) -> None:
            try:
                barrier.wait()
                for operation in ops:
                    if operation.is_write:
                        service.put(operation.key, operation.value)
                    else:
                        service.get(operation.key)
            # repro-lint: disable=L5-exception-policy — client-thread body: the exception is appended to `failures` and re-raised on the caller's thread after join()
            except BaseException as exc:  # re-raised on the caller's thread
                with failure_lock:
                    failures.append(exc)

        threads = [
            threading.Thread(target=client, args=(ops,), name=f"ycsb-client-{t}")
            for t, ops in enumerate(slices)
        ]
        counters = OperationCounters()
        before = service.metrics()
        for thread in threads:
            thread.start()
        barrier.wait()
        start = time.perf_counter()
        for thread in threads:
            thread.join()
        if not failures:
            service.flush()
        counters.elapsed_seconds = time.perf_counter() - start
        if failures:
            raise failures[0]
        counters.operations = len(operations)
        counters.extra["client_threads"] = num_threads
        self._fill_deltas(counters, before, service.metrics())
        return counters

    @staticmethod
    def _fill_deltas(counters: OperationCounters, before, after) -> None:
        """Record node-I/O and cache deltas between two metrics snapshots."""
        counters.nodes_created = after.nodes_written - before.nodes_written
        counters.nodes_read = after.nodes_read - before.nodes_read
        counters.cache.hits = after.cache.hits - before.cache.hits
        counters.cache.misses = after.cache.misses - before.cache.misses


# ---------------------------------------------------------------------------
# Remote driver mode (multi-process, over real sockets)
# ---------------------------------------------------------------------------

def _remote_worker(config: YCSBConfig, host: str, port: int, worker_index: int,
                   num_workers: int, operation_count: Optional[int],
                   result_queue) -> None:
    """One client process: replay a strided slice of the operation stream.

    Module-level (not a closure) so it pickles under every multiprocessing
    start method.  The workload is regenerated from the picklable
    :class:`YCSBConfig`, so workers agree on the byte-exact stream without
    shipping it; worker ``w`` executes operations ``w, w+N, w+2N, ...`` —
    the same dealing rule as :meth:`YCSBServiceDriver.run_concurrent`, so
    the executed operation *set* is identical at every client count.
    """
    # Imported lazily so workload generation itself stays free of any
    # dependency on the server package.
    from repro.server.client import RemoteRepository

    workload = YCSBWorkload(config)
    operations = list(workload.operations(operation_count))[worker_index::num_workers]
    latencies: List[float] = []
    try:
        with RemoteRepository(host, port, pool_size=1, busy_retries=16,
                              busy_backoff=0.005) as remote:
            start = time.perf_counter()
            for operation in operations:
                began = time.perf_counter()
                if operation.is_write:
                    remote.put(operation.key, operation.value)
                else:
                    remote.get(operation.key)
                latencies.append(time.perf_counter() - began)
            elapsed = time.perf_counter() - start
    # repro-lint: disable=L5-exception-policy — worker-process body: repr(exc) travels over the result queue and the parent raises RuntimeError naming this worker
    except BaseException as exc:  # surfaced by the parent as RuntimeError
        result_queue.put((worker_index, None, repr(exc)))
        return
    result_queue.put((worker_index, elapsed, latencies))


class YCSBRemoteDriver:
    """Drives a YCSB workload against a wire server from real client processes.

    Where :class:`YCSBServiceDriver` exercises the in-process stack, this
    driver measures the whole network path: every operation is a framed
    request from a separate OS process through a real socket into the
    server's admission queues (``benchmarks/bench_server.py`` uses it for
    the tail-latency-vs-client-count experiment).  Workers reconstruct
    the deterministic stream from the picklable config, so the operation
    set is identical at every client count; only concurrency varies.
    """

    def __init__(self, workload: YCSBWorkload, host: str, port: int):
        self.workload = workload
        self.host = host
        self.port = port

    def load(self, batch_size: int = 1000,
             commit_message: str = "ycsb remote load") -> OperationCounters:
        """Load the initial dataset over one client connection, then commit."""
        from repro.server.client import RemoteRepository

        counters = OperationCounters()
        start = time.perf_counter()
        with RemoteRepository(self.host, self.port, busy_retries=64,
                              busy_backoff=0.01) as remote:
            batch: List[Tuple[bytes, bytes]] = []
            for key, value in self.workload.initial_dataset().items():
                batch.append((key, value))
                if len(batch) >= batch_size:
                    counters.operations += remote.put_many(batch)
                    batch = []
            if batch:
                counters.operations += remote.put_many(batch)
            remote.commit(commit_message)
        counters.elapsed_seconds = time.perf_counter() - start
        return counters

    def run(self, num_processes: int = 1,
            operation_count: Optional[int] = None,
            result_poll_seconds: float = 5.0) -> OperationCounters:
        """Hammer the server from ``num_processes`` OS processes.

        Returns counters whose ``extra`` dict carries the tail-latency
        summary (``lat_p50``/``lat_p90``/``lat_p99``/``lat_mean``/
        ``lat_max``, seconds) merged across every client, plus
        ``client_processes``.  Throughput is total operations over the
        slowest client's wall-clock window (all clients start together).
        A failed worker raises ``RuntimeError`` naming it — including a
        worker that *died without reporting* (OOM kill, interpreter
        crash): results are collected with ``result_poll_seconds``
        timeouts and liveness checks, never an unbounded blocking get.
        """
        if num_processes <= 0:
            raise ValueError("num_processes must be positive")
        import multiprocessing
        import queue as queue_module

        context = multiprocessing.get_context()
        result_queue = context.Queue()
        workers = [
            context.Process(
                target=_remote_worker,
                args=(self.workload.config, self.host, self.port, index,
                      num_processes, operation_count, result_queue),
                name=f"ycsb-remote-{index}")
            for index in range(num_processes)
        ]
        for worker in workers:
            worker.start()
        merged: List[float] = []
        slowest = 0.0
        failures: List[str] = []
        outstanding = set(range(num_processes))
        while outstanding:
            try:
                worker_index, elapsed, payload = result_queue.get(
                    timeout=result_poll_seconds)
            except queue_module.Empty:
                # A worker that died without posting a result will never
                # satisfy the get; declare it failed instead of blocking
                # forever.  (A live-but-slow worker just loops.)
                for index in sorted(outstanding):
                    worker = workers[index]
                    if not worker.is_alive():
                        outstanding.discard(index)
                        failures.append(
                            f"worker {index} exited with code "
                            f"{worker.exitcode} without reporting a result")
                continue
            outstanding.discard(worker_index)
            if elapsed is None:
                failures.append(f"worker {worker_index}: {payload}")
            else:
                slowest = max(slowest, elapsed)
                merged.extend(payload)
        for worker in workers:
            worker.join(timeout=60)
        if failures:
            raise RuntimeError("remote YCSB worker(s) failed: " + "; ".join(failures))

        from repro.analysis.histogram import LatencyRecorder

        recorder = LatencyRecorder()
        recorder.samples.extend(merged)
        counters = OperationCounters()
        counters.operations = len(merged)
        counters.elapsed_seconds = slowest
        counters.extra["client_processes"] = float(num_processes)
        counters.extra["lat_mean"] = recorder.mean()
        counters.extra["lat_p50"] = recorder.percentile(0.50)
        counters.extra["lat_p90"] = recorder.percentile(0.90)
        counters.extra["lat_p99"] = recorder.percentile(0.99)
        counters.extra["lat_max"] = max(merged) if merged else 0.0
        return counters
