"""A pass-through node store that meters access latency and volume.

The benchmark harness needs two things the plain stores do not provide:

* per-operation latency accounting that can include a *simulated* network
  round-trip cost (the Forkbase client/server and Noms experiments add a
  fixed per-request delay instead of real sockets), and
* counters split by direction (gets vs puts, bytes in vs out).

:class:`MeteredNodeStore` wraps any other store and adds both.  By
default the simulated latency is accounted, not slept, so benchmarks
remain fast while still letting the harness report remote-access-dominated
read costs the way the paper does.  With ``realtime=True`` the store
*sleeps* each operation's simulated cost instead: the sleep releases the
GIL, so the concurrency benchmarks (``bench_concurrent_service.py``) can
show worker threads genuinely overlapping remote-storage round trips —
the regime where a concurrent execution engine pays off in deployment.
"""

from __future__ import annotations

import threading
import time
from typing import Iterator, Optional

from repro.hashing.digest import Digest
from repro.storage.store import NodeStore


class MeteredNodeStore(NodeStore):
    """Wrap a store, counting operations and accumulating simulated cost.

    Parameters
    ----------
    backing:
        The underlying node store.
    get_cost_seconds / put_cost_seconds:
        Simulated per-operation overhead added to :attr:`simulated_seconds`
        (e.g. a network round trip).  Defaults to zero (pure counting).
    per_byte_cost_seconds:
        Additional simulated cost per byte transferred, modelling limited
        bandwidth (used by the Figure 1 motivation experiment).
    realtime:
        When True, each operation actually sleeps its simulated cost
        (releasing the GIL) instead of merely recording it, so concurrent
        clients can overlap the waits the way they would overlap real
        network round trips.

    The meters are updated under an internal lock, so the store can be
    shared by concurrent clients without losing counts.
    """

    def __init__(
        self,
        backing: NodeStore,
        get_cost_seconds: float = 0.0,
        put_cost_seconds: float = 0.0,
        per_byte_cost_seconds: float = 0.0,
        realtime: bool = False,
    ):
        super().__init__(hash_function=backing.hash_function, verify_on_read=False)
        self.backing = backing
        self.get_cost_seconds = get_cost_seconds
        self.put_cost_seconds = put_cost_seconds
        self.per_byte_cost_seconds = per_byte_cost_seconds
        self.realtime = realtime
        self._meter_lock = threading.Lock()
        self.simulated_seconds = 0.0
        self.get_count = 0
        self.put_count = 0
        self.bytes_fetched = 0
        self.bytes_stored = 0

    def reset_meters(self) -> None:
        """Zero every meter (does not touch stored data)."""
        with self._meter_lock:
            self.simulated_seconds = 0.0
            self.get_count = 0
            self.put_count = 0
            self.bytes_fetched = 0
            self.bytes_stored = 0

    def _charge(self, cost: float) -> None:
        """Account ``cost`` seconds; sleep them for real in realtime mode."""
        if cost and self.realtime:
            time.sleep(cost)

    # -- NodeStore primitives ----------------------------------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        is_new = self.backing.put_bytes(digest, data)
        cost = 0.0
        with self._meter_lock:
            self.put_count += 1
            if is_new:
                self.bytes_stored += len(data)
                cost = self.put_cost_seconds + len(data) * self.per_byte_cost_seconds
                self.simulated_seconds += cost
        self._charge(cost)
        return is_new

    def get_bytes(self, digest: Digest) -> bytes:
        data = self.backing.get_bytes(digest)
        cost = self.get_cost_seconds + len(data) * self.per_byte_cost_seconds
        with self._meter_lock:
            self.get_count += 1
            self.bytes_fetched += len(data)
            self.simulated_seconds += cost
        self._charge(cost)
        return data

    def contains(self, digest: Digest) -> bool:
        return self.backing.contains(digest)

    def digests(self) -> Iterator[Digest]:
        return self.backing.digests()

    def __len__(self) -> int:
        return len(self.backing)

    def total_bytes(self) -> int:
        return self.backing.total_bytes()
