"""A pass-through node store that meters access latency and volume.

The benchmark harness needs two things the plain stores do not provide:

* per-operation latency accounting that can include a *simulated* network
  round-trip cost (the Forkbase client/server and Noms experiments add a
  fixed per-request delay instead of real sockets), and
* counters split by direction (gets vs puts, bytes in vs out).

:class:`MeteredNodeStore` wraps any other store and adds both.  The
simulated latency is accounted, not slept, so benchmarks remain fast while
still letting the harness report remote-access-dominated read costs the
way the paper does.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.hashing.digest import Digest
from repro.storage.store import NodeStore


class MeteredNodeStore(NodeStore):
    """Wrap a store, counting operations and accumulating simulated cost.

    Parameters
    ----------
    backing:
        The underlying node store.
    get_cost_seconds / put_cost_seconds:
        Simulated per-operation overhead added to :attr:`simulated_seconds`
        (e.g. a network round trip).  Defaults to zero (pure counting).
    per_byte_cost_seconds:
        Additional simulated cost per byte transferred, modelling limited
        bandwidth (used by the Figure 1 motivation experiment).
    """

    def __init__(
        self,
        backing: NodeStore,
        get_cost_seconds: float = 0.0,
        put_cost_seconds: float = 0.0,
        per_byte_cost_seconds: float = 0.0,
    ):
        super().__init__(hash_function=backing.hash_function, verify_on_read=False)
        self.backing = backing
        self.get_cost_seconds = get_cost_seconds
        self.put_cost_seconds = put_cost_seconds
        self.per_byte_cost_seconds = per_byte_cost_seconds
        self.simulated_seconds = 0.0
        self.get_count = 0
        self.put_count = 0
        self.bytes_fetched = 0
        self.bytes_stored = 0

    def reset_meters(self) -> None:
        """Zero every meter (does not touch stored data)."""
        self.simulated_seconds = 0.0
        self.get_count = 0
        self.put_count = 0
        self.bytes_fetched = 0
        self.bytes_stored = 0

    # -- NodeStore primitives ----------------------------------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        is_new = self.backing.put_bytes(digest, data)
        self.put_count += 1
        if is_new:
            self.bytes_stored += len(data)
            self.simulated_seconds += self.put_cost_seconds + len(data) * self.per_byte_cost_seconds
        return is_new

    def get_bytes(self, digest: Digest) -> bytes:
        data = self.backing.get_bytes(digest)
        self.get_count += 1
        self.bytes_fetched += len(data)
        self.simulated_seconds += self.get_cost_seconds + len(data) * self.per_byte_cost_seconds
        return data

    def contains(self, digest: Digest) -> bool:
        return self.backing.contains(digest)

    def digests(self) -> Iterator[Digest]:
        return self.backing.digests()

    def __len__(self) -> int:
        return len(self.backing)

    def total_bytes(self) -> int:
        return self.backing.total_bytes()
