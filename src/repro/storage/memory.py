"""Dictionary-backed in-memory node store.

This is the default store used throughout the tests, examples and
benchmarks.  It keeps every node in a Python ``dict`` keyed by digest,
which makes deduplication trivially visible: ``len(store)`` is exactly the
number of *unique* nodes across every index version sharing the store.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.core.errors import NodeNotFoundError
from repro.hashing.digest import Digest, HashFunction
from repro.storage.store import NodeStore


class InMemoryNodeStore(NodeStore):
    """A content-addressed node store held entirely in memory."""

    def __init__(self, hash_function: Optional[HashFunction] = None, verify_on_read: bool = False):
        super().__init__(hash_function=hash_function, verify_on_read=verify_on_read)
        self._nodes: Dict[Digest, bytes] = {}

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        if digest in self._nodes:
            return False
        self._nodes[digest] = bytes(data)
        return True

    def get_bytes(self, digest: Digest) -> bytes:
        try:
            return self._nodes[digest]
        except KeyError:
            raise NodeNotFoundError(digest) from None

    def contains(self, digest: Digest) -> bool:
        return digest in self._nodes

    def digests(self) -> Iterator[Digest]:
        return iter(list(self._nodes.keys()))

    def __len__(self) -> int:
        return len(self._nodes)

    def total_bytes(self) -> int:
        return sum(len(v) for v in self._nodes.values())

    def delete(self, digest: Digest) -> bool:
        """Remove a node (used by garbage collection); returns True if present."""
        return self._nodes.pop(digest, None) is not None

    def clear(self) -> None:
        """Drop every stored node and reset statistics."""
        self._nodes.clear()
        self.stats.reset()

    def corrupt(self, digest: Digest, data: bytes) -> None:
        """Overwrite the bytes of a stored node *without* re-hashing.

        Only used by tests and the tamper-detection example to simulate
        malicious modification of the underlying storage; a subsequent
        verified read or proof check must detect the mismatch.
        """
        if digest not in self._nodes:
            raise NodeNotFoundError(digest)
        self._nodes[digest] = bytes(data)
