"""Append-only file-backed node store.

Nodes are appended to fixed-capacity segment files under a directory; an
in-memory index maps each digest to ``(segment, offset, length)``.  On
re-open the index is rebuilt by scanning the segments, verifying each
record's digest as it goes, so silent corruption of the files is detected
at load time.

Record layout (little-endian framing, self-delimiting):

``[digest_len: uvarint][digest bytes][data_len: uvarint][data bytes]``

Durability guarantees
---------------------
Each :meth:`put` appends its record and closes the file handle, so the
bytes are handed to the operating system immediately: they survive a
*process* crash.  They do **not** survive a power loss or kernel crash
until :meth:`flush` — which ``fsync``\\ s every segment appended to since
the last flush — or :meth:`close` has run.  The service layer calls
``flush()`` after every batched shard flush, so batched writes are
fsynced at batch granularity.  There is no commit marker: a record torn
by a crash mid-append is *not* repaired on reopen (the load-time scan
raises on it); use :class:`repro.storage.segment.SegmentNodeStore` when
crash recovery matters.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, Optional, Tuple

from repro.core.errors import CorruptNodeError, NodeNotFoundError
from repro.encoding.binary import decode_bytes, encode_bytes
from repro.hashing.digest import Digest, HashFunction
from repro.storage.segment import fsync_directory
from repro.storage.store import NodeStore


class FileNodeStore(NodeStore):
    """A persistent content-addressed store over append-only segment files.

    Parameters
    ----------
    directory:
        Directory that holds the segment files; created if missing.
    segment_capacity_bytes:
        A new segment file is started once the active one grows beyond
        this size.
    verify_on_load:
        Whether to re-hash every record while rebuilding the index when
        the store is opened over existing files.
    """

    SEGMENT_PREFIX = "segment-"
    SEGMENT_SUFFIX = ".nodes"

    def __init__(
        self,
        directory: str,
        hash_function: Optional[HashFunction] = None,
        verify_on_read: bool = False,
        segment_capacity_bytes: int = 16 * 1024 * 1024,
        verify_on_load: bool = True,
    ):
        super().__init__(hash_function=hash_function, verify_on_read=verify_on_read)
        self.directory = directory
        self.segment_capacity_bytes = segment_capacity_bytes
        self._index: Dict[Digest, Tuple[int, int, int]] = {}
        self._active_segment = 0
        self._active_size = 0
        #: Segments appended to since the last flush() (fsync targets).
        self._dirty_segments: set = set()
        #: Whether a segment *file* was created since the last flush()
        #: (its directory entry needs an fsync of the parent directory).
        self._created_since_flush = False
        os.makedirs(directory, exist_ok=True)
        self._load_existing(verify_on_load)

    # -- segment helpers --------------------------------------------------

    def _segment_path(self, segment: int) -> str:
        return os.path.join(self.directory, f"{self.SEGMENT_PREFIX}{segment:06d}{self.SEGMENT_SUFFIX}")

    def _existing_segments(self):
        names = []
        for name in os.listdir(self.directory):
            if name.startswith(self.SEGMENT_PREFIX) and name.endswith(self.SEGMENT_SUFFIX):
                number = int(name[len(self.SEGMENT_PREFIX) : -len(self.SEGMENT_SUFFIX)])
                names.append(number)
        return sorted(names)

    def _load_existing(self, verify: bool) -> None:
        segments = self._existing_segments()
        for segment in segments:
            path = self._segment_path(segment)
            with open(path, "rb") as handle:
                blob = handle.read()
            offset = 0
            while offset < len(blob):
                record_start = offset
                digest_bytes, offset = decode_bytes(blob, offset)
                data, offset = decode_bytes(blob, offset)
                digest = Digest(digest_bytes)
                if verify and self.hash_function.hash(data) != digest:
                    raise CorruptNodeError(digest, f"corrupt record in {path} at {record_start}")
                self._index[digest] = (segment, record_start, offset - record_start)
            if segment == segments[-1]:
                self._active_segment = segment
                self._active_size = len(blob)
        if segments:
            self._active_segment = segments[-1]
        else:
            self._active_segment = 0
            self._active_size = 0

    # -- NodeStore primitives ---------------------------------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        """Append ``data`` under ``digest`` (write-through; see module docstring)."""
        if digest in self._index:
            return False
        record = encode_bytes(digest.raw) + encode_bytes(data)
        if self._active_size + len(record) > self.segment_capacity_bytes and self._active_size > 0:
            self._active_segment += 1
            self._active_size = 0
        path = self._segment_path(self._active_segment)
        offset = self._active_size
        if offset == 0:
            self._created_since_flush = True
        with open(path, "ab") as handle:
            # repro-lint: disable=L6-durability-order — FileNodeStore durability is batch-granular by design: flush() fsyncs every dirty segment, and the service flushes stores before any journal append (module docstring)
            handle.write(record)
        self._index[digest] = (self._active_segment, offset, len(record))
        self._active_size += len(record)
        self._dirty_segments.add(self._active_segment)
        return True

    def get_bytes(self, digest: Digest) -> bytes:
        """Read one record back from its segment file."""
        entry = self._index.get(digest)
        if entry is None:
            raise NodeNotFoundError(digest)
        segment, offset, length = entry
        path = self._segment_path(segment)
        with open(path, "rb") as handle:
            handle.seek(offset)
            record = handle.read(length)
        digest_bytes, pos = decode_bytes(record, 0)
        data, _ = decode_bytes(record, pos)
        if digest_bytes != digest.raw:
            raise CorruptNodeError(digest, "record digest does not match index entry")
        return data

    def contains(self, digest: Digest) -> bool:
        """Whether the store holds this digest (index lookup, no file I/O)."""
        return digest in self._index

    def digests(self) -> Iterator[Digest]:
        """Iterate every stored digest."""
        return iter(list(self._index.keys()))

    def __len__(self) -> int:
        return len(self._index)

    def total_bytes(self) -> int:
        """Logical node bytes (framing and digest overhead excluded),
        consistent with the in-memory store."""
        return sum(len(self.get_bytes(d)) for d in self._index.keys())

    def close(self) -> None:
        """Flush (fsync) outstanding writes; files are opened per operation."""
        self.flush()

    def flush(self) -> None:
        """``fsync`` every segment appended to since the last flush.

        Individual puts reach the OS immediately (durable against process
        crash); this pushes them through the page cache to stable storage
        so *batched* writes also survive power loss — the durability
        barrier the service layer invokes once per shard flush.
        """
        for segment in sorted(self._dirty_segments):
            path = self._segment_path(segment)
            if not os.path.exists(path):
                continue
            fd = os.open(path, os.O_RDONLY)
            try:
                os.fsync(fd)
            finally:
                os.close(fd)
        self._dirty_segments.clear()
        if self._created_since_flush:
            # New segment files also need their directory entry on disk.
            self._created_since_flush = False
            fsync_directory(self.directory)
