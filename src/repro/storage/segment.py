"""Durable append-only segment-file storage engine with crash recovery.

:class:`SegmentNodeStore` is the production-shaped persistence backend
for the content-addressed node stores: nodes are batched in memory and
appended to fixed-capacity *segment files* as CRC-protected records, with
an explicit **commit marker** record terminating every batch so that a
half-written flush is never visible after a crash.

Segment file layout (all integers LEB128 uvarints unless noted)::

    segment file := record*
    record       := DATA-record | COMMIT-record
    DATA-record  := 0x01  [digest_len][digest bytes][data_len][data bytes]  [crc32: 4 bytes LE]
    COMMIT-record:= 0x02  [record_count]                                    [crc32: 4 bytes LE]

The CRC-32 covers every byte of the record before the checksum field
(kind byte included).  Records are self-delimiting, so the store never
needs a separate index file: on open, the in-memory ``digest → (segment,
offset, length)`` directory is rebuilt by scanning the segments.

Durability protocol
-------------------
* :meth:`put_bytes` only buffers; buffered nodes are readable immediately
  (read-your-writes) but are **not durable**.
* :meth:`flush` appends every buffered node as DATA records followed by
  one COMMIT marker, then ``fsync``\\ s the segment.  The COMMIT marker is
  the atomic durability point: a batch is either entirely visible after
  reopen (its marker made it to disk) or entirely invisible.
* On reopen, the scan stops at the first torn or CRC-failing record and
  **truncates the tail back to the last valid COMMIT marker** — DATA
  records from a flush that crashed before its marker are dropped, and a
  record torn mid-write is removed.  What remains is exactly the last
  committed state.

Garbage collection hooks
------------------------
Deleting in place is impossible in an append-only file, so
:meth:`delete` only drops the directory entry (the bytes stay on disk)
and :meth:`compact` — used by :mod:`repro.storage.gc` — rewrites the
live nodes into fresh segments and unlinks the old files, which is where
space is physically reclaimed.
"""

from __future__ import annotations

import os
import time
import zlib
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.core.errors import CorruptNodeError, NodeNotFoundError, StoreClosedError
from repro.core.metrics import GCCounters
from repro.encoding.binary import decode_bytes, decode_uvarint, encode_bytes, encode_uvarint
from repro.hashing.digest import Digest, HashFunction
from repro.storage.store import NodeStore

#: Record kind tags (first byte of every record).
KIND_DATA = 0x01
KIND_COMMIT = 0x02

_CRC_LEN = 4


def encode_data_record(digest: Digest, data: bytes) -> bytes:
    """Encode one node as a CRC-protected DATA record."""
    body = bytes([KIND_DATA]) + encode_bytes(digest.raw) + encode_bytes(data)
    return body + zlib.crc32(body).to_bytes(_CRC_LEN, "little")


def encode_commit_record(record_count: int) -> bytes:
    """Encode a COMMIT marker sealing ``record_count`` preceding DATA records."""
    body = bytes([KIND_COMMIT]) + encode_uvarint(record_count)
    return body + zlib.crc32(body).to_bytes(_CRC_LEN, "little")


def fsync_directory(path: str) -> None:
    """Best-effort fsync of a *directory* so new file entries are durable.

    Creating a file and fsyncing its contents does not persist the
    directory entry itself; every creation point in the storage layer
    (segment rollover, compaction output, the service's commit manifest)
    calls this afterwards.  Platforms that cannot open or fsync a
    directory are silently tolerated — the data fsync still happened.
    """
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


class _TornRecord(Exception):
    """Internal: a record is truncated or fails its CRC (recovery stops here)."""


def _parse_record(blob: bytes, offset: int) -> Tuple[int, Optional[Tuple[bytes, bytes]], int]:
    """Parse one record at ``offset``.

    Returns ``(kind, payload, next_offset)`` where ``payload`` is
    ``(digest_bytes, data)`` for DATA records and ``None`` for COMMIT
    markers.  Raises :class:`_TornRecord` when the record is incomplete
    or its CRC does not match — the caller treats that position as the
    torn tail.
    """
    if offset >= len(blob):
        raise _TornRecord()
    kind = blob[offset]
    try:
        if kind == KIND_DATA:
            digest_bytes, pos = decode_bytes(blob, offset + 1)
            data, pos = decode_bytes(blob, pos)
            payload: Optional[Tuple[bytes, bytes]] = (digest_bytes, data)
        elif kind == KIND_COMMIT:
            _count, pos = decode_uvarint(blob, offset + 1)
            payload = None
        else:
            raise _TornRecord()
    except ValueError:
        raise _TornRecord() from None
    end = pos + _CRC_LEN
    if end > len(blob):
        raise _TornRecord()
    expected = int.from_bytes(blob[pos:end], "little")
    if zlib.crc32(blob[offset:pos]) != expected:
        raise _TornRecord()
    return kind, payload, end


@dataclass
class RecoveryReport:
    """What the open-time scan found (and repaired) in a segment directory."""

    #: Segment files scanned while rebuilding the directory.
    segments_scanned: int = 0
    #: Committed DATA records now served from the directory.
    records_recovered: int = 0
    #: COMMIT markers encountered (== durable flushes that survived).
    commit_batches: int = 0
    #: Bytes cut off segment tails (torn records + unmarked flush data).
    torn_bytes_truncated: int = 0
    #: Complete DATA records dropped because no COMMIT marker followed them.
    uncommitted_records_dropped: int = 0
    #: Wall-clock seconds the scan took.
    seconds: float = 0.0


class SegmentNodeStore(NodeStore):
    """A durable content-addressed store over append-only segment files.

    Parameters
    ----------
    directory:
        Directory holding the segment files; created if missing.  The
        in-memory directory is rebuilt by scanning it on construction
        (crash recovery happens here — see :class:`RecoveryReport`).
    segment_capacity_bytes:
        Soft segment size: a new segment is started once the active one
        has grown past this.  One flush batch never spans two segments,
        so a segment can exceed the capacity by at most one batch.
    verify_on_load:
        Re-hash every record during the open-time scan (CRC checking is
        always on; this additionally catches a corrupted record whose CRC
        was fixed up by an attacker).
    fsync:
        Issue ``os.fsync`` at every commit point (flush/compact).  Leave
        on for real durability; tests/benchmarks may disable it to avoid
        paying disk latency for crash windows they don't exercise.
    """

    SEGMENT_PREFIX = "seg-"
    SEGMENT_SUFFIX = ".seg"

    def __init__(
        self,
        directory: str,
        hash_function: Optional[HashFunction] = None,
        verify_on_read: bool = False,
        segment_capacity_bytes: int = 4 * 1024 * 1024,
        verify_on_load: bool = False,
        fsync: bool = True,
    ):
        super().__init__(hash_function=hash_function, verify_on_read=verify_on_read)
        self.directory = directory
        self.segment_capacity_bytes = segment_capacity_bytes
        self.fsync = fsync
        #: digest → (segment number, record offset, record length, data length)
        self._directory: Dict[Digest, Tuple[int, int, int, int]] = {}
        #: nodes accepted by put_bytes but not yet flushed to disk.
        self._pending: Dict[Digest, bytes] = {}
        self._segment_sizes: Dict[int, int] = {}
        self._active_segment = 0
        self._closed = False
        #: Cumulative GC/compaction accounting for this store.
        self.gc = GCCounters()
        #: Durable flushes performed since open (commit markers written).
        self.commit_batches = 0
        os.makedirs(directory, exist_ok=True)
        #: Result of the open-time scan (torn-tail repair happens there).
        self.recovery = self._recover(verify_on_load)

    # -- segment file helpers ---------------------------------------------

    def _segment_path(self, segment: int) -> str:
        return os.path.join(self.directory, f"{self.SEGMENT_PREFIX}{segment:06d}{self.SEGMENT_SUFFIX}")

    def _existing_segments(self) -> List[int]:
        numbers = []
        for name in os.listdir(self.directory):
            if name.startswith(self.SEGMENT_PREFIX) and name.endswith(self.SEGMENT_SUFFIX):
                numbers.append(int(name[len(self.SEGMENT_PREFIX):-len(self.SEGMENT_SUFFIX)]))
        return sorted(numbers)

    def _fsync_file(self, handle) -> None:
        handle.flush()
        if self.fsync:
            os.fsync(handle.fileno())

    def _fsync_directory(self) -> None:
        if self.fsync:
            fsync_directory(self.directory)

    # -- crash recovery ----------------------------------------------------

    def _recover(self, verify: bool) -> RecoveryReport:
        """Rebuild the directory by scanning segments; truncate torn tails.

        Torn-tail repair is only legal in the *final* (highest-numbered)
        segment — the one any crash-interrupted append or compaction was
        writing.  An invalid record in an earlier, sealed segment cannot
        come from a crash, only from corruption of committed data, so it
        raises :class:`CorruptNodeError` instead of silently truncating
        committed batches.
        """
        report = RecoveryReport()
        started = time.perf_counter()
        segments = self._existing_segments()
        for segment in segments:
            path = self._segment_path(segment)
            with open(path, "rb") as handle:
                blob = handle.read()
            offset = 0
            committed_end = 0
            batch: List[Tuple[Digest, int, int, int]] = []
            while offset < len(blob):
                try:
                    kind, payload, next_offset = _parse_record(blob, offset)
                except _TornRecord:
                    break
                if kind == KIND_DATA:
                    digest_bytes, data = payload  # type: ignore[misc]
                    digest = Digest(digest_bytes)
                    if verify and self.hash_function.hash(data) != digest:
                        raise CorruptNodeError(
                            digest, f"corrupt record in {path} at offset {offset}")
                    batch.append((digest, offset, next_offset - offset, len(data)))
                else:  # COMMIT: the preceding batch becomes visible
                    for digest, rec_offset, rec_len, data_len in batch:
                        self._directory[digest] = (segment, rec_offset, rec_len, data_len)
                        report.records_recovered += 1
                    batch = []
                    committed_end = next_offset
                    report.commit_batches += 1
                offset = next_offset
            if committed_end < len(blob):
                if segment != segments[-1]:
                    raise CorruptNodeError(
                        None,
                        f"invalid record in sealed segment {path} at offset "
                        f"{offset}; refusing torn-tail repair outside the "
                        "final segment (committed data is corrupt)")
                report.torn_bytes_truncated += len(blob) - committed_end
                report.uncommitted_records_dropped += len(batch)
                with open(path, "r+b") as handle:
                    handle.truncate(committed_end)
                    self._fsync_file(handle)
            self._segment_sizes[segment] = committed_end
            report.segments_scanned += 1
        # Drop segments recovery emptied entirely so they don't linger.
        for segment in [s for s, size in self._segment_sizes.items() if size == 0]:
            os.remove(self._segment_path(segment))
            del self._segment_sizes[segment]
        self._active_segment = max(self._segment_sizes) if self._segment_sizes else 0
        report.seconds = time.perf_counter() - started
        return report

    # -- lifecycle ---------------------------------------------------------

    def _require_open(self) -> None:
        if self._closed:
            raise StoreClosedError(f"SegmentNodeStore({self.directory!r}) is closed")

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    def close(self) -> None:
        """Flush pending nodes durably and refuse further operations."""
        if self._closed:
            return
        self.flush()
        self._closed = True

    # -- durable batched append (the commit path) -------------------------

    @property
    def pending_count(self) -> int:
        """Nodes buffered in memory, awaiting the next :meth:`flush`."""
        return len(self._pending)

    def flush(self) -> int:
        """Append every pending node plus a COMMIT marker; fsync; return count.

        This is the batched append path the service's write batcher
        drives: one flush per shard batch, one commit marker per flush.
        After it returns the batch is durable (modulo ``fsync=False``).
        """
        self._require_open()
        if not self._pending:
            return 0
        entries = list(self._pending.items())
        records = [encode_data_record(digest, data) for digest, data in entries]
        batch = b"".join(records) + encode_commit_record(len(records))
        active_size = self._segment_sizes.get(self._active_segment, 0)
        if active_size > 0 and active_size + len(batch) > self.segment_capacity_bytes:
            self._active_segment += 1
            active_size = 0
        path = self._segment_path(self._active_segment)
        creating = active_size == 0
        with open(path, "ab") as handle:
            base = handle.tell()
            handle.write(batch)
            self._fsync_file(handle)
        if creating:
            self._fsync_directory()
        offset = base
        for (digest, data), record in zip(entries, records):
            self._directory[digest] = (self._active_segment, offset, len(record), len(data))
            offset += len(record)
        self._segment_sizes[self._active_segment] = base + len(batch)
        self._pending.clear()
        self.commit_batches += 1
        return len(records)

    # -- NodeStore primitives ---------------------------------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        """Buffer ``data`` under ``digest``; durable only after :meth:`flush`."""
        self._require_open()
        if digest in self._directory or digest in self._pending:
            return False
        self._pending[digest] = bytes(data)
        return True

    def _read_record(self, entry: Tuple[int, int, int, int]) -> bytes:
        segment, offset, length, _data_len = entry
        path = self._segment_path(segment)
        with open(path, "rb") as handle:
            handle.seek(offset)
            record = handle.read(length)
        try:
            kind, payload, _ = _parse_record(record, 0)
        except _TornRecord:
            raise CorruptNodeError(None, f"unreadable record in {path} at offset {offset}") from None
        if kind != KIND_DATA:
            raise CorruptNodeError(None, f"directory points at a non-DATA record in {path}")
        return payload[1]  # type: ignore[index]

    def get_bytes(self, digest: Digest) -> bytes:
        """Fetch node bytes from the pending buffer or the segment files.

        Safe to race with :meth:`compact`: compaction swaps in the new
        directory *before* unlinking the old segment files, so a reader
        holding a stale entry whose file vanished underneath it re-fetches
        the (rewritten) location and retries.  This is what keeps the
        service layer's lock-free versioned reads of retained commits
        crash-free during a concurrent GC.
        """
        self._require_open()
        pending = self._pending.get(digest)
        if pending is not None:
            return pending
        entry = self._directory.get(digest)
        if entry is None:
            raise NodeNotFoundError(digest)
        try:
            return self._read_record(entry)
        except FileNotFoundError:
            fresh = self._directory.get(digest)
            if fresh is None:
                raise NodeNotFoundError(digest) from None
            if fresh == entry:
                raise CorruptNodeError(
                    digest, "segment file vanished without a compaction") from None
            return self._read_record(fresh)

    def contains(self, digest: Digest) -> bool:
        """Whether the store (buffer or disk) holds this digest."""
        return digest in self._pending or digest in self._directory

    def digests(self) -> Iterator[Digest]:
        """Iterate every stored digest (committed first, then pending)."""
        return iter(list(self._directory.keys()) + list(self._pending.keys()))

    def __len__(self) -> int:
        return len(self._directory) + len(self._pending)

    def total_bytes(self) -> int:
        """Logical node bytes (framing/digest/CRC overhead excluded)."""
        committed = sum(entry[3] for entry in self._directory.values())
        return committed + sum(len(data) for data in self._pending.values())

    # -- physical accounting and GC hooks ---------------------------------

    def file_bytes(self) -> int:
        """Physical bytes across all segment files (framing included)."""
        return sum(self._segment_sizes.values())

    def segment_count(self) -> int:
        """Number of segment files currently on disk."""
        return len(self._segment_sizes)

    def delete(self, digest: Digest) -> bool:
        """Logically delete a node (directory entry only; bytes remain).

        Space is physically reclaimed by the next :meth:`compact` — and
        so is the deletion itself: there are no tombstone records, so a
        logically deleted node whose DATA record is still on disk
        **reappears after reopen** unless a compaction ran first.  This
        store's GC protocol (:mod:`repro.storage.gc`) always sweeps by
        compaction, which makes the reclamation durable; treat bare
        ``delete()`` as an in-process hint only.  Returns True when the
        digest was present.
        """
        self._require_open()
        if self._pending.pop(digest, None) is not None:
            return True
        return self._directory.pop(digest, None) is not None

    def compact(self, live: Iterable[Digest]) -> GCCounters:
        """Sweep phase: rewrite ``live`` nodes into fresh segments.

        Every node whose digest is in ``live`` is copied into new segment
        files (batched to the segment capacity, each batch sealed with a
        COMMIT marker and fsynced); everything else is dropped.  The old
        segment files are unlinked only after the new ones are durable,
        so a crash at any point leaves a readable store: either the old
        segments are still intact, or both generations coexist (the scan
        dedupes by digest) until a later compaction.

        Returns the :class:`~repro.core.metrics.GCCounters` delta for
        this run (also merged into :attr:`gc`).
        """
        self._require_open()
        started = time.perf_counter()
        self.flush()
        live_set = set(live)
        old_segments = sorted(self._segment_sizes)
        bytes_before = self.file_bytes()
        keep = sorted(
            ((digest, entry) for digest, entry in self._directory.items() if digest in live_set),
            key=lambda item: (item[1][0], item[1][1]),
        )
        swept = len(self._directory) - len(keep)
        next_segment = (old_segments[-1] + 1) if old_segments else self._active_segment + 1
        new_directory: Dict[Digest, Tuple[int, int, int, int]] = {}
        new_sizes: Dict[int, int] = {}
        batch: List[Tuple[Digest, bytes]] = []
        batch_bytes = 0

        def _seal(segment: int) -> None:
            records = [encode_data_record(digest, data) for digest, data in batch]
            blob = b"".join(records) + encode_commit_record(len(records))
            path = self._segment_path(segment)
            with open(path, "wb") as handle:
                handle.write(blob)
                self._fsync_file(handle)
            offset = 0
            for (digest, data), record in zip(batch, records):
                new_directory[digest] = (segment, offset, len(record), len(data))
                offset += len(record)
            new_sizes[segment] = len(blob)

        # One sequential read per old segment (keep is sorted by segment,
        # offset) instead of an open/seek/read cycle per live record.
        current_segment: Optional[int] = None
        blob = b""
        for digest, entry in keep:
            segment, offset, record_len, _data_len = entry
            if segment != current_segment:
                with open(self._segment_path(segment), "rb") as handle:
                    blob = handle.read()
                current_segment = segment
            _kind, payload, _end = _parse_record(blob, offset)
            data = payload[1]  # type: ignore[index]
            if batch and batch_bytes + record_len > self.segment_capacity_bytes:
                _seal(next_segment)
                next_segment += 1
                batch, batch_bytes = [], 0
            batch.append((digest, data))
            batch_bytes += record_len
        if batch:
            _seal(next_segment)
        self._fsync_directory()
        # Publish the new generation *before* unlinking the old one: a
        # concurrent reader either sees the old entry while its file still
        # exists, or (after a FileNotFoundError) re-fetches the new entry.
        self._directory = new_directory
        self._segment_sizes = new_sizes
        self._active_segment = max(new_sizes) if new_sizes else next_segment
        for segment in old_segments:
            os.remove(self._segment_path(segment))
        self._fsync_directory()
        bytes_after = self.file_bytes()
        delta = GCCounters(
            runs=1,
            live_nodes=len(keep),
            swept_nodes=swept,
            bytes_before=bytes_before,
            bytes_after=bytes_after,
            bytes_reclaimed=bytes_before - bytes_after,
            segments_created=len(new_sizes),
            segments_deleted=len(old_segments),
            gc_seconds=time.perf_counter() - started,
        )
        self.gc = self.gc.merge(delta)
        return delta

    def __repr__(self) -> str:
        return (
            f"SegmentNodeStore({self.directory!r}, nodes={len(self)}, "
            f"segments={self.segment_count()}, pending={self.pending_count})"
        )
