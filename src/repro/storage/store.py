"""Abstract node-store interface and shared storage statistics.

A node store is the only stateful component under a SIRI index.  It maps a
:class:`~repro.hashing.digest.Digest` to the canonical bytes of one node
and is *content addressed*: the digest of the bytes is the key, so the
store can always verify integrity by re-hashing, and identical nodes are
stored once regardless of how many index versions reference them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.core.errors import CorruptNodeError, NodeNotFoundError
from repro.hashing.digest import Digest, HashFunction, default_hash_function


@dataclass
class StoreStats:
    """Operation counters maintained by node stores.

    These counters drive the paper's storage figures (number of nodes,
    bytes stored) and are also used by the benchmark harness to report
    logical vs physical byte counts.
    """

    puts: int = 0
    gets: int = 0
    hits: int = 0
    misses: int = 0
    duplicate_puts: int = 0
    bytes_written: int = 0
    bytes_read: int = 0

    def merge(self, other: "StoreStats") -> "StoreStats":
        """Return a new :class:`StoreStats` summing self and ``other``."""
        return StoreStats(
            puts=self.puts + other.puts,
            gets=self.gets + other.gets,
            hits=self.hits + other.hits,
            misses=self.misses + other.misses,
            duplicate_puts=self.duplicate_puts + other.duplicate_puts,
            bytes_written=self.bytes_written + other.bytes_written,
            bytes_read=self.bytes_read + other.bytes_read,
        )

    def reset(self) -> None:
        """Zero all counters in place."""
        self.puts = 0
        self.gets = 0
        self.hits = 0
        self.misses = 0
        self.duplicate_puts = 0
        self.bytes_written = 0
        self.bytes_read = 0


class NodeStore:
    """Interface of a content-addressed node store.

    Concrete stores must implement :meth:`put_bytes`, :meth:`get_bytes`,
    :meth:`contains`, :meth:`digests` and :meth:`__len__`.  The base class
    provides digest computation, integrity verification, and aggregate
    size helpers on top of those primitives.
    """

    def __init__(self, hash_function: Optional[HashFunction] = None, verify_on_read: bool = False):
        self.hash_function = hash_function or default_hash_function()
        self.verify_on_read = verify_on_read
        self.stats = StoreStats()

    # -- primitives every concrete store implements ----------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        """Store ``data`` under ``digest``; return True if it was new."""
        raise NotImplementedError

    def get_bytes(self, digest: Digest) -> bytes:
        """Fetch the bytes stored under ``digest``.

        Raises :class:`NodeNotFoundError` when the digest is unknown.
        """
        raise NotImplementedError

    def contains(self, digest: Digest) -> bool:
        """Whether the store holds a node with this digest."""
        raise NotImplementedError

    def digests(self) -> Iterator[Digest]:
        """Iterate over all stored digests."""
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    # -- shared convenience API ------------------------------------------

    def put(self, data: bytes) -> Digest:
        """Hash ``data``, store it, and return its digest.

        This is the write path used by every index: the node's canonical
        serialization is hashed and filed under that digest, so a
        duplicate node (same bytes) is detected here and not stored again.
        """
        digest = self.hash_function.hash(data)
        is_new = self.put_bytes(digest, data)
        self.stats.puts += 1
        if is_new:
            self.stats.bytes_written += len(data)
        else:
            self.stats.duplicate_puts += 1
        return digest

    def get(self, digest: Digest) -> bytes:
        """Fetch node bytes, optionally verifying them against the digest."""
        data = self.get_bytes(digest)
        self.stats.gets += 1
        self.stats.bytes_read += len(data)
        if self.verify_on_read:
            actual = self.hash_function.hash(data)
            if actual != digest:
                raise CorruptNodeError(digest)
        return data

    def verify(self, digest: Digest) -> bool:
        """Re-hash the stored bytes and compare with the digest."""
        data = self.get_bytes(digest)
        return self.hash_function.hash(data) == digest

    def verify_all(self) -> Tuple[int, list]:
        """Verify every stored node; return (checked_count, corrupt_digests)."""
        corrupt = []
        checked = 0
        for digest in list(self.digests()):
            checked += 1
            if not self.verify(digest):
                corrupt.append(digest)
        return checked, corrupt

    def __contains__(self, digest: Digest) -> bool:
        return self.contains(digest)

    def total_bytes(self) -> int:
        """Total physical bytes stored (each unique node counted once)."""
        return sum(len(self.get_bytes(d)) for d in self.digests())

    def node_count(self) -> int:
        """Number of unique nodes stored."""
        return len(self)

    def size_of(self, digest: Digest) -> int:
        """Byte size of one stored node."""
        return len(self.get_bytes(digest))

    def missing(self, digests: Iterable[Digest]) -> list:
        """Return the subset of ``digests`` the store does not hold."""
        return [d for d in digests if not self.contains(d)]
