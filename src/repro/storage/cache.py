"""LRU read cache in front of a node store.

Forkbase's system-level experiments (Section 5.6.1) show that remote read
throughput is dominated by client↔server round trips, and that the client
mitigates this by caching retrieved nodes locally.  The hit ratio differs
by index type: indexes with large, frequently re-read nodes (POS-Tree,
MVMB+-Tree) benefit more than MBT whose nodes have small fixed fan-out.

:class:`CachingNodeStore` models exactly that: it wraps any backing store,
serves repeated reads from an LRU cache of bounded size, and counts hits
and misses so the benchmark harness can report hit ratios.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator, Optional

from repro.hashing.digest import Digest
from repro.storage.store import NodeStore, StoreStats


class CachingNodeStore(NodeStore):
    """A read-through LRU cache over another :class:`NodeStore`.

    Parameters
    ----------
    backing:
        The store that owns the data (e.g. the "servlet side" store).
    capacity_bytes:
        Maximum total size of cached node bytes; least recently used nodes
        are evicted beyond this.
    write_through:
        When True (default) puts go to the backing store and are also
        cached locally.

    The cache is safe to share between threads: the LRU bookkeeping
    (recency updates, insertions, evictions, hit/miss counters) happens
    under an internal lock, so lock-free snapshot readers in the service
    layer (:mod:`repro.service`) can hit one shard's cache concurrently.
    The backing store is consulted *outside* the lock, so a slow backing
    read never blocks other readers — at worst two threads miss on the
    same digest and both fetch it (idempotent in a content-addressed
    store).
    """

    def __init__(
        self,
        backing: NodeStore,
        capacity_bytes: int = 64 * 1024 * 1024,
        write_through: bool = True,
    ):
        super().__init__(hash_function=backing.hash_function, verify_on_read=False)
        self.backing = backing
        self.capacity_bytes = capacity_bytes
        self.write_through = write_through
        self._cache: "OrderedDict[Digest, bytes]" = OrderedDict()
        self._cached_bytes = 0
        self._lock = threading.Lock()
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache internals ---------------------------------------------------

    def _evict_if_needed(self) -> None:
        # Caller holds self._lock.
        while self._cached_bytes > self.capacity_bytes and self._cache:
            _, evicted = self._cache.popitem(last=False)
            self._cached_bytes -= len(evicted)

    def _cache_put(self, digest: Digest, data: bytes) -> None:
        with self._lock:
            if digest in self._cache:
                self._cache.move_to_end(digest)
                return
            self._cache[digest] = data
            self._cached_bytes += len(data)
            self._evict_if_needed()

    def invalidate(self) -> None:
        """Drop every cached node (does not touch the backing store)."""
        with self._lock:
            self._cache.clear()
            self._cached_bytes = 0

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served from the cache."""
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    # -- NodeStore primitives ----------------------------------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        is_new = self.backing.put_bytes(digest, data) if self.write_through else True
        self._cache_put(digest, bytes(data))
        return is_new

    def get_bytes(self, digest: Digest) -> bytes:
        with self._lock:
            cached = self._cache.get(digest)
            if cached is not None:
                self._cache.move_to_end(digest)
                self.cache_hits += 1
                return cached
            self.cache_misses += 1
        data = self.backing.get_bytes(digest)
        self._cache_put(digest, data)
        return data

    def contains(self, digest: Digest) -> bool:
        return digest in self._cache or self.backing.contains(digest)

    def digests(self) -> Iterator[Digest]:
        return self.backing.digests()

    def __len__(self) -> int:
        return len(self.backing)

    def total_bytes(self) -> int:
        return self.backing.total_bytes()

    def combined_stats(self) -> StoreStats:
        """Statistics of this cache layer merged with the backing store's."""
        return self.stats.merge(self.backing.stats)
