"""Content-addressed node storage.

Every index in this library persists its nodes into a *node store*: a
content-addressed map from :class:`~repro.hashing.digest.Digest` to the
node's canonical byte serialization.  Because the key is the hash of the
value, structurally identical nodes — whether they come from two versions
of the same index, two branches, or two entirely different indexes — are
stored exactly once.  That single mechanism is what realizes the paper's
page-level deduplication.

Provided stores:

* :class:`~repro.storage.memory.InMemoryNodeStore` — dictionary-backed,
  used by unit tests and most benchmarks.
* :class:`~repro.storage.file.FileNodeStore` — append-only segment files
  with an in-memory digest index, for persistence across processes
  (write-through, no crash recovery).
* :class:`~repro.storage.segment.SegmentNodeStore` — the durable
  append-only segment engine: CRC-protected records, commit markers,
  torn-tail truncation on reopen, batched fsynced appends, and
  compaction hooks for the garbage collector (``docs/STORAGE.md``).
* :class:`~repro.storage.cache.CachingNodeStore` — an LRU read cache in
  front of another store, modelling Forkbase's client-side node cache
  (Section 5.6.1).
* :class:`~repro.storage.metered.MeteredNodeStore` — wraps another store
  and counts gets/puts/bytes, used by the benchmark harness.
* :class:`~repro.storage.refcount.RefCountingNodeStore` — reference
  counting and garbage collection of unreachable versions.
* :class:`~repro.storage.gc.GarbageCollector` — mark-and-sweep GC over
  any store: marks from retained index roots
  (:func:`~repro.storage.gc.reachable_digests`) and sweeps by segment
  compaction or per-node deletion, whichever the store supports.

Stores compose: the service layer (:mod:`repro.service`) fronts one
backing store per shard with a :class:`~repro.storage.cache.CachingNodeStore`,
and any :class:`~repro.storage.store.NodeStore` subclass overriding the
five primitives (``put_bytes``, ``get_bytes``, ``contains``, ``digests``,
``__len__``) can serve as a backend anywhere in the library — the base
class supplies the hashing/verification/accounting API on top of them.
"""

from repro.storage.store import NodeStore, StoreStats
from repro.storage.memory import InMemoryNodeStore
from repro.storage.file import FileNodeStore
from repro.storage.segment import RecoveryReport, SegmentNodeStore
from repro.storage.cache import CachingNodeStore
from repro.storage.metered import MeteredNodeStore
from repro.storage.refcount import RefCountingNodeStore
from repro.storage.gc import GarbageCollector, reachable_digests

__all__ = [
    "NodeStore",
    "StoreStats",
    "InMemoryNodeStore",
    "FileNodeStore",
    "SegmentNodeStore",
    "RecoveryReport",
    "CachingNodeStore",
    "MeteredNodeStore",
    "RefCountingNodeStore",
    "GarbageCollector",
    "reachable_digests",
]
