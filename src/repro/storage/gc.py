"""Mark-and-sweep garbage collection for content-addressed node stores.

Immutable indexes never delete nodes in place, so reclaiming the space of
dropped versions is a two-phase, whole-store affair:

* **Mark** — compute the *live set*: the union of every node reachable
  from a retained root version (:func:`reachable_digests` walks each
  root's page set via :meth:`SIRIIndex.node_digests`; the per-version
  registry of :class:`~repro.storage.refcount.RefCountingNodeStore` is
  reused verbatim when one is in play, via its
  :meth:`~repro.storage.refcount.RefCountingNodeStore.reachable_union`).
* **Sweep** — drop everything else.  How depends on the backing store:
  an append-only :class:`~repro.storage.segment.SegmentNodeStore` cannot
  delete in place, so its sweep *rewrites live nodes into fresh segments*
  (:meth:`~repro.storage.segment.SegmentNodeStore.compact`) and unlinks
  the old files; stores exposing ``delete`` (e.g. the in-memory store)
  are swept entry by entry.

Invariants (see ``docs/STORAGE.md`` §GC for the full argument):

1. A node reachable from any retained root is never dropped — the live
   set is computed from the roots *before* anything is touched.
2. The store stays readable at every crash point of a compaction: new
   segments are fully written and fsynced before any old segment is
   unlinked, and the open-time scan dedupes by digest when both
   generations coexist.
3. GC never changes any retained version's content: rewritten nodes keep
   their digests (content addressing), so every retained root resolves
   to byte-identical data afterwards.
"""

from __future__ import annotations

import time
from typing import Iterable, Optional, Set

from repro.core.errors import InvalidParameterError
from repro.core.metrics import GCCounters
from repro.hashing.digest import Digest
from repro.storage.store import NodeStore


def reachable_digests(index, roots: Iterable[Optional[Digest]]) -> Set[Digest]:
    """Mark phase: the union of page sets reachable from ``roots``.

    ``index`` is any :class:`~repro.core.interfaces.SIRIIndex`; ``None``
    roots (empty versions) contribute nothing.  This is the same
    reachability notion :mod:`repro.storage.refcount` registers per
    pinned root — computed on demand here instead of maintained
    incrementally.
    """
    live: Set[Digest] = set()
    for root in roots:
        if root is not None:
            live |= index.node_digests(root)
    return live


class GarbageCollector:
    """Sweeps one node store down to a caller-supplied live set.

    The collector picks the sweep strategy from the store's capabilities:

    * ``compact(live)`` (segment stores): rewrite live nodes into fresh
      segments, physically reclaiming file bytes;
    * ``delete(digest)`` (in-memory / refcounting backings): remove each
      unreachable entry directly;
    * neither: the store cannot reclaim space —
      :class:`~repro.core.errors.InvalidParameterError` is raised.

    Example::

        collector = GarbageCollector(store)
        live = reachable_digests(tree, [v18.root_digest, v19.root_digest])
        report = collector.collect(live)
        assert report.swept_nodes == len(store_before) - len(live)
    """

    def __init__(self, store: NodeStore):
        self.store = store

    def collect(self, live: Iterable[Digest]) -> GCCounters:
        """Sweep: drop every node not in ``live``; return the run's counters."""
        live_set = set(live)
        compact = getattr(self.store, "compact", None)
        if compact is not None:
            return compact(live_set)
        delete = getattr(self.store, "delete", None)
        if delete is None:
            raise InvalidParameterError(
                f"{type(self.store).__name__} supports neither compact() nor "
                "delete(); it cannot be garbage collected"
            )
        started = time.perf_counter()
        bytes_before = self.store.total_bytes()
        victims = [d for d in self.store.digests() if d not in live_set]
        swept = sum(1 for digest in victims if delete(digest))
        bytes_after = self.store.total_bytes()
        return GCCounters(
            runs=1,
            live_nodes=len(self.store),
            swept_nodes=swept,
            bytes_before=bytes_before,
            bytes_after=bytes_after,
            bytes_reclaimed=bytes_before - bytes_after,
            gc_seconds=time.perf_counter() - started,
        )

    def collect_roots(self, index, roots: Iterable[Optional[Digest]]) -> GCCounters:
        """Mark from ``roots`` over ``index``, then sweep this store."""
        return self.collect(reachable_digests(index, roots))

    def collect_pinned(self, refcounting_store) -> GCCounters:
        """Sweep a :class:`RefCountingNodeStore`'s backing down to its pins.

        Reuses the refcounting store's per-root reachability registry as
        the mark phase (``reachable_union()``), then sweeps the *backing*
        store, so the two GC mechanisms in the library agree on what is
        live.
        """
        return GarbageCollector(refcounting_store.backing).collect(
            refcounting_store.reachable_union()
        )
