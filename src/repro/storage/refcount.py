"""Reference counting and garbage collection of unreachable nodes.

Immutable indexes never delete nodes in place, but real deployments still
need to reclaim space once *versions* are dropped (e.g. retention policies
on old snapshots).  Because nodes are shared between versions, a node can
only be reclaimed when no retained version references it.

:class:`RefCountingNodeStore` tracks, per root digest, the set of nodes
reachable from that root (the index registers reachable sets when a
version is committed) and deletes nodes whose reference count drops to
zero when a root is released.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, Optional, Set

from repro.core.errors import NodeNotFoundError
from repro.hashing.digest import Digest
from repro.storage.memory import InMemoryNodeStore
from repro.storage.store import NodeStore


class RefCountingNodeStore(NodeStore):
    """A node store with per-version reference counting.

    The store delegates all byte storage to ``backing`` (an in-memory
    store by default) and layers a root → reachable-node registry on top.

    Typical lifecycle::

        store = RefCountingNodeStore()
        tree = POSTree(store)
        snap = tree.insert_batch(...)
        store.pin(snap.root_digest, snap.reachable_digests())
        ...
        store.release(snap.root_digest)   # may free nodes
    """

    def __init__(self, backing: Optional[NodeStore] = None):
        # Note: an empty store is falsy (len() == 0), so test identity, not truth.
        backing = backing if backing is not None else InMemoryNodeStore()
        super().__init__(hash_function=backing.hash_function, verify_on_read=False)
        self.backing = backing
        self._refcounts: Dict[Digest, int] = {}
        self._pinned_roots: Dict[Digest, Set[Digest]] = {}

    # -- pinning ------------------------------------------------------------

    def pin(self, root: Digest, reachable: Iterable[Digest]) -> None:
        """Register a version root and the set of nodes reachable from it."""
        if root in self._pinned_roots:
            return
        reachable_set = set(reachable)
        self._pinned_roots[root] = reachable_set
        for digest in reachable_set:
            self._refcounts[digest] = self._refcounts.get(digest, 0) + 1

    def release(self, root: Digest) -> int:
        """Unpin a version root; garbage collect nodes with zero references.

        Returns the number of nodes physically deleted.
        """
        reachable = self._pinned_roots.pop(root, None)
        if reachable is None:
            return 0
        deleted = 0
        for digest in reachable:
            count = self._refcounts.get(digest, 0) - 1
            if count <= 0:
                self._refcounts.pop(digest, None)
                if self._delete_from_backing(digest):
                    deleted += 1
            else:
                self._refcounts[digest] = count
        return deleted

    def _delete_from_backing(self, digest: Digest) -> bool:
        delete = getattr(self.backing, "delete", None)
        if delete is None:
            return False
        return bool(delete(digest))

    def pinned_roots(self):
        """The currently pinned version roots."""
        return list(self._pinned_roots.keys())

    def reference_count(self, digest: Digest) -> int:
        """How many pinned versions reference this node."""
        return self._refcounts.get(digest, 0)

    def reachable_union(self):
        """The union of every pinned root's reachable set (the GC live set).

        This is the mark phase :class:`repro.storage.gc.GarbageCollector`
        reuses when sweeping a refcounting store's backing: a node is
        live exactly when at least one pinned version reaches it.
        """
        live = set()
        for reachable in self._pinned_roots.values():
            live |= reachable
        return live

    def unreferenced_digests(self):
        """Digests present in the backing store but not referenced by any pin."""
        return [d for d in self.backing.digests() if d not in self._refcounts]

    def collect_garbage(self) -> int:
        """Delete every node not reachable from any pinned root."""
        deleted = 0
        for digest in self.unreferenced_digests():
            if self._delete_from_backing(digest):
                deleted += 1
        return deleted

    # -- NodeStore primitives -------------------------------------------------

    def put_bytes(self, digest: Digest, data: bytes) -> bool:
        return self.backing.put_bytes(digest, data)

    def get_bytes(self, digest: Digest) -> bytes:
        return self.backing.get_bytes(digest)

    def contains(self, digest: Digest) -> bool:
        return self.backing.contains(digest)

    def digests(self) -> Iterator[Digest]:
        return self.backing.digests()

    def __len__(self) -> int:
        return len(self.backing)

    def total_bytes(self) -> int:
        return self.backing.total_bytes()
