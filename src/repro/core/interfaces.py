"""Abstract interfaces shared by every SIRI index candidate.

The paper evaluates four structures — MPT, MBT, POS-Tree and the
MVMB+-Tree baseline — under exactly the same operations: lookup, update
(batched writes producing a new immutable version), diff, and merge, plus
storage/dedup accounting over the node store.  This module defines:

* :class:`SIRIIndex` — the abstract index *class*: it owns a node store
  and knows how to read and produce immutable versions (roots).  Concrete
  subclasses implement the structure-specific parts.
* :class:`IndexSnapshot` — an immutable handle on one version (a root
  digest).  All reads go through snapshots; all writes return a *new*
  snapshot and leave the original untouched (node-level copy-on-write).
* :class:`WriteBatch` — a small builder for accumulating puts/deletes and
  applying them in one batched update, which is how the paper drives the
  write workloads (Table 2's batch sizes).

Keys and values are ``bytes`` end to end.  Convenience coercion from
``str`` (UTF-8) and ``int`` (decimal ASCII) is provided at the snapshot
API boundary so examples stay readable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.core.errors import ImmutableWriteError, KeyNotFoundError
from repro.core.proof import MerkleProof
from repro.hashing.digest import Digest

if TYPE_CHECKING:
    # Annotation-only: an eager import here would point the bottom layer
    # at the storage engine above it (see docs/LINT.md, rule L1-layering).
    from repro.core.diff import DiffResult, Resolver
    from repro.storage.store import NodeStore

KeyLike = Union[bytes, bytearray, str, int]
ValueLike = Union[bytes, bytearray, str, int]


def coerce_key(key: KeyLike) -> bytes:
    """Normalize a user-facing key to bytes (UTF-8 for str, decimal for int)."""
    if isinstance(key, bytes):
        return key
    if isinstance(key, bytearray):
        return bytes(key)
    if isinstance(key, str):
        return key.encode("utf-8")
    if isinstance(key, int):
        return str(key).encode("ascii")
    raise TypeError(f"unsupported key type: {type(key).__name__}")


def coerce_value(value: ValueLike) -> bytes:
    """Normalize a user-facing value to bytes."""
    return coerce_key(value)


class SIRIIndex:
    """Abstract base for the index structures under evaluation.

    A :class:`SIRIIndex` instance is bound to one :class:`NodeStore`.  It
    never holds mutable tree state itself; every version of the index is
    fully described by a root digest, and all structural data lives in the
    (shared, content-addressed) store.  This is what allows many versions,
    branches, users and even *different index types* to share one store
    and deduplicate at the page level.
    """

    #: Human-readable structure name used in reports ("POS-Tree", "MPT", ...).
    name: str = "abstract"

    def __init__(self, store: NodeStore):
        """Bind this index to the content-addressed ``store`` holding its nodes."""
        self.store = store

    # ------------------------------------------------------------------
    # Structure-specific primitives (implemented by subclasses)
    # ------------------------------------------------------------------

    def empty_root(self) -> Optional[Digest]:
        """The root digest of the empty index (``None`` for all candidates)."""
        return None

    def lookup(self, root: Optional[Digest], key: bytes) -> Optional[bytes]:
        """Return the value bound to ``key`` in the version ``root``, or None."""
        raise NotImplementedError

    def write(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Optional[Digest]:
        """Apply a batch of puts/removes to version ``root``.

        Returns the root digest of the *new* version.  The old version
        remains fully readable: only nodes on modified paths are re-created
        (copy-on-write); untouched nodes are shared between the versions.

        A key appearing in both ``puts`` and ``removes`` is **removed**
        (remove-wins): the batch behaves as if every put were applied
        first and every remove after it.  Every implementation must
        uphold this so that one batch produces the same version no matter
        which structure applied it.
        """
        raise NotImplementedError

    def write_counted(
        self,
        root: Optional[Digest],
        puts: Mapping[bytes, bytes],
        removes: Iterable[bytes] = (),
    ) -> Tuple[Optional[Digest], Optional[int]]:
        """Like :meth:`write`, additionally reporting the record-count delta.

        Returns ``(new_root, delta)`` where ``delta`` is the change in
        record count produced by the batch, or ``None`` when the
        structure cannot account for it as a by-product of the write
        itself (the snapshot layer then drops its cached count rather
        than paying extra reads).  The SIRI indexes override this with
        zero-extra-I/O accounting; the default covers only the
        empty-root case, where the batch fully determines the count.
        """
        new_root = self.write(root, puts, removes)
        if root is None:
            removed = set(removes)
            return new_root, sum(1 for key in puts if key not in removed)
        return new_root, None

    def bulk_build(self, records: Sequence[Tuple[bytes, bytes]]) -> Optional[Digest]:
        """Build a brand-new version holding exactly ``records``, bottom-up.

        ``records`` are already-coerced ``(key, value)`` byte pairs with
        *unique* keys, in caller order.  Returns the root digest of the
        new version (``None`` for no records).

        The default implementation funnels through :meth:`write` from the
        empty root, preserving each structure's write-path semantics
        (including insertion-order dependence for non-SIRI structures).
        The SIRI indexes override it with O(N) bottom-up builders that
        sort once and emit every node exactly once, level by level —
        history independence guarantees (and the differential tests
        assert) that the resulting roots are byte-identical to
        incremental insertion.
        """
        return self.write(None, dict(records))

    def iterate(self, root: Optional[Digest]) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs of a version in ascending key order."""
        raise NotImplementedError

    def iterate_range(
        self,
        root: Optional[Digest],
        start: Optional[bytes] = None,
        stop: Optional[bytes] = None,
    ) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate pairs with ``start <= key < stop`` in ascending key order.

        ``start`` is inclusive, ``stop`` exclusive; either may be ``None``
        for an open end — the same contract as ``Branch.scan``.  The
        default filters the full ordered iteration (stopping early at
        ``stop``); range-partitioned structures override it with a
        split-key-pruned descent that only loads leaves overlapping the
        requested window.
        """
        for key, value in self.iterate(root):
            if stop is not None and key >= stop:
                break
            if start is not None and key < start:
                continue
            yield key, value

    def node_digests(self, root: Optional[Digest]) -> Set[Digest]:
        """The page set P(I): digests of every node reachable from ``root``."""
        raise NotImplementedError

    def prove(self, root: Optional[Digest], key: bytes) -> MerkleProof:
        """Build a Merkle proof for ``key`` (existence or absence) in ``root``."""
        raise NotImplementedError

    def lookup_depth(self, root: Optional[Digest], key: bytes) -> int:
        """Number of nodes traversed (tree levels) to resolve ``key``."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # Generic helpers built on the primitives
    # ------------------------------------------------------------------

    def empty_snapshot(self) -> "IndexSnapshot":
        """An immutable snapshot of the empty index."""
        return IndexSnapshot(self, self.empty_root(), record_count=0)

    def snapshot(self, root: Optional[Digest], record_count: Optional[int] = None) -> "IndexSnapshot":
        """Wrap an existing root digest in a snapshot handle."""
        return IndexSnapshot(self, root, record_count=record_count)

    def from_items(self, items: Union[Mapping[KeyLike, ValueLike], Iterable[Tuple[KeyLike, ValueLike]]]) -> "IndexSnapshot":
        """Build a snapshot containing ``items`` starting from the empty index.

        This is the bulk-ingest entry point: duplicates coalesce
        last-writer-wins, the deduplicated records are handed to
        :meth:`bulk_build` (the SIRI indexes' O(N) bottom-up builders),
        and the returned snapshot carries an exact cached record count.
        """
        if isinstance(items, Mapping):
            pairs = items.items()
        else:
            pairs = items
        puts = {coerce_key(k): coerce_value(v) for k, v in pairs}
        root = self.bulk_build(list(puts.items()))
        return IndexSnapshot(self, root, record_count=len(puts))

    def height(self, root: Optional[Digest]) -> int:
        """Height of the version's tree (max node count on any root→leaf path)."""
        if root is None:
            return 0
        # Default implementation: maximum lookup depth over all keys.  The
        # concrete indexes override this with cheaper structure walks.
        depths = [self.lookup_depth(root, key) for key, _ in self.iterate(root)]
        return max(depths) if depths else 0

    def count(self, root: Optional[Digest]) -> int:
        """Number of records stored in a version (O(N) by iteration)."""
        return sum(1 for _ in self.iterate(root))

    def storage_bytes(self, root: Optional[Digest]) -> int:
        """Total byte size of the version's page set."""
        return sum(self.store.size_of(d) for d in self.node_digests(root))


class IndexSnapshot:
    """An immutable view of one index version.

    A snapshot never changes.  Mutating operations (:meth:`put`,
    :meth:`update`, :meth:`remove`) return a *new* snapshot that shares
    all unmodified nodes with this one through the content-addressed node
    store.
    """

    __slots__ = ("index", "root", "_record_count")

    def __init__(self, index: SIRIIndex, root: Optional[Digest], record_count: Optional[int] = None):
        """Wrap version ``root`` of ``index`` (``record_count`` caches ``len``)."""
        self.index = index
        self.root = root
        self._record_count = record_count

    # -- identity ---------------------------------------------------------

    @property
    def root_digest(self) -> Optional[Digest]:
        """The cryptographic root digest identifying this version."""
        return self.root

    @property
    def root_hex(self) -> str:
        """Hex rendering of the root digest ("" for the empty snapshot)."""
        return self.root.hex if self.root is not None else ""

    def is_empty(self) -> bool:
        """Whether this snapshot holds no records."""
        return self.root is None

    # -- reads -------------------------------------------------------------

    def get(self, key: KeyLike, default: Optional[bytes] = None) -> Optional[bytes]:
        """Return the value for ``key`` or ``default`` when absent."""
        value = self.index.lookup(self.root, coerce_key(key))
        return default if value is None else value

    def __getitem__(self, key: KeyLike) -> bytes:
        value = self.index.lookup(self.root, coerce_key(key))
        if value is None:
            raise KeyNotFoundError(key)
        return value

    def __contains__(self, key: KeyLike) -> bool:
        return self.index.lookup(self.root, coerce_key(key)) is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate ``(key, value)`` pairs in ascending key order."""
        return self.index.iterate(self.root)

    def items_range(self, start: Optional[bytes] = None,
                    stop: Optional[bytes] = None) -> Iterator[Tuple[bytes, bytes]]:
        """Iterate pairs with ``start <= key < stop`` in ascending key order.

        Same bound contract as :meth:`SIRIIndex.iterate_range` (``start``
        inclusive, ``stop`` exclusive, ``None`` = open end); ranged
        structures prune whole subtrees outside the bounds.
        """
        return self.index.iterate_range(self.root, start, stop)

    def keys(self) -> Iterator[bytes]:
        """Iterate the keys of this version in ascending order."""
        for key, _ in self.items():
            yield key

    def values(self) -> Iterator[bytes]:
        """Iterate the values of this version in ascending key order."""
        for _, value in self.items():
            yield value

    def to_dict(self) -> Dict[bytes, bytes]:
        """Materialize the full content as a plain dictionary."""
        return dict(self.items())

    def __len__(self) -> int:
        if self._record_count is None:
            self._record_count = self.index.count(self.root)
        return self._record_count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, IndexSnapshot):
            return NotImplemented
        return self.index is other.index and self.root == other.root

    def __hash__(self) -> int:
        return hash((id(self.index), self.root))

    def __repr__(self) -> str:
        root = self.root.short() if self.root is not None else "empty"
        return f"IndexSnapshot({self.index.name}, root={root})"

    def __setitem__(self, key: KeyLike, value: ValueLike) -> None:
        raise ImmutableWriteError(
            "snapshots are immutable; use put()/update() which return a new snapshot"
        )

    # -- writes (return new snapshots) --------------------------------------

    def put(self, key: KeyLike, value: ValueLike) -> "IndexSnapshot":
        """Return a new snapshot with ``key`` bound to ``value``."""
        return self.update({key: value})

    def update(
        self,
        items: Union[Mapping[KeyLike, ValueLike], Iterable[Tuple[KeyLike, ValueLike]]],
        removes: Iterable[KeyLike] = (),
    ) -> "IndexSnapshot":
        """Return a new snapshot with a batch of puts and removes applied.

        A key appearing in both ``items`` and ``removes`` ends up
        **removed** (remove-wins — see :meth:`SIRIIndex.write`).

        When this snapshot carries a cached record count (snapshots from
        :meth:`SIRIIndex.from_items` / :meth:`SIRIIndex.empty_snapshot`
        do), the new snapshot's count is maintained through the batch via
        :meth:`SIRIIndex.write_counted`, so ``len()`` stays O(1) across
        write chains instead of silently degrading to a full iteration.
        The SIRI indexes account for the delta as a free by-product of
        the write; structures that cannot (the MVMB+-Tree baseline on a
        non-empty version) drop the cache rather than pay extra reads.
        """
        if isinstance(items, Mapping):
            pairs = items.items()
        else:
            pairs = items
        puts = {coerce_key(k): coerce_value(v) for k, v in pairs}
        removed = [coerce_key(k) for k in removes]
        if self._record_count is None:
            new_root = self.index.write(self.root, puts, removed)
            return IndexSnapshot(self.index, new_root)
        new_root, delta = self.index.write_counted(self.root, puts, removed)
        new_count = self._record_count + delta if delta is not None else None
        return IndexSnapshot(self.index, new_root, record_count=new_count)

    def remove(self, *keys: KeyLike) -> "IndexSnapshot":
        """Return a new snapshot with ``keys`` removed (absent keys ignored)."""
        return self.update({}, removes=keys)

    # -- structure and verification ------------------------------------------

    def node_digests(self) -> Set[Digest]:
        """The page set P(I) of this version."""
        return self.index.node_digests(self.root)

    def storage_bytes(self) -> int:
        """Total bytes of this version's pages (shared pages counted once)."""
        return self.index.storage_bytes(self.root)

    def height(self) -> int:
        """Tree height of this version."""
        return self.index.height(self.root)

    def lookup_depth(self, key: KeyLike) -> int:
        """Number of nodes traversed when looking up ``key``."""
        return self.index.lookup_depth(self.root, coerce_key(key))

    def prove(self, key: KeyLike) -> MerkleProof:
        """Produce a Merkle proof for ``key`` against this version's root."""
        return self.index.prove(self.root, coerce_key(key))

    def diff(self, other: "IndexSnapshot") -> "DiffResult":
        """Differences between this snapshot and ``other`` (see :mod:`repro.core.diff`)."""
        from repro.core.diff import diff_snapshots

        return diff_snapshots(self, other)

    def merge(self, other: "IndexSnapshot",
              resolver: Optional["Resolver"] = None) -> "IndexSnapshot":
        """Merge ``other`` into this snapshot (see :mod:`repro.core.diff`)."""
        from repro.core.diff import merge_snapshots

        return merge_snapshots(self, other, resolver=resolver)


class WriteBatch:
    """Accumulates puts and removes to apply to a snapshot in one update.

    The paper's write workloads apply updates in batches (Table 2's batch
    sizes from 1 000 to 16 000); batching matters in particular for
    POS-Tree, whose bottom-up build touches each node once per batch
    instead of once per key.
    """

    def __init__(self):
        """Create an empty batch."""
        self._puts: Dict[bytes, bytes] = {}
        self._removes: Set[bytes] = set()

    def put(self, key: KeyLike, value: ValueLike) -> "WriteBatch":
        """Add (or overwrite) a pending write of ``key = value``; returns self."""
        key_bytes = coerce_key(key)
        self._puts[key_bytes] = coerce_value(value)
        self._removes.discard(key_bytes)
        return self

    def remove(self, key: KeyLike) -> "WriteBatch":
        """Add a pending removal of ``key`` (dropping any pending put); returns self."""
        key_bytes = coerce_key(key)
        self._removes.add(key_bytes)
        self._puts.pop(key_bytes, None)
        return self

    def __len__(self) -> int:
        return len(self._puts) + len(self._removes)

    @property
    def puts(self) -> Dict[bytes, bytes]:
        """A copy of the pending puts (coerced to bytes)."""
        return dict(self._puts)

    @property
    def removes(self) -> List[bytes]:
        """The pending removals in sorted order."""
        return sorted(self._removes)

    def apply_to(self, snapshot: IndexSnapshot) -> IndexSnapshot:
        """Apply this batch to ``snapshot`` and return the new snapshot."""
        return snapshot.update(self._puts, removes=self._removes)

    def clear(self) -> None:
        """Drop every pending put and removal."""
        self._puts.clear()
        self._removes.clear()
