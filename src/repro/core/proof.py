"""Merkle proofs: verifying a single record against a trusted root digest.

Tamper evidence in all three SIRI structures works the same way (Section
2.3): the digest of every node covers the digests of its children, so the
root digest commits to the entire content.  To convince a verifier that a
particular key/value binding belongs to a version identified by a root
digest, the prover supplies the node bytes along the lookup path (the
"proof"); the verifier re-hashes each node, checks that each node's digest
is referenced by its parent, that the top node hashes to the trusted root,
and that the bottom node actually binds the key to the claimed value.

The proof format here is structure-agnostic: each step carries the node's
canonical bytes, and the parent→child commitment is checked by locating
the child digest inside the parent's serialized bytes.  Because digests
are 32-byte collision-resistant values, finding the digest embedded in the
parent bytes is (up to negligible probability) only possible when the
parent genuinely references the child.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.core.errors import ProofVerificationError
from repro.hashing.digest import Digest, HashFunction, default_hash_function


class ProofStep:
    """One node on the proof path, top (root) to bottom (leaf/bucket)."""

    __slots__ = ("node_bytes", "level")

    def __init__(self, node_bytes: bytes, level: int):
        self.node_bytes = bytes(node_bytes)
        self.level = level

    def digest(self, hash_function: Optional[HashFunction] = None) -> Digest:
        """The digest of this node's bytes."""
        return (hash_function or default_hash_function()).hash(self.node_bytes)

    def __repr__(self) -> str:
        return f"ProofStep(level={self.level}, bytes={len(self.node_bytes)})"


class MerkleProof:
    """A proof that a key (and optionally its value) is bound in a version.

    Attributes
    ----------
    key:
        The key being proven.
    value:
        The value the proof claims is bound to ``key`` — ``None`` for
        proofs of absence.
    steps:
        Node bytes along the root→leaf lookup path, root first.
    index_name:
        Name of the structure the proof was generated from (informational).
    """

    def __init__(
        self,
        key: bytes,
        value: Optional[bytes],
        steps: List[ProofStep],
        index_name: str = "",
        hash_function: Optional[HashFunction] = None,
        binding_check: Optional[Callable[[bytes, bytes, Optional[bytes]], bool]] = None,
    ):
        self.key = bytes(key)
        self.value = None if value is None else bytes(value)
        self.steps = list(steps)
        self.index_name = index_name
        self.hash_function = hash_function or default_hash_function()
        #: Structure-specific check of the bottom node's key/value binding,
        #: attached by the index that produced the proof.
        self.binding_check = binding_check

    @property
    def is_membership_proof(self) -> bool:
        """True when the proof asserts presence of a value for the key."""
        return self.value is not None

    def proof_size_bytes(self) -> int:
        """Total byte size of the proof path (the paper's "proof of data")."""
        return sum(len(step.node_bytes) for step in self.steps)

    def root_digest(self) -> Digest:
        """Digest of the top node in the proof (what should equal the trusted root)."""
        if not self.steps:
            raise ProofVerificationError("proof contains no steps")
        return self.steps[0].digest(self.hash_function)

    def verify(
        self,
        trusted_root: Digest,
        binding_check: Optional[Callable[[bytes, bytes, Optional[bytes]], bool]] = None,
    ) -> bool:
        """Verify this proof against a trusted root digest.

        Parameters
        ----------
        trusted_root:
            The root digest the verifier trusts (e.g. stored in a block
            header or obtained out of band).
        binding_check:
            Optional callable ``(leaf_bytes, key, value) -> bool`` supplied
            by the index implementation to check that the bottom node of
            the proof actually binds ``key`` to ``value``.  When omitted,
            a conservative default is used: the leaf bytes must contain the
            key bytes, and the value bytes when present.

        Raises
        ------
        ProofVerificationError
            If any link of the proof fails.  Returns True otherwise.
        """
        if not self.steps:
            raise ProofVerificationError("proof contains no steps")

        if self.steps[0].digest(self.hash_function) != trusted_root:
            raise ProofVerificationError("top of proof does not hash to the trusted root")

        for parent, child in zip(self.steps, self.steps[1:]):
            child_digest = child.digest(self.hash_function)
            if child_digest.raw not in parent.node_bytes:
                raise ProofVerificationError(
                    f"node at level {child.level} is not referenced by its parent"
                )

        leaf_bytes = self.steps[-1].node_bytes
        check = binding_check or self.binding_check
        if check is not None:
            if not check(leaf_bytes, self.key, self.value):
                raise ProofVerificationError("leaf node does not bind the claimed key/value")
        else:
            if self.is_membership_proof:
                if self.value not in leaf_bytes:
                    raise ProofVerificationError("leaf node does not contain the claimed binding")
        return True

    def __len__(self) -> int:
        return len(self.steps)

    def __repr__(self) -> str:
        kind = "membership" if self.is_membership_proof else "absence"
        return (
            f"MerkleProof({kind}, key={self.key!r}, steps={len(self.steps)}, "
            f"bytes={self.proof_size_bytes()})"
        )
