"""Diff and merge over index snapshots (Section 4.1.3 and 4.1.4).

*Diff* returns all records that are present in only one of two versions or
that carry different values in the two.  *Merge* combines all records from
both versions; when both versions changed the same key to different values
the merge must stop and ask the caller for a resolution strategy (the
paper interrupts the process; we raise :class:`MergeConflictError` unless
a resolver is supplied).

Two diff strategies are provided:

* :func:`diff_snapshots` — a *structural* diff: it walks the two versions'
  ordered record streams but first prunes identical subtrees by comparing
  node digests where the index exposes subtree boundaries.  For all SIRI
  candidates, identical content ⇒ identical digests, so shared subtrees
  are skipped wholesale.  This is what makes diff over structurally
  invariant indexes fast (Figure 8).
* :func:`diff_by_lookup` — the paper's "naive implementation" used in the
  complexity analysis: iterate one version and look every key up in the
  other.  Kept for the asymptotic-validation tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, Iterator, List, Optional, Tuple

from repro.core.errors import MergeConflictError

if TYPE_CHECKING:
    from repro.core.interfaces import IndexSnapshot


@dataclass
class DiffEntry:
    """One differing key between two versions."""

    key: bytes
    #: Value in the left/base version (None when the key is absent there).
    left: Optional[bytes]
    #: Value in the right/other version (None when the key is absent there).
    right: Optional[bytes]

    @property
    def kind(self) -> str:
        """"added" (only right), "removed" (only left) or "changed"."""
        if self.left is None:
            return "added"
        if self.right is None:
            return "removed"
        return "changed"


@dataclass
class DiffResult:
    """The outcome of diffing two snapshots."""

    entries: List[DiffEntry] = field(default_factory=list)
    #: Number of record comparisons actually performed (pruning makes this
    #: much smaller than the record count for similar versions).
    comparisons: int = 0

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[DiffEntry]:
        return iter(self.entries)

    @property
    def added(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.kind == "added"]

    @property
    def removed(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.kind == "removed"]

    @property
    def changed(self) -> List[DiffEntry]:
        return [e for e in self.entries if e.kind == "changed"]

    def keys(self) -> List[bytes]:
        return [e.key for e in self.entries]

    def is_empty(self) -> bool:
        return not self.entries


@dataclass
class MergeResult:
    """The outcome of merging two snapshots."""

    snapshot: "IndexSnapshot"
    merged_keys: List[bytes] = field(default_factory=list)
    conflicts_resolved: List[bytes] = field(default_factory=list)


def _merge_ordered_streams(
    left_items: Iterator[Tuple[bytes, bytes]],
    right_items: Iterator[Tuple[bytes, bytes]],
) -> Iterator[DiffEntry]:
    """Merge-join two ascending (key, value) streams, yielding differences."""
    sentinel = object()
    left_iter = iter(left_items)
    right_iter = iter(right_items)
    left = next(left_iter, sentinel)
    right = next(right_iter, sentinel)
    while left is not sentinel or right is not sentinel:
        if left is sentinel:
            yield DiffEntry(right[0], None, right[1])
            right = next(right_iter, sentinel)
        elif right is sentinel:
            yield DiffEntry(left[0], left[1], None)
            left = next(left_iter, sentinel)
        elif left[0] == right[0]:
            if left[1] != right[1]:
                yield DiffEntry(left[0], left[1], right[1])
            left = next(left_iter, sentinel)
            right = next(right_iter, sentinel)
        elif left[0] < right[0]:
            yield DiffEntry(left[0], left[1], None)
            left = next(left_iter, sentinel)
        else:
            yield DiffEntry(right[0], None, right[1])
            right = next(right_iter, sentinel)


def diff_snapshots(left: "IndexSnapshot", right: "IndexSnapshot") -> DiffResult:
    """Diff two snapshots of the same index class.

    If both snapshots have the same root digest they are — by the
    structural invariance / tamper evidence argument — identical, and the
    diff is empty without reading a single node.  Otherwise the two
    ordered record streams are merge-joined; indexes that expose a pruned
    iterator (``iterate_diff``) get subtree-level pruning for free.
    """
    result = DiffResult()
    if left.root_digest == right.root_digest:
        return result

    index = left.index
    prune_capable = hasattr(index, "iterate_diff") and left.index is right.index
    if prune_capable:
        stream = index.iterate_diff(left.root_digest, right.root_digest)
        for key, left_value, right_value in stream:
            result.comparisons += 1
            if left_value != right_value:
                result.entries.append(DiffEntry(key, left_value, right_value))
        return result

    for entry in _merge_ordered_streams(left.items(), right.items()):
        result.comparisons += 1
        result.entries.append(entry)
    return result


def diff_by_lookup(left: "IndexSnapshot", right: "IndexSnapshot") -> DiffResult:
    """The naive diff of the paper's complexity analysis: per-key lookups.

    Iterates the union of both key sets and looks each key up in both
    versions.  O(δ · lookup) as analyzed in Section 4.1.3.
    """
    result = DiffResult()
    left_map = dict(left.items())
    for key, right_value in right.items():
        result.comparisons += 1
        left_value = left_map.pop(key, None)
        if left_value != right_value:
            result.entries.append(DiffEntry(key, left_value, right_value))
    for key, left_value in left_map.items():
        result.comparisons += 1
        result.entries.append(DiffEntry(key, left_value, None))
    result.entries.sort(key=lambda e: e.key)
    return result


Resolver = Callable[[bytes, bytes, bytes], bytes]


def merge_snapshots(
    base: "IndexSnapshot",
    other: "IndexSnapshot",
    resolver: Optional[Resolver] = None,
) -> "IndexSnapshot":
    """Two-way merge: combine all records of ``base`` and ``other``.

    Keys present in only one version are taken as-is.  Keys present in
    both with equal values are untouched.  Keys present in both with
    *different* values are conflicts: without a ``resolver`` the merge is
    interrupted with :class:`MergeConflictError` (as the paper specifies);
    with a resolver, ``resolver(key, base_value, other_value)`` chooses the
    surviving value.

    Returns the merged snapshot (built on top of ``base``).
    """
    differences = diff_snapshots(base, other)
    puts: Dict[bytes, bytes] = {}
    conflicts: List[bytes] = []
    resolved: List[bytes] = []

    for entry in differences:
        if entry.left is None:
            puts[entry.key] = entry.right
        elif entry.right is None:
            # Key exists only in base: merge keeps the union, nothing to do.
            continue
        else:
            if resolver is None:
                conflicts.append(entry.key)
            else:
                puts[entry.key] = resolver(entry.key, entry.left, entry.right)
                resolved.append(entry.key)

    if conflicts:
        raise MergeConflictError(conflicts)

    merged = base.update(puts) if puts else base
    return merged


def three_way_merge(
    base: "IndexSnapshot",
    ours: "IndexSnapshot",
    theirs: "IndexSnapshot",
    resolver: Optional[Resolver] = None,
) -> MergeResult:
    """Three-way merge with a common ancestor (collaborative branching).

    A key conflicts only when *both* branches changed it relative to
    ``base`` and the new values differ.  A branch that left a key
    untouched never overrides the other branch's change — the semantics
    used by the collaborative-analytics scenarios the paper motivates.

    Returns a :class:`MergeResult` whose snapshot is built on ``ours``.
    """
    ours_diff = {e.key: e for e in diff_snapshots(base, ours)}
    theirs_diff = {e.key: e for e in diff_snapshots(base, theirs)}

    puts: Dict[bytes, bytes] = {}
    removes: List[bytes] = []
    conflicts: List[bytes] = []
    resolved: List[bytes] = []
    merged_keys: List[bytes] = []

    for key, theirs_entry in theirs_diff.items():
        ours_entry = ours_diff.get(key)
        if ours_entry is None:
            # Only the other branch touched this key: take their change.
            if theirs_entry.right is None:
                removes.append(key)
            else:
                puts[key] = theirs_entry.right
            merged_keys.append(key)
            continue
        if ours_entry.right == theirs_entry.right:
            continue
        if resolver is None:
            conflicts.append(key)
        else:
            ours_value = ours_entry.right if ours_entry.right is not None else b""
            theirs_value = theirs_entry.right if theirs_entry.right is not None else b""
            puts[key] = resolver(key, ours_value, theirs_value)
            resolved.append(key)
            merged_keys.append(key)

    if conflicts:
        raise MergeConflictError(conflicts)

    merged = ours.update(puts, removes=removes) if (puts or removes) else ours
    return MergeResult(snapshot=merged, merged_keys=merged_keys, conflicts_resolved=resolved)
