"""The SIRI framework core.

This package contains everything that is shared across the concrete index
structures:

* :mod:`repro.core.errors` — the library's exception hierarchy.
* :mod:`repro.core.interfaces` — the :class:`SIRIIndex` abstract interface
  (lookup, insert, batch update, diff, merge, proofs) every candidate
  implements, plus the immutable snapshot/version handle types.
* :mod:`repro.core.proof` — Merkle proof objects and verification.
* :mod:`repro.core.metrics` — deduplication ratio, node sharing ratio and
  storage statistics (Section 4.2 and Section 5.4 of the paper).
* :mod:`repro.core.diff` — generic diff/merge engine with conflict
  detection (Section 4.1.3/4.1.4).
* :mod:`repro.core.properties` — empirical checkers for the three SIRI
  properties (Definition 3.1).
* :mod:`repro.core.version` — the shared commit DAG recording versions,
  branches and merges; the sharded service journals every branch head
  into it and the repository API (:mod:`repro.api`) computes merge bases
  over it.
"""

from repro.core.errors import (
    ReproError,
    NodeNotFoundError,
    CorruptNodeError,
    MergeConflictError,
    ProofVerificationError,
    ImmutableWriteError,
)
from repro.core.interfaces import IndexSnapshot, SIRIIndex, WriteBatch
from repro.core.proof import MerkleProof, ProofStep
from repro.core.metrics import (
    StorageBreakdown,
    deduplication_ratio,
    node_sharing_ratio,
    snapshot_page_sets,
)
from repro.core.diff import DiffResult, MergeResult, diff_snapshots, merge_snapshots, three_way_merge
from repro.core.properties import SIRIPropertyReport, check_siri_properties
from repro.core.version import Commit, VersionGraph

__all__ = [
    "ReproError",
    "NodeNotFoundError",
    "CorruptNodeError",
    "MergeConflictError",
    "ProofVerificationError",
    "ImmutableWriteError",
    "IndexSnapshot",
    "SIRIIndex",
    "WriteBatch",
    "MerkleProof",
    "ProofStep",
    "StorageBreakdown",
    "deduplication_ratio",
    "node_sharing_ratio",
    "snapshot_page_sets",
    "DiffResult",
    "MergeResult",
    "diff_snapshots",
    "merge_snapshots",
    "three_way_merge",
    "SIRIPropertyReport",
    "check_siri_properties",
    "Commit",
    "VersionGraph",
]
