"""Exception hierarchy for the SIRI reproduction library.

All library-specific exceptions derive from :class:`ReproError` so callers
can catch everything coming out of this package with a single ``except``
clause while still being able to distinguish the individual failure modes
that matter operationally (missing node, corrupted node, merge conflict,
failed proof verification).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Tuple, Type

if TYPE_CHECKING:
    from repro.hashing.digest import Digest


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class NodeNotFoundError(ReproError, KeyError):
    """A node digest was requested that the node store does not contain.

    In a content-addressed store this indicates either data loss or a
    dangling reference (e.g. a version whose nodes were garbage
    collected).
    """

    def __init__(self, digest: "Digest", message: str = ""):
        self.digest = digest
        detail = message or f"node {digest!r} not found in store"
        super().__init__(detail)


class CorruptNodeError(ReproError):
    """Stored node bytes do not hash to the digest they are filed under.

    This is the tamper-evidence path: any bit flip in a stored node is
    detected when the node is re-hashed on read (or during proof
    verification) and surfaces as this exception.
    """

    def __init__(self, digest: "Digest", message: str = ""):
        self.digest = digest
        detail = message or f"node {digest!r} failed integrity verification"
        super().__init__(detail)


class KeyNotFoundError(ReproError, KeyError):
    """A lookup key is not present in the index snapshot."""

    def __init__(self, key: bytes, message: str = ""):
        self.key = key
        detail = message or f"key {key!r} not found"
        super().__init__(detail)


class MergeConflictError(ReproError):
    """Two index versions assign different values to the same key.

    The paper's merge operation must be interrupted on conflicts and a
    resolution strategy supplied by the caller (Section 4.1.4); this
    exception carries the conflicting keys so the caller can resolve and
    retry.
    """

    def __init__(self, conflicts: Iterable[bytes], message: str = ""):
        self.conflicts = list(conflicts)
        detail = message or f"merge conflict on {len(self.conflicts)} key(s)"
        super().__init__(detail)


class ShardExecutionError(ReproError):
    """A per-shard task failed; no partial cross-shard result was produced.

    Raised by :class:`repro.service.executor.ServiceExecutor` when a
    fanned-out shard task fails, and by the process shard backend
    (:mod:`repro.service.process`) when a shard worker process dies or
    its command pipe breaks.  In both cases the failing operation is
    abandoned whole — callers never observe a result assembled from a
    subset of shards, and a cross-shard commit whose prepare phase raised
    this error is never journalled.

    Attributes
    ----------
    shard_id:
        The shard whose task (or worker process) failed first.
    operation:
        Short name of the failing operation ("get_many", "commit",
        "flush_head", ...).

    The original exception is chained as ``__cause__``.
    """

    def __init__(self, shard_id: int, operation: str, cause: BaseException):
        self.shard_id = shard_id
        self.operation = operation
        super().__init__(
            f"shard {shard_id} failed during {operation}: {cause!r}"
        )

    def __reduce__(self) -> Tuple[Type["ShardExecutionError"], Tuple[int, str, BaseException]]:
        # The informative constructor takes (shard_id, operation, cause),
        # not the formatted message in ``args`` — spell the reconstruction
        # out so the error survives a pickled trip through a command pipe.
        return (type(self), (self.shard_id, self.operation,
                             self.__cause__ or RuntimeError("unknown cause")))


class ProofVerificationError(ReproError):
    """A Merkle proof failed to verify against the trusted root digest."""


class ImmutableWriteError(ReproError):
    """An attempt was made to mutate an immutable snapshot in place."""


class InvalidParameterError(ReproError, ValueError):
    """An index or workload was configured with invalid parameters."""


class StoreClosedError(ReproError, RuntimeError):
    """An operation was attempted on a node store after it was closed.

    Durable stores (:class:`repro.storage.segment.SegmentNodeStore`)
    reject reads and writes once :meth:`close` has flushed their final
    batch, so a lifecycle bug cannot silently write nodes that the next
    open will never see.
    """


class ServiceClosedError(ReproError, RuntimeError):
    """An operation was attempted on a closed :class:`VersionedKVService`.

    Raised by every service entry point between :meth:`close` and the
    next :meth:`open`/:meth:`reopen`, mirroring the store-level
    :class:`StoreClosedError` one layer up.
    """


class ProtocolError(ReproError):
    """Malformed bytes on the wire protocol (:mod:`repro.server.protocol`).

    Raised by the frame decoder and the request/response codecs for any
    input they cannot parse — truncated payloads, trailing garbage,
    unknown opcodes, oversized frames, invalid UTF-8.  The decoder's
    contract is that arbitrary bytes produce *this* exception (never a
    crash, never an over-read): a server can always answer a malformed
    frame with an error frame instead of dying.
    """


class ServerBusyError(ReproError):
    """The server rejected a request because its admission queue was full.

    The wire server bounds every per-shard request queue; when a queue is
    full the request is refused immediately with a ``BUSY`` frame instead
    of being buffered without limit (backpressure, see ``docs/SERVER.md``).
    Clients may retry after a backoff —
    :class:`repro.server.client.RemoteRepository` does so automatically
    when configured with ``busy_retries``.
    """


class RemoteServerError(ReproError):
    """The server answered with an error frame the client cannot map back.

    Well-known error codes (``key_not_found``, ``unknown_branch``,
    ``invalid_parameter``) are re-raised client-side as their local
    exception types; everything else — shard execution failures, internal
    server errors — surfaces as this exception carrying the server's
    error ``code`` and message.
    """

    def __init__(self, code: str, message: str = ""):
        self.code = code
        super().__init__(message or f"remote server error: {code}")


class TransactionConflictError(ReproError):
    """An optimistic transaction lost a race on its branch.

    Raised by :meth:`repro.api.Transaction.commit` when another commit
    advanced the branch head after the transaction began *and* touched at
    least one of the keys this transaction staged.  Transactions whose key
    sets are disjoint from the intervening commits are rebased and applied
    instead of raising.  Carries the contended keys so the caller can
    re-read them and retry.
    """

    def __init__(self, keys: Iterable[bytes], message: str = ""):
        self.keys = list(keys)
        detail = message or (
            f"transaction conflicts with a concurrent commit on "
            f"{len(self.keys)} key(s)")
        super().__init__(detail)


class TransactionClosedError(ReproError, RuntimeError):
    """An operation was attempted on a committed or aborted transaction.

    Each :class:`repro.api.Transaction` is single-shot: after
    :meth:`commit` or :meth:`abort` it permanently rejects further
    operations, so a stale handle cannot silently stage writes that will
    never be applied.
    """


class SyncError(ReproError):
    """Anti-entropy replication failed (:mod:`repro.sync`).

    Base class for everything that can go wrong while two replicas
    exchange nodes and heads.  A failed sync never leaves a replica in an
    inconsistent state: nodes land in the content-addressed store before
    any branch head moves, so the worst case is orphaned-but-valid nodes
    that the next sync attempt reuses instead of re-transferring.
    """


class SyncIntegrityError(SyncError):
    """A transferred node's bytes do not hash to the digest it claims.

    The trust model for replication is verify-before-store: every node
    received from a sync source is re-hashed locally and compared to the
    digest it was requested under.  A lying or corrupted source raises
    this error *before* any byte of the batch is written, so a bad peer
    cannot poison the local store.
    """

    def __init__(self, digest: "Digest", message: str = ""):
        self.digest = digest
        detail = message or (
            f"sync peer sent bytes that do not hash to claimed digest "
            f"{digest!r}")
        super().__init__(detail)


class SyncHeadMovedError(SyncError):
    """A push lost the compare-and-set race on the remote branch head.

    Pushing publishes the new head only if the remote branch still points
    at the head observed when the sync session started.  A concurrent
    writer advancing the remote branch in between surfaces as this error;
    the caller re-syncs (the transferred nodes are already landed, so the
    retry pays only for the new delta).
    """

    def __init__(self, branch: str, message: str = ""):
        self.branch = branch
        detail = message or (
            f"remote branch {branch!r} advanced during sync; "
            "re-sync to merge the new head")
        super().__init__(detail)
