"""Empirical checkers for the three SIRI properties (Definition 3.1).

The paper defines SIRI membership through three properties.  These cannot
be *proven* by running code, but they can be checked empirically over
concrete workloads, which is useful both as a test oracle for our
implementations and as an analysis tool when exploring new structures:

1. **Structurally Invariant** — the same record set always produces the
   same page set (and hence the same root digest), regardless of the order
   in which updates were applied.
2. **Recursively Identical** — a version that differs by one record from
   another shares more pages with it than it differs by:
   ``|P(I) ∩ P(I')| ≥ |P(I) − P(I')|``.
3. **Universally Reusable** — any version's pages can appear in a larger
   version; empirically, we check that a superset instance reuses at least
   one page of the smaller instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:
    from repro.core.interfaces import SIRIIndex

#: Zero-argument callable returning a fresh index over a fresh store.
IndexFactory = Callable[[], "SIRIIndex"]


@dataclass
class SIRIPropertyReport:
    """Outcome of empirically checking the three SIRI properties."""

    index_name: str
    structurally_invariant: bool
    recursively_identical: bool
    universally_reusable: bool
    #: Supporting measurements, e.g. shared/differing page counts.
    details: Dict[str, float] = field(default_factory=dict)

    @property
    def is_siri(self) -> bool:
        """Whether all three properties held on the tested workload."""
        return (
            self.structurally_invariant
            and self.recursively_identical
            and self.universally_reusable
        )


def check_structurally_invariant(index_factory: IndexFactory, items: Sequence[Tuple[bytes, bytes]],
                                 permutations: int = 3, seed: int = 7,
                                 batch_size: int = 16) -> bool:
    """Insert the same items in several random orders; roots must coincide.

    ``index_factory`` must return a *fresh* index (over any store) each
    time it is called, so each permutation builds from scratch.
    """
    rng = random.Random(seed)
    reference_root: Optional[object] = None
    for _ in range(permutations):
        shuffled = list(items)
        rng.shuffle(shuffled)
        index = index_factory()
        snapshot = index.empty_snapshot()
        for start in range(0, len(shuffled), batch_size):
            snapshot = snapshot.update(dict(shuffled[start : start + batch_size]))
        if reference_root is None:
            reference_root = snapshot.root_digest
        elif snapshot.root_digest != reference_root:
            return False
    return True


def check_recursively_identical(index_factory: IndexFactory, items: Sequence[Tuple[bytes, bytes]],
                                extra: Tuple[bytes, bytes]) -> Tuple[bool, Dict[str, float]]:
    """Check |P(I) ∩ P(I')| ≥ |P(I) − P(I')| for I = I' + one record."""
    index = index_factory()
    smaller = index.from_items(dict(items))
    larger = smaller.update({extra[0]: extra[1]})

    pages_small = smaller.node_digests()
    pages_large = larger.node_digests()
    shared = len(pages_large & pages_small)
    different = len(pages_large - pages_small)
    details = {
        "shared_pages": float(shared),
        "new_pages": float(different),
        "small_pages": float(len(pages_small)),
        "large_pages": float(len(pages_large)),
    }
    return shared >= different, details


def check_universally_reusable(index_factory: IndexFactory, items: Sequence[Tuple[bytes, bytes]],
                               extra_items: Sequence[Tuple[bytes, bytes]]) -> bool:
    """Check that a larger instance reuses at least one page of a smaller one."""
    index = index_factory()
    small = index.from_items(dict(items))
    larger = small.update(dict(extra_items))
    if len(larger.node_digests()) <= len(small.node_digests()):
        # The extended instance must actually be larger for the check to
        # be meaningful.
        return False
    return bool(small.node_digests() & larger.node_digests())


def check_siri_properties(index_factory: IndexFactory, items: Sequence[Tuple[bytes, bytes]],
                          extra_items: Optional[Sequence[Tuple[bytes, bytes]]] = None,
                          permutations: int = 3, seed: int = 7) -> SIRIPropertyReport:
    """Run all three empirical SIRI property checks on one index class.

    Parameters
    ----------
    index_factory:
        Zero-argument callable returning a fresh index instance.
    items:
        The base record set used for the checks.
    extra_items:
        Additional records used for the Recursively Identical and
        Universally Reusable checks; defaults to a derived set.
    """
    items = list(items)
    if not items:
        raise ValueError("property checks need a non-empty item set")
    if extra_items is None:
        extra_items = [
            (key + b"@extra", value + b"@extra") for key, value in items[: max(1, len(items) // 10)]
        ]
    extra_items = list(extra_items)

    invariant = check_structurally_invariant(
        index_factory, items, permutations=permutations, seed=seed
    )
    recursive, details = check_recursively_identical(index_factory, items, extra_items[0])
    reusable = check_universally_reusable(index_factory, items, extra_items)

    sample_index = index_factory()
    return SIRIPropertyReport(
        index_name=sample_index.name,
        structurally_invariant=invariant,
        recursively_identical=recursive,
        universally_reusable=reusable,
        details=details,
    )
