"""Deduplication and storage metrics (Section 4.2 and Section 5.4).

The paper formulates two metrics over a set of index instances
``S = {I_1, ..., I_k}``, each with page set ``P_i``:

* **Deduplication ratio**::

      η(S) = 1 − byte(P_1 ∪ … ∪ P_k) / (byte(P_1) + … + byte(P_k))

  — the fraction of total page *bytes* that page-level sharing avoids
  storing.

* **Node sharing ratio** (Section 5.4.2)::

      σ(S) = 1 − |P_1 ∪ … ∪ P_k| / (|P_1| + … + |P_k|)

  — the fraction of page *count* eliminated by sharing.

Both are computed here directly from snapshots' page sets, so they apply
uniformly to every index type (and to the ablation variants).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Protocol, Sequence, Set, Tuple

from repro.hashing.digest import Digest


class _CountingCache(Protocol):
    """What :meth:`CacheCounters.from_cache` needs from a caching store."""

    cache_hits: int
    cache_misses: int


@dataclass
class StorageBreakdown:
    """Physical/logical storage accounting for a set of index versions."""

    #: Number of unique pages across all versions (|P_1 ∪ … ∪ P_k|).
    unique_nodes: int
    #: Sum of per-version page counts (|P_1| + … + |P_k|).
    total_nodes: int
    #: Bytes of unique pages (byte(P_1 ∪ … ∪ P_k)).
    unique_bytes: int
    #: Sum of per-version page bytes.
    total_bytes: int

    @property
    def deduplication_ratio(self) -> float:
        """η(S): byte-level saving from page sharing (0 when nothing shared)."""
        if self.total_bytes == 0:
            return 0.0
        return 1.0 - self.unique_bytes / self.total_bytes

    @property
    def node_sharing_ratio(self) -> float:
        """σ(S): node-count-level saving from page sharing."""
        if self.total_nodes == 0:
            return 0.0
        return 1.0 - self.unique_nodes / self.total_nodes

    @property
    def raw_bytes(self) -> int:
        """Bytes that would be stored without any deduplication."""
        return self.total_bytes

    @property
    def deduplicated_bytes(self) -> int:
        """Bytes actually stored with page-level deduplication."""
        return self.unique_bytes


def snapshot_page_sets(snapshots: Sequence) -> List[Set[Digest]]:
    """Collect the page (node digest) set of each snapshot."""
    return [snap.node_digests() for snap in snapshots]


def _page_bytes(snapshots: Sequence, page_sets: List[Set[Digest]]) -> Dict[Digest, int]:
    """Map every referenced page digest to its byte size (looked up once)."""
    sizes: Dict[Digest, int] = {}
    for snap, pages in zip(snapshots, page_sets):
        store = snap.index.store
        for digest in pages:
            if digest not in sizes:
                sizes[digest] = store.size_of(digest)
    return sizes


def storage_breakdown(snapshots: Sequence) -> StorageBreakdown:
    """Compute the full storage breakdown for a set of snapshots.

    Snapshots may come from the same index evolving over time (versions),
    from different branches, or from entirely separate indexes sharing a
    store — the metric only looks at page sets, exactly as the paper's
    definition does.
    """
    page_sets = snapshot_page_sets(snapshots)
    sizes = _page_bytes(snapshots, page_sets)

    union: Set[Digest] = set()
    total_nodes = 0
    total_bytes = 0
    for pages in page_sets:
        union |= pages
        total_nodes += len(pages)
        total_bytes += sum(sizes[d] for d in pages)
    unique_bytes = sum(sizes[d] for d in union)

    return StorageBreakdown(
        unique_nodes=len(union),
        total_nodes=total_nodes,
        unique_bytes=unique_bytes,
        total_bytes=total_bytes,
    )


def deduplication_ratio(snapshots: Sequence) -> float:
    """η(S) over the given snapshots (paper Section 4.2.1)."""
    return storage_breakdown(snapshots).deduplication_ratio


def node_sharing_ratio(snapshots: Sequence) -> float:
    """Node sharing ratio over the given snapshots (paper Section 5.4.2)."""
    return storage_breakdown(snapshots).node_sharing_ratio


def incremental_version_growth(snapshots: Sequence) -> List[Tuple[int, int, int]]:
    """Per-version storage growth: list of (version, raw bytes, dedup bytes).

    ``raw`` accumulates each version's page bytes independently (what a
    store-every-version-separately system would pay); ``dedup`` is the size
    of the union of page sets up to that version (what a content-addressed
    store pays).  This is the data series behind the paper's Figure 1.
    """
    growth: List[Tuple[int, int, int]] = []
    seen: Set[Digest] = set()
    sizes: Dict[Digest, int] = {}
    raw_total = 0
    dedup_total = 0
    for version, snap in enumerate(snapshots):
        pages = snap.node_digests()
        store = snap.index.store
        for digest in pages:
            if digest not in sizes:
                sizes[digest] = store.size_of(digest)
        raw_total += sum(sizes[d] for d in pages)
        for digest in pages:
            if digest not in seen:
                seen.add(digest)
                dedup_total += sizes[digest]
        growth.append((version, raw_total, dedup_total))
    return growth


@dataclass
class CacheCounters:
    """Hit/miss accounting for a read-through node cache.

    Populated from :class:`repro.storage.cache.CachingNodeStore` by the
    benchmark harness and by the service layer's per-shard caches
    (:mod:`repro.service`), so cache effectiveness is reported with the
    same vocabulary everywhere.
    """

    hits: int = 0
    misses: int = 0

    @property
    def requests(self) -> int:
        """Total reads that consulted the cache."""
        return self.hits + self.misses

    @property
    def hit_ratio(self) -> float:
        """Fraction of reads served from the cache (0.0 when unused)."""
        total = self.requests
        return self.hits / total if total else 0.0

    def merge(self, other: "CacheCounters") -> "CacheCounters":
        """Return a new :class:`CacheCounters` summing self and ``other``."""
        return CacheCounters(hits=self.hits + other.hits, misses=self.misses + other.misses)

    @classmethod
    def from_cache(cls, cache: _CountingCache) -> "CacheCounters":
        """Snapshot the counters of a ``CachingNodeStore``-like object."""
        return cls(hits=cache.cache_hits, misses=cache.cache_misses)


@dataclass
class ContentionCounters:
    """Lock acquisition accounting for one mutex (a shard lock).

    The service layer's concurrent execution engine
    (:mod:`repro.service.executor`) guards each shard with its own lock;
    these counters record how often that lock was taken, how often the
    taker had to wait because another thread held it, and for how long.
    A high :attr:`contention_ratio` on one shard while the others are idle
    is the signature of key skew defeating hash partitioning.
    """

    #: Total successful lock acquisitions.
    acquisitions: int = 0
    #: Acquisitions that had to block because the lock was already held.
    contended: int = 0
    #: Total seconds spent blocked waiting for the lock.
    wait_seconds: float = 0.0

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to wait (0.0 when uncontended)."""
        return self.contended / self.acquisitions if self.acquisitions else 0.0

    def merge(self, other: "ContentionCounters") -> "ContentionCounters":
        """Return a new :class:`ContentionCounters` summing self and ``other``."""
        return ContentionCounters(
            acquisitions=self.acquisitions + other.acquisitions,
            contended=self.contended + other.contended,
            wait_seconds=self.wait_seconds + other.wait_seconds,
        )

    def copy(self) -> "ContentionCounters":
        """A point-in-time copy (the live object keeps mutating)."""
        return ContentionCounters(self.acquisitions, self.contended, self.wait_seconds)


@dataclass
class GCCounters:
    """Garbage-collection / segment-compaction accounting.

    Produced by :meth:`repro.storage.segment.SegmentNodeStore.compact`
    and by :class:`repro.storage.gc.GarbageCollector`, accumulated per
    store and merged across service shards by
    :meth:`repro.service.VersionedKVService.metrics` — so space
    reclamation is reported with the same vocabulary everywhere, like
    the cache and contention counters above.
    """

    #: Completed mark-and-sweep runs.
    runs: int = 0
    #: Nodes found reachable from a retained root and kept (rewritten).
    live_nodes: int = 0
    #: Unreachable nodes dropped.
    swept_nodes: int = 0
    #: Physical store bytes before the sweep (summed across runs).
    bytes_before: int = 0
    #: Physical store bytes after the sweep (summed across runs).
    bytes_after: int = 0
    #: Physical bytes reclaimed (``bytes_before - bytes_after``).
    bytes_reclaimed: int = 0
    #: Fresh segment files written by compaction.
    segments_created: int = 0
    #: Old segment files unlinked by compaction.
    segments_deleted: int = 0
    #: Wall-clock seconds spent collecting.
    gc_seconds: float = 0.0

    @property
    def reclaimed_fraction(self) -> float:
        """Fraction of pre-GC bytes reclaimed (0.0 before any run)."""
        return self.bytes_reclaimed / self.bytes_before if self.bytes_before else 0.0

    def merge(self, other: "GCCounters") -> "GCCounters":
        """Return a new :class:`GCCounters` summing self and ``other``."""
        return GCCounters(
            runs=self.runs + other.runs,
            live_nodes=self.live_nodes + other.live_nodes,
            swept_nodes=self.swept_nodes + other.swept_nodes,
            bytes_before=self.bytes_before + other.bytes_before,
            bytes_after=self.bytes_after + other.bytes_after,
            bytes_reclaimed=self.bytes_reclaimed + other.bytes_reclaimed,
            segments_created=self.segments_created + other.segments_created,
            segments_deleted=self.segments_deleted + other.segments_deleted,
            gc_seconds=self.gc_seconds + other.gc_seconds,
        )

    def copy(self) -> "GCCounters":
        """A point-in-time copy (the live object keeps mutating)."""
        return GCCounters(
            self.runs, self.live_nodes, self.swept_nodes, self.bytes_before,
            self.bytes_after, self.bytes_reclaimed, self.segments_created,
            self.segments_deleted, self.gc_seconds,
        )


@dataclass
class QueueCounters:
    """Admission-queue accounting for one bounded request queue.

    The wire-protocol server (:mod:`repro.server`) admits every request
    into a bounded per-shard queue and rejects with a ``BUSY`` frame when
    the queue is full; these counters record that backpressure with the
    same vocabulary as the cache/contention/GC counters above.  The
    invariant the fault-injection tests assert: after clients stop and
    the server drains, ``depth`` returns to zero and
    ``admitted == completed``.
    """

    #: Requests accepted into the queue.
    admitted: int = 0
    #: Requests fully executed (their response frame was handed off).
    completed: int = 0
    #: Requests refused with a BUSY frame because the queue was full.
    rejected_busy: int = 0
    #: Current number of queued-but-unfinished requests.
    depth: int = 0
    #: High-water mark of :attr:`depth`.
    peak_depth: int = 0

    @property
    def rejection_ratio(self) -> float:
        """Fraction of arrivals refused with BUSY (0.0 when never full)."""
        arrivals = self.admitted + self.rejected_busy
        return self.rejected_busy / arrivals if arrivals else 0.0

    def merge(self, other: "QueueCounters") -> "QueueCounters":
        """Return a new :class:`QueueCounters` summing self and ``other``."""
        return QueueCounters(
            admitted=self.admitted + other.admitted,
            completed=self.completed + other.completed,
            rejected_busy=self.rejected_busy + other.rejected_busy,
            depth=self.depth + other.depth,
            peak_depth=max(self.peak_depth, other.peak_depth),
        )

    def copy(self) -> "QueueCounters":
        """A point-in-time copy (the live object keeps mutating)."""
        return QueueCounters(self.admitted, self.completed, self.rejected_busy,
                             self.depth, self.peak_depth)


@dataclass
class OperationCounters:
    """Mutable counters used by benchmarks to accumulate operation metrics."""

    operations: int = 0
    records_touched: int = 0
    nodes_created: int = 0
    nodes_read: int = 0
    elapsed_seconds: float = 0.0
    #: Cache effectiveness over the run (zeroed when no cache is present).
    cache: CacheCounters = field(default_factory=CacheCounters)
    extra: Dict[str, float] = field(default_factory=dict)

    def throughput(self) -> float:
        """Operations per second (0 when no time has been recorded)."""
        if self.elapsed_seconds <= 0:
            return 0.0
        return self.operations / self.elapsed_seconds
