"""Version graph: commits, branches, and history over index snapshots.

Immutable indexes make every update a new version; applications then need
a way to *name* versions, relate them (parent links, branches, merges) and
walk their history — exactly what blockchains (linear history, one version
per block) and collaborative analytics (branching and merging datasets) do
on top of SIRI structures.  :class:`VersionGraph` is that bookkeeping
layer: a tiny git-like commit DAG whose payload is an index root digest.

The graph is the *shared* commit DAG of the library: the sharded service
(:class:`repro.service.VersionedKVService`) records every branch-qualified
commit here (payload = the tuple of per-shard roots), the Forkbase-style
engine records single-index dataset versions (payload = one root digest),
and the repository API (:mod:`repro.api`) asks it for merge bases.  A
payload is therefore either ``None`` (empty version), a single
:class:`~repro.hashing.digest.Digest`, or a tuple of optional digests —
:data:`RootsLike`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.errors import ReproError
from repro.hashing.digest import Digest, default_hash_function

#: Commit payload: one root digest (single index), a per-shard root tuple
#: (sharded service), or None (the empty version).
RootsLike = Union[None, Digest, Tuple[Optional[Digest], ...]]


class UnknownBranchError(ReproError, KeyError):
    """A branch name was referenced that the version graph does not contain."""


class UnknownCommitError(ReproError, KeyError):
    """A commit id was referenced that the version graph does not contain."""


@dataclass(frozen=True)
class Commit:
    """One committed index version.

    Attributes
    ----------
    commit_id:
        Digest over (root digest, parents, message, author, timestamp) —
        tamper-evident in the same way as the index itself.
    root:
        Root digest of the committed index snapshot (None = empty index).
    parents:
        Parent commit ids (0 for the initial commit, 2 for merge commits).
    """

    commit_id: Digest
    root: RootsLike
    parents: Sequence[Digest]
    message: str = ""
    author: str = ""
    timestamp: float = 0.0

    def short_id(self) -> str:
        return self.commit_id.short()

    def is_merge(self) -> bool:
        """Whether this commit has more than one parent."""
        return len(self.parents) > 1


class VersionGraph:
    """A git-like commit DAG naming immutable index versions.

    The graph does not store any index data itself — only root digests —
    so it composes with any of the index candidates and with any node
    store.
    """

    DEFAULT_BRANCH = "master"

    def __init__(self, clock: Callable[[], float] = time.time):
        self._commits: Dict[Digest, Commit] = {}
        self._branches: Dict[str, Digest] = {}
        self._clock = clock
        self._hash = default_hash_function()

    # -- commit construction -------------------------------------------------

    @staticmethod
    def _payload_parts(root: RootsLike) -> List[bytes]:
        """Canonical byte parts of a commit payload (single root or tuple)."""
        if root is None:
            return [b"\x00" * 32]
        if isinstance(root, Digest):
            return [root.raw]
        # Tuple payloads are length-prefixed so a 1-shard tuple can never
        # collide with a bare single-root payload.
        parts = [b"T%d" % len(root)]
        parts.extend(r.raw if r is not None else b"\x00" * 32 for r in root)
        return parts

    def _commit_digest(self, root: RootsLike, parents: Sequence[Digest],
                       message: str, author: str, timestamp: float,
                       salt: bytes = b"") -> Digest:
        parts = self._payload_parts(root)
        parts.extend(p.raw for p in parents)
        parts.append(message.encode("utf-8"))
        parts.append(author.encode("utf-8"))
        parts.append(repr(timestamp).encode("ascii"))
        if salt:
            parts.append(salt)
        return self._hash.hash_many(parts)

    def add_commit(self, root: RootsLike, branch: str,
                   parents: Sequence[Digest] = (), message: str = "",
                   author: str = "", timestamp: Optional[float] = None,
                   salt: bytes = b"") -> Commit:
        """Record a commit with *explicit* parent ids and move ``branch`` to it.

        This is the low-level primitive behind :meth:`commit` and
        :meth:`merge_commit`; replay code (e.g. the service rebuilding its
        DAG from a commit journal) calls it directly so parent links — and,
        via an explicit ``timestamp``, the commit ids themselves — are
        reproduced exactly instead of being re-derived from branch heads
        and the wall clock.

        ``salt`` is mixed into the commit id; callers that need distinct
        ids for commits whose visible fields may coincide (e.g. two forks
        journalled in the same clock tick, disambiguated by their journal
        sequence number) pass a unique deterministic value.
        """
        if timestamp is None:
            timestamp = self._clock()
        parent_ids = tuple(parents)
        for parent in parent_ids:
            if parent not in self._commits:
                raise UnknownCommitError(parent)
        commit_id = self._commit_digest(root, parent_ids, message, author, timestamp, salt)
        commit = Commit(
            commit_id=commit_id,
            root=root,
            parents=parent_ids,
            message=message,
            author=author,
            timestamp=timestamp,
        )
        self._commits[commit_id] = commit
        self._branches[branch] = commit_id
        return commit

    def commit(self, root: RootsLike, branch: str = DEFAULT_BRANCH,
               message: str = "", author: str = "") -> Commit:
        """Record a new version on ``branch`` whose parent is the branch head."""
        parents: List[Digest] = []
        head = self._branches.get(branch)
        if head is not None:
            parents.append(head)
        return self.add_commit(root, branch, parents, message, author)

    def merge_commit(self, root: RootsLike, ours: str, theirs: str,
                     message: str = "", author: str = "") -> Commit:
        """Record a merge of branch ``theirs`` into branch ``ours``."""
        ours_head = self.head(ours).commit_id
        theirs_head = self.head(theirs).commit_id
        return self.add_commit(root, ours, (ours_head, theirs_head), message, author)

    # -- branch management ----------------------------------------------------

    def branch(self, name: str, from_branch: str = DEFAULT_BRANCH) -> None:
        """Create branch ``name`` pointing at the head of ``from_branch``."""
        head = self._branches.get(from_branch)
        if head is None:
            raise UnknownBranchError(from_branch)
        self._branches[name] = head

    def branches(self) -> List[str]:
        return sorted(self._branches.keys())

    def has_branch(self, name: str) -> bool:
        """Whether ``name`` is a known branch of this graph."""
        return name in self._branches

    def head(self, branch: str = DEFAULT_BRANCH) -> Commit:
        """The latest commit on ``branch``."""
        head = self._branches.get(branch)
        if head is None:
            raise UnknownBranchError(branch)
        return self._commits[head]

    def get(self, commit_id: Digest) -> Commit:
        commit = self._commits.get(commit_id)
        if commit is None:
            raise UnknownCommitError(commit_id)
        return commit

    def __len__(self) -> int:
        return len(self._commits)

    # -- history --------------------------------------------------------------

    def log(self, branch: str = DEFAULT_BRANCH) -> Iterator[Commit]:
        """Walk the first-parent history of ``branch``, newest first."""
        current: Optional[Digest] = self._branches.get(branch)
        if current is None:
            raise UnknownBranchError(branch)
        while current is not None:
            commit = self._commits[current]
            yield commit
            current = commit.parents[0] if commit.parents else None

    def ancestors(self, commit_id: Digest) -> Iterator[Commit]:
        """All ancestors of a commit (breadth-first, deduplicated)."""
        seen = set()
        frontier = [commit_id]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            commit = self.get(current)
            yield commit
            frontier.extend(commit.parents)

    def common_ancestor(self, branch_a: str, branch_b: str) -> Optional[Commit]:
        """The nearest common ancestor of two branch heads (merge base)."""
        ancestors_a = {c.commit_id for c in self.ancestors(self.head(branch_a).commit_id)}
        for commit in self.ancestors(self.head(branch_b).commit_id):
            if commit.commit_id in ancestors_a:
                return commit
        return None

    def roots_on_branch(self, branch: str = DEFAULT_BRANCH) -> List[Optional[Digest]]:
        """Root digests along a branch's first-parent history, oldest first."""
        return [commit.root for commit in reversed(list(self.log(branch)))]
