"""Version graph: commits, branches, and history over index snapshots.

Immutable indexes make every update a new version; applications then need
a way to *name* versions, relate them (parent links, branches, merges) and
walk their history — exactly what blockchains (linear history, one version
per block) and collaborative analytics (branching and merging datasets) do
on top of SIRI structures.  :class:`VersionGraph` is that bookkeeping
layer: a tiny git-like commit DAG whose payload is an index root digest.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence

from repro.core.errors import ReproError
from repro.hashing.digest import Digest, default_hash_function


class UnknownBranchError(ReproError, KeyError):
    """A branch name was referenced that the version graph does not contain."""


class UnknownCommitError(ReproError, KeyError):
    """A commit id was referenced that the version graph does not contain."""


@dataclass(frozen=True)
class Commit:
    """One committed index version.

    Attributes
    ----------
    commit_id:
        Digest over (root digest, parents, message, author, timestamp) —
        tamper-evident in the same way as the index itself.
    root:
        Root digest of the committed index snapshot (None = empty index).
    parents:
        Parent commit ids (0 for the initial commit, 2 for merge commits).
    """

    commit_id: Digest
    root: Optional[Digest]
    parents: Sequence[Digest]
    message: str = ""
    author: str = ""
    timestamp: float = 0.0

    def short_id(self) -> str:
        return self.commit_id.short()


class VersionGraph:
    """A git-like commit DAG naming immutable index versions.

    The graph does not store any index data itself — only root digests —
    so it composes with any of the index candidates and with any node
    store.
    """

    DEFAULT_BRANCH = "master"

    def __init__(self, clock=time.time):
        self._commits: Dict[Digest, Commit] = {}
        self._branches: Dict[str, Digest] = {}
        self._clock = clock
        self._hash = default_hash_function()

    # -- commit construction -------------------------------------------------

    def _commit_digest(self, root: Optional[Digest], parents: Sequence[Digest],
                       message: str, author: str, timestamp: float) -> Digest:
        parts = [root.raw if root is not None else b"\x00" * 32]
        parts.extend(p.raw for p in parents)
        parts.append(message.encode("utf-8"))
        parts.append(author.encode("utf-8"))
        parts.append(repr(timestamp).encode("ascii"))
        return self._hash.hash_many(parts)

    def commit(self, root: Optional[Digest], branch: str = DEFAULT_BRANCH,
               message: str = "", author: str = "") -> Commit:
        """Record a new version on ``branch`` whose parent is the branch head."""
        parents: List[Digest] = []
        head = self._branches.get(branch)
        if head is not None:
            parents.append(head)
        timestamp = self._clock()
        commit_id = self._commit_digest(root, parents, message, author, timestamp)
        commit = Commit(
            commit_id=commit_id,
            root=root,
            parents=tuple(parents),
            message=message,
            author=author,
            timestamp=timestamp,
        )
        self._commits[commit_id] = commit
        self._branches[branch] = commit_id
        return commit

    def merge_commit(self, root: Optional[Digest], ours: str, theirs: str,
                     message: str = "", author: str = "") -> Commit:
        """Record a merge of branch ``theirs`` into branch ``ours``."""
        ours_head = self.head(ours).commit_id
        theirs_head = self.head(theirs).commit_id
        timestamp = self._clock()
        parents = (ours_head, theirs_head)
        commit_id = self._commit_digest(root, parents, message, author, timestamp)
        commit = Commit(
            commit_id=commit_id,
            root=root,
            parents=parents,
            message=message,
            author=author,
            timestamp=timestamp,
        )
        self._commits[commit_id] = commit
        self._branches[ours] = commit_id
        return commit

    # -- branch management ----------------------------------------------------

    def branch(self, name: str, from_branch: str = DEFAULT_BRANCH) -> None:
        """Create branch ``name`` pointing at the head of ``from_branch``."""
        head = self._branches.get(from_branch)
        if head is None:
            raise UnknownBranchError(from_branch)
        self._branches[name] = head

    def branches(self) -> List[str]:
        return sorted(self._branches.keys())

    def head(self, branch: str = DEFAULT_BRANCH) -> Commit:
        """The latest commit on ``branch``."""
        head = self._branches.get(branch)
        if head is None:
            raise UnknownBranchError(branch)
        return self._commits[head]

    def get(self, commit_id: Digest) -> Commit:
        commit = self._commits.get(commit_id)
        if commit is None:
            raise UnknownCommitError(commit_id)
        return commit

    def __len__(self) -> int:
        return len(self._commits)

    # -- history --------------------------------------------------------------

    def log(self, branch: str = DEFAULT_BRANCH) -> Iterator[Commit]:
        """Walk the first-parent history of ``branch``, newest first."""
        current: Optional[Digest] = self._branches.get(branch)
        if current is None:
            raise UnknownBranchError(branch)
        while current is not None:
            commit = self._commits[current]
            yield commit
            current = commit.parents[0] if commit.parents else None

    def ancestors(self, commit_id: Digest) -> Iterator[Commit]:
        """All ancestors of a commit (breadth-first, deduplicated)."""
        seen = set()
        frontier = [commit_id]
        while frontier:
            current = frontier.pop(0)
            if current in seen:
                continue
            seen.add(current)
            commit = self.get(current)
            yield commit
            frontier.extend(commit.parents)

    def common_ancestor(self, branch_a: str, branch_b: str) -> Optional[Commit]:
        """The nearest common ancestor of two branch heads (merge base)."""
        ancestors_a = {c.commit_id for c in self.ancestors(self.head(branch_a).commit_id)}
        for commit in self.ancestors(self.head(branch_b).commit_id):
            if commit.commit_id in ancestors_a:
                return commit
        return None

    def roots_on_branch(self, branch: str = DEFAULT_BRANCH) -> List[Optional[Digest]]:
        """Root digests along a branch's first-parent history, oldest first."""
        return [commit.root for commit in reversed(list(self.log(branch)))]
